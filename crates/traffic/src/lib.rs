//! # fasttrack-traffic
//!
//! Traffic generation for FastTrack NoC evaluation: the paper's synthetic
//! patterns and the four FPGA-accelerator case studies.
//!
//! * [`pattern`] — RANDOM / LOCAL / BITCOMPL / TRANSPOSE destination maps.
//! * [`source`] — open-loop Bernoulli injectors, closed message batches,
//!   and timed traces, all implementing
//!   [`fasttrack_core::sim::TrafficSource`].
//! * [`matrix`] + [`spmv`] — synthetic Matrix-Market-class matrices and
//!   Sparse Matrix-Vector Multiplication traffic (Figure 15a).
//! * [`graph_gen`] + [`graph`] — R-MAT / road-network graphs and
//!   vertex-push analytics traffic (Figure 15b).
//! * [`dataflow`] — token LU-factorization DAGs and a dependency-driven
//!   latency-sensitive source (Figure 15c).
//! * [`multiproc`] — PARSEC-like multiprocessor-overlay traces
//!   (Figure 15d).
//!
//! ```
//! use fasttrack_core::prelude::*;
//! use fasttrack_traffic::pattern::Pattern;
//! use fasttrack_traffic::source::BernoulliSource;
//!
//! let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full)?;
//! let mut src = BernoulliSource::new(8, Pattern::Random, 0.3, 100, 42);
//! let report = SimSession::new(&cfg).run(&mut src).unwrap().report;
//! assert_eq!(report.stats.delivered, 6400);
//! # Ok::<(), fasttrack_core::config::ConfigError>(())
//! ```

#![warn(missing_docs)]

pub mod adversarial;
pub mod bfs;
pub mod dataflow;
pub mod graph;
pub mod graph_gen;
pub mod matrix;
pub mod multiproc;
pub mod partition;
pub mod pattern;
pub mod regulated;
pub mod scenario;
pub mod serialize;
pub mod source;
pub mod spmv;
pub mod trace_io;

pub use partition::Partition;
pub use pattern::Pattern;
pub use scenario::{
    RecordingSource, ReplaySource, ScenarioHeader, ScenarioRecord, ScenarioTrace, TraceError,
};
pub use source::{BernoulliSource, Message, MessageBatchSource, TimedTraceSource};
