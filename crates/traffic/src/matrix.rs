//! Sparse-matrix substrate: a CSR matrix type and structural generators
//! standing in for the paper's Matrix Market benchmarks.
//!
//! We cannot ship the Matrix Market files, so each benchmark is replaced
//! by a *synthetic matrix with matched structure class and scale*
//! (documented in `DESIGN.md`): circuit matrices (add20, the bomhof
//! set) are diagonal-dominant with banded local coupling plus a few
//! dense rows/columns; memplus is a larger banded circuit; human_gene2
//! is a dense power-law (gene co-expression) matrix, scaled down to keep
//! simulation tractable. SpMV NoC traffic depends only on the nonzero
//! *communication geometry*, which these generators reproduce.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sparse matrix in compressed-sparse-row form (pattern only — SpMV
/// traffic does not care about values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMatrix {
    /// Matrix dimension (square).
    n: usize,
    /// CSR row pointers (`n + 1` entries).
    row_ptr: Vec<u32>,
    /// CSR column indices.
    col_idx: Vec<u32>,
}

impl SparseMatrix {
    /// Builds a matrix from a list of `(row, col)` coordinates;
    /// duplicates are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_coords(n: usize, mut coords: Vec<(u32, u32)>) -> Self {
        for &(r, c) in &coords {
            assert!(
                (r as usize) < n && (c as usize) < n,
                "entry ({r},{c}) out of range"
            );
        }
        coords.sort_unstable();
        coords.dedup();
        let mut row_ptr = vec![0u32; n + 1];
        for &(r, _) in &coords {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = coords.into_iter().map(|(_, c)| c).collect();
        SparseMatrix {
            n,
            row_ptr,
            col_idx,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n`.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Iterates all `(row, col)` coordinates.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n).flat_map(move |r| self.row(r).iter().map(move |&c| (r as u32, c)))
    }
}

/// Circuit-style matrix (SPICE netlists like add20 / bomhof): full
/// diagonal, a local coupling band, sparse random off-band entries, and
/// a few dense rows/columns (supply nets touching everything).
pub fn circuit(
    n: usize,
    band: usize,
    offband_per_row: usize,
    dense_lines: usize,
    seed: u64,
) -> SparseMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coords = Vec::new();
    for i in 0..n as u32 {
        coords.push((i, i));
        for _ in 0..2 {
            let off = rng.gen_range(1..=band.max(1)) as i64;
            let j = (i as i64 + if rng.gen() { off } else { -off }).rem_euclid(n as i64) as u32;
            coords.push((i, j));
            coords.push((j, i)); // structural symmetry, like circuit matrices
        }
        for _ in 0..offband_per_row {
            coords.push((i, rng.gen_range(0..n as u32)));
        }
    }
    for _ in 0..dense_lines {
        let line = rng.gen_range(0..n as u32);
        for j in (0..n as u32).step_by(3) {
            coords.push((line, j));
            coords.push((j, line));
        }
    }
    SparseMatrix::from_coords(n, coords)
}

/// Power-law matrix (gene co-expression style, human_gene2): row degrees
/// follow a heavy-tailed distribution, columns drawn preferentially from
/// a hot set.
pub fn power_law(n: usize, avg_nnz_per_row: usize, alpha: f64, seed: u64) -> SparseMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coords = Vec::new();
    for i in 0..n as u32 {
        // Pareto-ish row degree with mean ~avg_nnz_per_row.
        let u: f64 = rng.gen_range(1e-6..1.0f64);
        let deg = ((avg_nnz_per_row as f64 * (1.0 - 1.0 / alpha)) * u.powf(-1.0 / alpha))
            .min(n as f64 / 2.0) as usize;
        for _ in 0..deg.max(1) {
            // Preferential attachment to low indices (the hot genes).
            let v: f64 = rng.gen_range(1e-9..1.0f64);
            let j = ((n as f64) * v.powf(3.0)) as u32 % n as u32;
            coords.push((i, j));
        }
        coords.push((i, i));
    }
    SparseMatrix::from_coords(n, coords)
}

/// Banded matrix (memory-circuit style, memplus): full diagonal plus a
/// dense local band and occasional long-range entries.
pub fn banded(n: usize, band: usize, longrange_per_row: usize, seed: u64) -> SparseMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coords = Vec::new();
    for i in 0..n as u32 {
        let lo = i.saturating_sub(band as u32);
        let hi = (i + band as u32).min(n as u32 - 1);
        for j in lo..=hi {
            if rng.gen::<f64>() < 0.6 {
                coords.push((i, j));
            }
        }
        coords.push((i, i));
        for _ in 0..longrange_per_row {
            coords.push((i, rng.gen_range(0..n as u32)));
        }
    }
    SparseMatrix::from_coords(n, coords)
}

/// A named SpMV benchmark: a synthetic stand-in for one of the paper's
/// Matrix Market matrices (Figure 15a).
#[derive(Debug, Clone)]
pub struct MatrixBenchmark {
    /// Benchmark name as it appears in the paper.
    pub name: &'static str,
    /// The synthetic matrix.
    pub matrix: SparseMatrix,
    /// True for benchmarks dominated by local coupling (the paper notes
    /// hamm_memplus "does not need nor benefit from a faster NoC").
    pub local_dominated: bool,
}

/// The Figure 15a benchmark suite. Scales follow the real matrices
/// (human_gene2 is scaled down ~4× to keep runtimes sane; its traffic
/// geometry — dense power-law fan-in — is preserved).
pub fn spmv_benchmarks() -> Vec<MatrixBenchmark> {
    vec![
        MatrixBenchmark {
            name: "hamm_memplus",
            matrix: banded(17758, 8, 1, 0x5eed_0001),
            local_dominated: true,
        },
        MatrixBenchmark {
            name: "bomhof_circuit_3",
            matrix: circuit(12127, 6, 1, 6, 0x5eed_0002),
            local_dominated: false,
        },
        MatrixBenchmark {
            name: "bomhof_circuit_2",
            matrix: circuit(4510, 5, 1, 4, 0x5eed_0003),
            local_dominated: true,
        },
        MatrixBenchmark {
            name: "bomhof_circuit_1",
            matrix: circuit(2624, 5, 2, 4, 0x5eed_0004),
            local_dominated: false,
        },
        MatrixBenchmark {
            name: "human_gene2",
            matrix: power_law(3500, 120, 1.6, 0x5eed_0005),
            local_dominated: false,
        },
        MatrixBenchmark {
            name: "add20",
            matrix: circuit(2395, 4, 2, 3, 0x5eed_0006),
            local_dominated: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coords_builds_csr() {
        let m = SparseMatrix::from_coords(3, vec![(2, 1), (0, 0), (0, 2), (2, 1)]);
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 3); // duplicate dropped
        assert_eq!(m.row(0), &[0, 2]);
        assert_eq!(m.row(1), &[] as &[u32]);
        assert_eq!(m.row(2), &[1]);
        let coords: Vec<_> = m.iter().collect();
        assert_eq!(coords, vec![(0, 0), (0, 2), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_coords_bounds_checked() {
        SparseMatrix::from_coords(2, vec![(0, 5)]);
    }

    #[test]
    fn circuit_matrix_structure() {
        let m = circuit(500, 5, 1, 2, 42);
        // Full diagonal present.
        for i in 0..500 {
            assert!(m.row(i).contains(&(i as u32)), "missing diagonal at {i}");
        }
        // Dense lines create a few high-degree rows.
        let max_deg = (0..500).map(|i| m.row(i).len()).max().unwrap();
        assert!(max_deg > 100, "no dense line found (max degree {max_deg})");
        // But the median row stays sparse.
        let mut degs: Vec<_> = (0..500).map(|i| m.row(i).len()).collect();
        degs.sort_unstable();
        assert!(degs[250] < 20);
    }

    #[test]
    fn power_law_has_heavy_tail() {
        let m = power_law(1000, 20, 1.6, 7);
        let mut degs: Vec<_> = (0..1000).map(|i| m.row(i).len()).collect();
        degs.sort_unstable();
        let median = degs[500];
        let p99 = degs[990];
        assert!(
            p99 as f64 > 4.0 * median as f64,
            "tail p99={p99} median={median}"
        );
        // Hot columns: low indices are referenced far more often.
        let mut col_counts = vec![0u32; 1000];
        for (_, c) in m.iter() {
            col_counts[c as usize] += 1;
        }
        let hot: u32 = col_counts[..100].iter().sum();
        let cold: u32 = col_counts[900..].iter().sum();
        assert!(
            hot > 5 * cold,
            "no preferential attachment: {hot} vs {cold}"
        );
    }

    #[test]
    fn banded_matrix_is_local() {
        let m = banded(1000, 6, 0, 9);
        for (r, c) in m.iter() {
            assert!((r as i64 - c as i64).abs() <= 6);
        }
    }

    #[test]
    fn benchmark_suite_shapes() {
        // Generate the small ones only (skip memplus/bomhof_3 scale for
        // unit-test speed — covered by integration tests).
        let add20 = circuit(2395, 4, 2, 3, 0x5eed_0006);
        // Real add20 has ~13k-17k nonzeros; structure class matters more
        // than the exact count, but stay in the right ballpark.
        assert!(
            (8_000..40_000).contains(&add20.nnz()),
            "add20 nnz {}",
            add20.nnz()
        );
        let gene = power_law(3500, 120, 1.6, 0x5eed_0005);
        assert!(
            gene.nnz() > 200_000,
            "human_gene2 should be dense-ish: {}",
            gene.nnz()
        );
    }
}
