//! Adversarial traffic generators: bursty on-off (MMPP-style)
//! injection, hotspot concentration, and worst-case permutations
//! parameterized by the FastTrack express geometry `(D, R)`.
//!
//! Synthetic Bernoulli traffic is memoryless and spatially uniform —
//! friendly to a deflection NoC. These generators attack the two
//! assumptions separately: temporal burstiness (every PE firing in the
//! same window) and spatial adversity (offsets that can never ride an
//! express lane, so every packet pays full short-hop cost while
//! competing for the same ring segments).

use fasttrack_core::geom::Coord;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::TrafficSource;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::pattern::Pattern;

/// Two-state Markov-modulated on-off source (a discrete MMPP): each PE
/// alternates between an ON state, injecting Bernoulli(`on_rate`), and
/// an OFF state injecting nothing. State dwell times are geometric with
/// the given means, so bursts cluster the same offered load that a
/// plain Bernoulli source would spread evenly.
#[derive(Debug, Clone)]
pub struct BurstySource {
    n: u16,
    on_rate: f64,
    /// P(ON → OFF) each cycle = 1 / mean_on.
    p_off: f64,
    /// P(OFF → ON) each cycle = 1 / mean_off.
    p_on: f64,
    pattern: Pattern,
    packets_per_pe: u64,
    generated: Vec<u64>,
    on: Vec<bool>,
    rng: SmallRng,
}

impl BurstySource {
    /// Creates a bursty source for an `n × n` system.
    ///
    /// `mean_on` / `mean_off` are the expected dwell times (cycles) in
    /// each state; `on_rate` is the per-cycle injection probability
    /// while ON. Long-run offered load is
    /// `on_rate * mean_on / (mean_on + mean_off)`.
    ///
    /// # Panics
    ///
    /// Panics if `on_rate` is outside `(0, 1]` or a mean dwell time is
    /// zero.
    pub fn new(
        n: u16,
        pattern: Pattern,
        on_rate: f64,
        mean_on: f64,
        mean_off: f64,
        packets_per_pe: u64,
        seed: u64,
    ) -> Self {
        assert!(
            on_rate > 0.0 && on_rate <= 1.0,
            "on_rate {on_rate} out of (0,1]"
        );
        assert!(
            mean_on >= 1.0 && mean_off >= 1.0,
            "mean dwell times must be >= 1 cycle"
        );
        let nodes = n as usize * n as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        // Start each PE in a random state so bursts are not phase-locked
        // to cycle 0 across the whole fabric.
        let on = (0..nodes).map(|_| rng.gen_bool(0.5)).collect();
        BurstySource {
            n,
            on_rate,
            p_off: 1.0 / mean_on,
            p_on: 1.0 / mean_off,
            pattern,
            packets_per_pe,
            generated: vec![0; nodes],
            on,
            rng,
        }
    }

    /// Long-run offered load per PE (packets/cycle).
    pub fn offered_load(&self) -> f64 {
        let mean_on = 1.0 / self.p_off;
        let mean_off = 1.0 / self.p_on;
        self.on_rate * mean_on / (mean_on + mean_off)
    }
}

impl TrafficSource for BurstySource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        for node in 0..self.generated.len() {
            // State transition first, then a possible injection.
            let flip = if self.on[node] { self.p_off } else { self.p_on };
            if self.rng.gen::<f64>() < flip {
                self.on[node] = !self.on[node];
            }
            if self.on[node]
                && self.generated[node] < self.packets_per_pe
                && self.rng.gen::<f64>() < self.on_rate
            {
                let src = Coord::from_node_id(node, self.n);
                let dst = self.pattern.destination(src, self.n, &mut self.rng);
                queues.push(node, dst, cycle, 0);
                self.generated[node] += 1;
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.generated.iter().all(|&g| g >= self.packets_per_pe)
    }
}

/// Hotspot-concentration source: a Bernoulli injector whose traffic is
/// aimed at the four quadrant-center hotspots with the given
/// probability ([`Pattern::Hotspot`]), the adversarial case for exit-
/// port contention.
pub fn hotspot_source(
    n: u16,
    percent: u8,
    rate: f64,
    packets_per_pe: u64,
    seed: u64,
) -> crate::source::BernoulliSource {
    crate::source::BernoulliSource::new(n, Pattern::Hotspot { percent }, rate, packets_per_pe, seed)
}

/// The X-ring offset every packet of a worst-case [`PermutationSource`]
/// travels.
///
/// Express lanes forward packets in strides of `d`; a packet only
/// boards one when the remaining offset can still be decomposed as
/// express strides plus a short remainder the router is willing to pay
/// (policy-dependent, but an offset `< d` never boards). The chosen
/// offset is congruent to `d - 1 (mod d)` — maximally misaligned with
/// the stride — and as long as the ring allows, so the fabric does
/// maximum short-hop work per packet. `r` shifts the offset off the
/// express *on-ramp* positions so FT-lite placements are also missed.
pub fn worst_case_offset(n: u16, d: u16, r: u16) -> u16 {
    debug_assert!(d >= 1 && r >= 1 && d <= n && r <= d);
    if d == 1 {
        // Every offset is stride-aligned; fall back to tornado (the
        // classic worst case for a unidirectional ring).
        return n / 2;
    }
    // Largest offset < n that is ≡ d-1 (mod d).
    let mut k = n - 1;
    while k % d != d - 1 {
        k -= 1;
    }
    k.max(1)
}

/// Worst-case permutation for `FT(n², d, r)`: every PE sends its whole
/// quota to the node `worst_case_offset(n, d, r)` hops east on its own
/// row — a fixed permutation (one sender per receiver), so exit ports
/// never contend, yet no packet can profit from the express stride and
/// all of them share the same direction of every X ring.
#[derive(Debug, Clone)]
pub struct PermutationSource {
    n: u16,
    offset: u16,
    packets_per_pe: u64,
    generated: Vec<u64>,
}

impl PermutationSource {
    /// Creates the `(d, r)`-adversarial permutation source.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ r ≤ d ≤ n`.
    pub fn new(n: u16, d: u16, r: u16, packets_per_pe: u64) -> Self {
        assert!(d >= 1 && r >= 1 && d <= n && r <= d, "bad (d, r) for n={n}");
        Self::with_offset(n, worst_case_offset(n, d, r), packets_per_pe)
    }

    /// A fixed-offset row permutation — the express-aligned control
    /// case for [`PermutationSource::new`].
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ offset < n`.
    pub fn with_offset(n: u16, offset: u16, packets_per_pe: u64) -> Self {
        assert!(offset >= 1 && offset < n, "offset {offset} out of 1..{n}");
        PermutationSource {
            n,
            offset,
            packets_per_pe,
            generated: vec![0; n as usize * n as usize],
        }
    }

    /// The fixed X-ring offset of the permutation.
    pub fn offset(&self) -> u16 {
        self.offset
    }
}

impl TrafficSource for PermutationSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        for node in 0..self.generated.len() {
            if self.generated[node] < self.packets_per_pe {
                let src = Coord::from_node_id(node, self.n);
                let dst = src.east(self.offset, self.n);
                queues.push(node, dst, cycle, 0);
                self.generated[node] += 1;
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.generated.iter().all(|&g| g >= self.packets_per_pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::{FtPolicy, NocConfig};
    use fasttrack_core::sim::SimSession;

    #[test]
    fn bursty_respects_quota_and_load() {
        let mut src = BurstySource::new(4, Pattern::Random, 0.8, 20.0, 60.0, 10, 3);
        assert!((src.offered_load() - 0.2).abs() < 1e-9);
        let mut q = InjectQueues::new(16);
        let mut cycle = 0;
        while !src.exhausted() && cycle < 100_000 {
            src.pump(cycle, &mut q);
            cycle += 1;
        }
        assert!(src.exhausted());
        assert_eq!(q.total_enqueued(), 16 * 10);
    }

    #[test]
    fn bursty_is_burstier_than_bernoulli() {
        // Fano factor (variance/mean of per-window injection counts)
        // should exceed the Bernoulli baseline's by a wide margin.
        let fano = |counts: &[u64]| {
            let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / counts.len() as f64;
            var / mean.max(1e-12)
        };
        let window = 32u64;
        type Pump = Box<dyn FnMut(u64, &mut InjectQueues)>;
        let run = |mut src: Pump| {
            let mut q = InjectQueues::new(64);
            let mut counts = Vec::new();
            let mut prev = 0;
            for w in 0..200u64 {
                for c in 0..window {
                    src(w * window + c, &mut q);
                }
                counts.push(q.total_enqueued() - prev);
                prev = q.total_enqueued();
            }
            counts
        };
        let mut bursty = BurstySource::new(8, Pattern::Random, 0.5, 40.0, 160.0, u64::MAX, 11);
        let mut bern = crate::source::BernoulliSource::new(8, Pattern::Random, 0.1, u64::MAX, 11);
        let f_bursty = fano(&run(Box::new(move |c, q| bursty.pump(c, q))));
        let f_bern = fano(&run(Box::new(move |c, q| bern.pump(c, q))));
        assert!(
            f_bursty > 2.0 * f_bern,
            "bursty fano {f_bursty} not >> bernoulli fano {f_bern}"
        );
    }

    #[test]
    fn worst_case_offset_misses_the_stride() {
        for (n, d, r) in [(8u16, 2u16, 1u16), (8, 4, 2), (16, 4, 4), (8, 2, 2)] {
            let k = worst_case_offset(n, d, r);
            assert_eq!(k % d, d - 1, "offset {k} aligned for d={d}");
            assert!(k >= 1 && k < n);
        }
        // d == 1: tornado fallback.
        assert_eq!(worst_case_offset(8, 1, 1), 4);
    }

    #[test]
    fn worst_case_permutation_defeats_the_express_layer() {
        // The express layer's speedup over plain Hoplite should be
        // substantial for a stride-aligned permutation and collapse
        // for the (d, r)-misaligned worst case.
        let ft = NocConfig::fasttrack(8, 4, 1, FtPolicy::Full).unwrap();
        let hop = NocConfig::hoplite(8).unwrap();
        let makespan = |cfg: &NocConfig, offset: u16| {
            let mut src = PermutationSource::with_offset(8, offset, 50);
            let report = SimSession::new(cfg)
                .max_cycles(400_000)
                .run(&mut src)
                .unwrap()
                .report;
            assert!(!report.truncated);
            report.cycles as f64
        };
        let worst = worst_case_offset(8, 4, 1);
        assert_eq!(worst % 4, 3, "misaligned by construction");
        let speedup_aligned = makespan(&hop, 4) / makespan(&ft, 4);
        let speedup_worst = makespan(&hop, worst) / makespan(&ft, worst);
        assert!(
            speedup_aligned > 1.2 * speedup_worst,
            "aligned speedup {speedup_aligned:.2} should dominate worst-case {speedup_worst:.2}"
        );
    }
}
