//! Synthetic traffic patterns (paper §VI: RANDOM, LOCAL, BITCOMPL,
//! TRANSPOSE).
//!
//! A pattern maps a source node to a destination; stochastic patterns
//! draw from a caller-supplied RNG so experiments stay reproducible.

use fasttrack_core::geom::Coord;
use rand::Rng;

/// A synthetic destination-selection pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Uniformly random destination, excluding the source itself.
    Random,
    /// Uniform over nodes within torus Manhattan distance `radius`
    /// (excluding the source).
    Local {
        /// Neighborhood radius (≥ 1).
        radius: u16,
    },
    /// Bit-complement: node id maps to its bitwise complement
    /// (`dst.x = N-1-x`, `dst.y = N-1-y` for power-of-two `N`).
    BitComplement,
    /// Matrix transpose: `(x, y) → (y, x)`.
    Transpose,
    /// Tornado: half-way around the X ring (`(x, y) → (x + N/2, y)`).
    Tornado,
    /// Hotspot: with probability `fraction` (percent), target one of the
    /// four fixed hotspot nodes; otherwise uniform random.
    Hotspot {
        /// Percent of traffic aimed at the hotspot set (1–100).
        percent: u8,
    },
    /// Perfect shuffle on the node id bits (`rotate-left` of the id),
    /// for power-of-two systems.
    Shuffle,
    /// Bit-reversal of the node id, for power-of-two systems.
    BitReverse,
}

impl Pattern {
    /// The four patterns evaluated in the paper, in its plotting order.
    pub const PAPER_SET: [Pattern; 4] = [
        Pattern::BitComplement,
        Pattern::Local { radius: 3 },
        Pattern::Random,
        Pattern::Transpose,
    ];

    /// Short uppercase name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Random => "RANDOM",
            Pattern::Local { .. } => "LOCAL",
            Pattern::BitComplement => "BITCOMPL",
            Pattern::Transpose => "TRANSPOSE",
            Pattern::Tornado => "TORNADO",
            Pattern::Hotspot { .. } => "HOTSPOT",
            Pattern::Shuffle => "SHUFFLE",
            Pattern::BitReverse => "BITREV",
        }
    }

    /// Draws a destination for a packet injected at `src` on an `n × n`
    /// torus.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no valid destination distinct from the source
    /// for the stochastic patterns) or if `radius == 0` for
    /// [`Pattern::Local`].
    pub fn destination<R: Rng + ?Sized>(self, src: Coord, n: u16, rng: &mut R) -> Coord {
        assert!(n >= 2, "pattern needs at least a 2x2 torus");
        match self {
            Pattern::Random => loop {
                let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                if d != src {
                    return d;
                }
            },
            Pattern::Local { radius } => {
                assert!(radius > 0, "local radius must be positive");
                let r = radius.min(n - 1) as i32;
                loop {
                    let dx = rng.gen_range(-r..=r);
                    let dy = rng.gen_range(-r..=r);
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    if dx.abs() + dy.abs() > r {
                        continue;
                    }
                    let x = (src.x as i32 + dx).rem_euclid(n as i32) as u16;
                    let y = (src.y as i32 + dy).rem_euclid(n as i32) as u16;
                    return Coord::new(x, y);
                }
            }
            Pattern::BitComplement => Coord::new(n - 1 - src.x, n - 1 - src.y),
            Pattern::Transpose => Coord::new(src.y, src.x),
            Pattern::Tornado => Coord::new((src.x + n / 2) % n, src.y),
            Pattern::Hotspot { percent } => {
                assert!((1..=100).contains(&percent), "hotspot percent out of range");
                if rng.gen_range(0..100) < percent as u32 {
                    // Fixed hotspot set: the four quadrant centers.
                    let q = n / 4;
                    let spots = [
                        Coord::new(q, q),
                        Coord::new(n - 1 - q, q),
                        Coord::new(q, n - 1 - q),
                        Coord::new(n - 1 - q, n - 1 - q),
                    ];
                    spots[rng.gen_range(0..spots.len())]
                } else {
                    Pattern::Random.destination(src, n, rng)
                }
            }
            Pattern::Shuffle => {
                let bits = bit_width(n);
                let id = src.to_node_id(n) as u32;
                let mask = (1u32 << (2 * bits)) - 1;
                let shuffled = ((id << 1) | (id >> (2 * bits - 1))) & mask;
                Coord::from_node_id(shuffled as usize, n)
            }
            Pattern::BitReverse => {
                let bits = 2 * bit_width(n);
                let id = src.to_node_id(n) as u32;
                let mut rev = 0u32;
                for b in 0..bits {
                    if id & (1 << b) != 0 {
                        rev |= 1 << (bits - 1 - b);
                    }
                }
                Coord::from_node_id(rev as usize, n)
            }
        }
    }
}

/// log2 of a power-of-two torus side.
fn bit_width(n: u16) -> u32 {
    assert!(n.is_power_of_two(), "bit patterns need power-of-two N");
    n.trailing_zeros()
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn random_excludes_self_and_covers_torus() {
        let mut r = rng();
        let src = Coord::new(3, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = Pattern::Random.destination(src, 4, &mut r);
            assert_ne!(d, src);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 15); // all nodes except the source
    }

    #[test]
    fn local_respects_radius() {
        let mut r = rng();
        let src = Coord::new(0, 0);
        let n = 8;
        for _ in 0..1000 {
            let d = Pattern::Local { radius: 3 }.destination(src, n, &mut r);
            assert_ne!(d, src);
            // Torus Manhattan distance.
            let dx = d.x.min(n - d.x);
            let dy = d.y.min(n - d.y);
            assert!(dx + dy <= 3, "{d} too far");
        }
    }

    #[test]
    fn bit_complement_is_deterministic_involution() {
        let mut r = rng();
        let n = 8;
        for x in 0..n {
            for y in 0..n {
                let src = Coord::new(x, y);
                let d = Pattern::BitComplement.destination(src, n, &mut r);
                assert_eq!(d, Coord::new(7 - x, 7 - y));
                assert_eq!(Pattern::BitComplement.destination(d, n, &mut r), src);
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut r = rng();
        let d = Pattern::Transpose.destination(Coord::new(2, 5), 8, &mut r);
        assert_eq!(d, Coord::new(5, 2));
        // Diagonal nodes map to themselves (delivered locally).
        let d = Pattern::Transpose.destination(Coord::new(4, 4), 8, &mut r);
        assert_eq!(d, Coord::new(4, 4));
    }

    #[test]
    fn tornado_wraps_halfway() {
        let mut r = rng();
        assert_eq!(
            Pattern::Tornado.destination(Coord::new(6, 1), 8, &mut r),
            Coord::new(2, 1)
        );
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut r = rng();
        let n = 8;
        let mut hot_hits = 0;
        let pattern = Pattern::Hotspot { percent: 60 };
        let spots = [
            Coord::new(2, 2),
            Coord::new(5, 2),
            Coord::new(2, 5),
            Coord::new(5, 5),
        ];
        for _ in 0..2000 {
            let d = pattern.destination(Coord::new(0, 0), n, &mut r);
            if spots.contains(&d) {
                hot_hits += 1;
            }
        }
        // 60% directed + a little random spillover.
        assert!((1000..1500).contains(&hot_hits), "hot hits {hot_hits}");
    }

    #[test]
    #[should_panic(expected = "percent out of range")]
    fn hotspot_percent_validated() {
        Pattern::Hotspot { percent: 0 }.destination(Coord::new(0, 0), 8, &mut rng());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let n = 8;
        let mut seen = std::collections::HashSet::new();
        for id in 0..64 {
            let d = Pattern::Shuffle.destination(Coord::from_node_id(id, n), n, &mut r);
            seen.insert(d.to_node_id(n));
        }
        // A rotate-left is a bijection on ids.
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn bit_reverse_is_an_involution() {
        let mut r = rng();
        let n = 8;
        for id in 0..64 {
            let src = Coord::from_node_id(id, n);
            let d = Pattern::BitReverse.destination(src, n, &mut r);
            let back = Pattern::BitReverse.destination(d, n, &mut r);
            assert_eq!(back, src);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bit_patterns_need_power_of_two() {
        Pattern::Shuffle.destination(Coord::new(0, 0), 6, &mut rng());
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Pattern::Random.name(), "RANDOM");
        assert_eq!(Pattern::Local { radius: 2 }.to_string(), "LOCAL");
        assert_eq!(Pattern::PAPER_SET.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn tiny_torus_rejected() {
        Pattern::Random.destination(Coord::new(0, 0), 1, &mut rng());
    }
}
