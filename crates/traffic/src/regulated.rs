//! Rate-regulated traffic: the admission model of real-time NoC
//! analyses (HopliteRT-style, the paper's ref \[30\]).
//!
//! A [`RegulatedSource`] injects at most one packet per PE per `period`
//! cycles — under such regulation, worst-case latencies stay within a
//! small multiple of the zero-load floors computed by
//! `fasttrack_core::realtime`, which the integration tests check.

use fasttrack_core::geom::Coord;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::TrafficSource;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A token-bucket rate-regulated random-traffic source: every PE injects
/// exactly one packet each `period` cycles (at the period boundary), to
/// uniformly random destinations, for `packets_per_pe` packets.
#[derive(Debug, Clone)]
pub struct RegulatedSource {
    n: u16,
    period: u64,
    packets_per_pe: u64,
    generated: Vec<u64>,
    rng: SmallRng,
}

impl RegulatedSource {
    /// Creates a regulated source for an `n × n` system.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(n: u16, period: u64, packets_per_pe: u64, seed: u64) -> Self {
        assert!(period > 0, "regulation period must be positive");
        RegulatedSource {
            n,
            period,
            packets_per_pe,
            generated: vec![0; n as usize * n as usize],
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The regulation period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl TrafficSource for RegulatedSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        if !cycle.is_multiple_of(self.period) {
            return;
        }
        for node in 0..self.generated.len() {
            if self.generated[node] < self.packets_per_pe {
                let src = Coord::from_node_id(node, self.n);
                let dst = loop {
                    let c =
                        Coord::new(self.rng.gen_range(0..self.n), self.rng.gen_range(0..self.n));
                    if c != src {
                        break c;
                    }
                };
                queues.push(node, dst, cycle, 0);
                self.generated[node] += 1;
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.generated.iter().all(|&g| g >= self.packets_per_pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::{FtPolicy, NocConfig};
    use fasttrack_core::realtime::zero_load_profile;
    use fasttrack_core::sim::SimSession;

    #[test]
    fn regulated_source_obeys_its_budget() {
        let mut src = RegulatedSource::new(4, 10, 5, 1);
        assert_eq!(src.period(), 10);
        let mut q = InjectQueues::new(16);
        for cycle in 0..200 {
            src.pump(cycle, &mut q);
        }
        assert!(src.exhausted());
        assert_eq!(q.total_enqueued(), 16 * 5);
        // All enqueues happened on period boundaries.
        for node in 0..16 {
            while let Some(p) = q.pop(node) {
                assert_eq!(p.enqueued_at % 10, 0);
            }
        }
    }

    #[test]
    fn regulated_traffic_keeps_latency_near_zero_load() {
        // At a gentle regulation (1 packet / 20 cycles / PE) the observed
        // worst case stays within a small multiple of the zero-load
        // worst case — the regime real-time bounds address.
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        let profile = zero_load_profile(&cfg);
        let mut src = RegulatedSource::new(8, 20, 100, 3);
        let report = SimSession::new(&cfg).run(&mut src).unwrap().report;
        assert!(!report.truncated);
        let worst = report.stats.total_latency.max();
        assert!(
            worst <= 4 * profile.max,
            "regulated worst {} vs zero-load max {}",
            worst,
            profile.max
        );
    }

    #[test]
    fn tighter_regulation_tightens_the_tail() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let run = |period| {
            let mut src = RegulatedSource::new(8, period, 200, 7);
            SimSession::new(&cfg).run(&mut src).unwrap().report
        };
        let loose = run(4);
        let tight = run(32);
        assert!(tight.worst_latency() <= loose.worst_latency());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        RegulatedSource::new(4, 0, 1, 0);
    }
}
