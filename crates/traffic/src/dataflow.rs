//! Token LU-factorization dataflow traffic (paper Figure 15c).
//!
//! Sparse LU factorization of SPICE circuit matrices compiles into a
//! token dataflow graph: an operation fires when all its input tokens
//! arrive, computes for a few cycles, and sends result tokens to its
//! dependents. The workload is *latency-bound* — packets are injected
//! along dependency chains, so NoC latency sits directly on the critical
//! path, and (as the paper notes) these graphs have notoriously low ILP.
//!
//! We synthesize circuit-like DAGs (geometric fan-in from a sliding
//! dependency window, long critical paths) scaled to the node counts the
//! paper's benchmark names carry (e.g. `bomhof3_10656` = 10 656 nodes).

use fasttrack_core::geom::Coord;
use fasttrack_core::packet::Delivery;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::TrafficSource;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A dataflow graph: node `i` depends on `deps[i]` (all indices `< i`,
/// so the graph is a DAG by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowGraph {
    deps: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
}

impl DataflowGraph {
    /// Builds a DAG from per-node dependency lists.
    ///
    /// # Panics
    ///
    /// Panics if any dependency is not strictly smaller than its node
    /// (which would break acyclicity).
    pub fn new(deps: Vec<Vec<u32>>) -> Self {
        let mut succs = vec![Vec::new(); deps.len()];
        for (i, d) in deps.iter().enumerate() {
            for &p in d {
                assert!(
                    (p as usize) < i,
                    "dependency {p} of node {i} breaks DAG order"
                );
                succs[p as usize].push(i as u32);
            }
        }
        DataflowGraph { deps, succs }
    }

    /// Number of operations.
    pub fn num_nodes(&self) -> usize {
        self.deps.len()
    }

    /// Total edges (tokens that must traverse the NoC or a PE).
    pub fn num_edges(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Dependencies of node `i`.
    pub fn deps(&self, i: usize) -> &[u32] {
        &self.deps[i]
    }

    /// Dependents of node `i`.
    pub fn successors(&self, i: usize) -> &[u32] {
        &self.succs[i]
    }

    /// Length of the longest dependency chain (critical path in nodes).
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.deps.len()];
        let mut best = 0;
        for i in 0..self.deps.len() {
            let d = self.deps[i]
                .iter()
                .map(|&p| depth[p as usize] + 1)
                .max()
                .unwrap_or(0);
            depth[i] = d;
            best = best.max(d);
        }
        best + usize::from(!self.deps.is_empty())
    }
}

/// Synthesizes an LU-factorization-style DAG: node `i` draws a geometric
/// number of dependencies from a sliding window `[i - window, i)` — a
/// small window yields the long, thin graphs characteristic of circuit
/// LU (low ILP); a large window adds parallelism.
pub fn lu_dag(nodes: usize, window: usize, avg_fanin: f64, seed: u64) -> DataflowGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut deps = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let mut d = Vec::new();
        if i > 0 {
            // Geometric fan-in with mean avg_fanin, at least one.
            let mut fanin = 1;
            while rng.gen::<f64>() < 1.0 - 1.0 / avg_fanin {
                fanin += 1;
            }
            let lo = i.saturating_sub(window);
            for _ in 0..fanin {
                let p = rng.gen_range(lo..i) as u32;
                if !d.contains(&p) {
                    d.push(p);
                }
            }
        }
        deps.push(d);
    }
    DataflowGraph::new(deps)
}

/// A named LU benchmark (Figure 15c): the paper's name encodes the node
/// count (`s1423_6648` = 6 648 dataflow nodes).
#[derive(Debug, Clone)]
pub struct LuBenchmark {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// The synthesized dataflow graph.
    pub dag: DataflowGraph,
}

/// The Figure 15c benchmark suite.
pub fn lu_benchmarks() -> Vec<LuBenchmark> {
    let spec: [(&str, usize, usize, f64); 12] = [
        ("sandia_20105", 20105, 96, 2.2),
        ("simucad_ram2k", 15000, 80, 2.0),
        ("simucad_dac", 12000, 72, 2.1),
        ("sandia_12944", 12944, 72, 2.2),
        ("s953_4568", 4568, 48, 2.0),
        ("s953_3197", 3197, 40, 2.0),
        ("s1494_9156", 9156, 64, 2.1),
        ("s1488_4872", 4872, 48, 2.0),
        ("s1423_6648", 6648, 56, 2.1),
        ("s1423_2582", 2582, 36, 2.0),
        ("ram8k_10823", 10823, 64, 2.2),
        ("bomhof3_10656", 10656, 64, 2.1),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(name, nodes, window, fanin))| LuBenchmark {
            name,
            dag: lu_dag(nodes, window, fanin, 0xda7a_0000 + i as u64),
        })
        .collect()
}

/// Dependency-driven traffic source executing a [`DataflowGraph`] on an
/// `n × n` NoC: operations are assigned to PEs round-robin, each PE
/// executes one ready operation at a time (`compute_cycles` each), and
/// every dependency edge whose endpoints differ becomes a NoC packet.
#[derive(Debug, Clone)]
pub struct DataflowSource {
    n: u16,
    compute_cycles: u64,
    /// Remaining un-received inputs per node.
    missing: Vec<u32>,
    /// Ready-to-run operations per PE.
    ready: Vec<Vec<u32>>,
    /// Cycle at which each PE finishes its current operation (paired
    /// with the operation id), if busy.
    running: Vec<Option<(u64, u32)>>,
    /// Operations completed so far.
    completed: usize,
    dag: DataflowGraph,
}

impl DataflowSource {
    /// Creates a source; nodes with no dependencies are ready at cycle 0.
    pub fn new(dag: DataflowGraph, n: u16, compute_cycles: u64) -> Self {
        let pes = n as usize * n as usize;
        let mut missing = Vec::with_capacity(dag.num_nodes());
        let mut ready = vec![Vec::new(); pes];
        for i in 0..dag.num_nodes() {
            let m = dag.deps(i).len() as u32;
            missing.push(m);
            if m == 0 {
                ready[i % pes].push(i as u32);
            }
        }
        // FIFO order: reverse so pop() takes the lowest id first.
        for r in &mut ready {
            r.reverse();
        }
        DataflowSource {
            n,
            compute_cycles,
            missing,
            ready,
            running: vec![None; pes],
            completed: 0,
            dag,
        }
    }

    /// Operations completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    fn pe_of(&self, node: u32) -> usize {
        node as usize % self.ready.len()
    }
}

impl TrafficSource for DataflowSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        let pes = self.ready.len();
        for pe in 0..pes {
            // Finish a running operation: emit its output tokens.
            if let Some((done_at, node)) = self.running[pe] {
                if done_at <= cycle {
                    self.running[pe] = None;
                    self.completed += 1;
                    for s in 0..self.dag.successors(node as usize).len() {
                        let succ = self.dag.successors(node as usize)[s];
                        let dst = self.pe_of(succ);
                        queues.push(pe, Coord::from_node_id(dst, self.n), cycle, succ as u64);
                    }
                }
            }
            // Start the next ready operation.
            if self.running[pe].is_none() {
                if let Some(node) = self.ready[pe].pop() {
                    self.running[pe] = Some((cycle + self.compute_cycles, node));
                }
            }
        }
    }

    fn on_delivery(&mut self, delivery: &Delivery) {
        let node = delivery.packet.tag as usize;
        debug_assert!(self.missing[node] > 0);
        self.missing[node] -= 1;
        if self.missing[node] == 0 {
            let pe = self.pe_of(node as u32);
            self.ready[pe].insert(0, node as u32);
        }
    }

    fn exhausted(&self) -> bool {
        self.completed == self.dag.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::{FtPolicy, NocConfig};
    use fasttrack_core::sim::{SimOptions, SimSession};

    #[test]
    fn dag_construction_and_critical_path() {
        // Chain 0 -> 1 -> 2 plus independent 3.
        let dag = DataflowGraph::new(vec![vec![], vec![0], vec![1], vec![]]);
        assert_eq!(dag.num_nodes(), 4);
        assert_eq!(dag.num_edges(), 2);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.critical_path_len(), 3);
    }

    #[test]
    #[should_panic(expected = "breaks DAG order")]
    fn forward_dependency_rejected() {
        DataflowGraph::new(vec![vec![1], vec![]]);
    }

    #[test]
    fn lu_dag_properties() {
        let dag = lu_dag(2000, 40, 2.0, 9);
        assert_eq!(dag.num_nodes(), 2000);
        // Every non-root node has at least one dependency.
        assert!((1..2000).all(|i| !dag.deps(i).is_empty()));
        // Small window ⇒ long critical path (low ILP).
        assert!(
            dag.critical_path_len() > 100,
            "critical path {} too short for an LU-like graph",
            dag.critical_path_len()
        );
    }

    #[test]
    fn dataflow_executes_all_nodes() {
        let dag = lu_dag(500, 20, 2.0, 3);
        let edges = dag.num_edges();
        let mut src = DataflowSource::new(dag, 4, 2);
        let cfg = NocConfig::hoplite(4).unwrap();
        let report = SimSession::new(&cfg).run(&mut src).unwrap().report;
        assert!(!report.truncated, "dataflow did not drain");
        assert_eq!(src.completed(), 500);
        assert_eq!(report.stats.delivered as usize, edges);
    }

    #[test]
    fn dataflow_latency_sensitive_ft_speedup_at_scale() {
        // The paper sees most LU speedup at large PE counts; at small
        // scale FastTrack should at least not lose.
        let dag = lu_dag(1500, 120, 2.2, 5);
        let opts = SimOptions::default();
        let mut s1 = DataflowSource::new(dag.clone(), 4, 1);
        let hoplite = SimSession::new(&NocConfig::hoplite(4).unwrap())
            .options(opts)
            .run(&mut s1)
            .unwrap()
            .report;
        let mut s2 = DataflowSource::new(dag, 4, 1);
        let ft = SimSession::new(&NocConfig::fasttrack(4, 2, 1, FtPolicy::Full).unwrap())
            .options(opts)
            .run(&mut s2)
            .unwrap()
            .report;
        assert!(!hoplite.truncated && !ft.truncated);
        let speedup = hoplite.cycles as f64 / ft.cycles as f64;
        assert!(speedup > 0.9, "FT should not lose on dataflow: {speedup}");
    }

    #[test]
    fn benchmark_names_encode_sizes() {
        let benches = lu_benchmarks();
        assert_eq!(benches.len(), 12);
        let b = benches.iter().find(|b| b.name == "bomhof3_10656").unwrap();
        assert_eq!(b.dag.num_nodes(), 10656);
    }
}
