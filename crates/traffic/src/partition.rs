//! Data-to-PE partitioning strategies.
//!
//! How matrix rows / graph vertices map onto PEs decides whether data
//! locality becomes *NoC* locality. Scale-free workloads use a cyclic
//! (hash) partition to spread hub vertices; banded circuits and road
//! networks use a block partition so neighboring elements land on the
//! same or adjacent PEs — which is why the paper's local benchmarks
//! (hamm_memplus, roadNet-CA, freqmine) "do not need nor benefit from a
//! faster NoC".

/// An element-to-PE assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partition {
    /// Element `i` lives on PE `i % pes` — balances heavy-tailed degree
    /// distributions, scatters local structure across the machine.
    Cyclic,
    /// Contiguous blocks of `ceil(total/pes)` elements per PE —
    /// preserves banded/spatial locality.
    Block,
    /// 2-D block partition for elements that are cells of a
    /// `side × side` grid (road networks): the grid is tiled by the
    /// (square) PE array, so spatial neighbors stay on the same or an
    /// adjacent PE at *every* PE count.
    Grid2d {
        /// Grid side length (element id = `y * side + x`).
        side: u32,
    },
}

impl Partition {
    /// PE owning element `i` out of `total`, across `pes` PEs.
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0` or `i >= total`.
    pub fn owner(self, i: u32, total: usize, pes: usize) -> usize {
        assert!(pes > 0, "need at least one PE");
        assert!((i as usize) < total, "element {i} out of {total}");
        match self {
            Partition::Cyclic => i as usize % pes,
            Partition::Block => {
                let block = total.div_ceil(pes);
                (i as usize / block).min(pes - 1)
            }
            Partition::Grid2d { side } => {
                let pe_side = (pes as f64).sqrt() as usize;
                assert_eq!(pe_side * pe_side, pes, "Grid2d needs a square PE array");
                let side = side as usize;
                let (x, y) = (i as usize % side, i as usize / side);
                let block = side.div_ceil(pe_side);
                let (px, py) = ((x / block).min(pe_side - 1), (y / block).min(pe_side - 1));
                py * pe_side + px
            }
        }
    }

    /// The partition matching a benchmark's character: block for
    /// local-dominated workloads, cyclic otherwise.
    pub fn for_local_dominated(local: bool) -> Partition {
        if local {
            Partition::Block
        } else {
            Partition::Cyclic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_wraps() {
        assert_eq!(Partition::Cyclic.owner(0, 100, 16), 0);
        assert_eq!(Partition::Cyclic.owner(17, 100, 16), 1);
        assert_eq!(Partition::Cyclic.owner(99, 100, 16), 3);
    }

    #[test]
    fn block_is_contiguous_and_covers_all_pes() {
        let total = 100;
        let pes = 16;
        let mut last = 0;
        for i in 0..total as u32 {
            let o = Partition::Block.owner(i, total, pes);
            assert!(o >= last, "block owners must be monotone");
            assert!(o < pes);
            last = o;
        }
        assert_eq!(Partition::Block.owner(0, total, pes), 0);
        assert_eq!(Partition::Block.owner(99, total, pes), 14); // ceil(100/16)=7; 99/7=14
    }

    #[test]
    fn block_neighbors_stay_close() {
        // Adjacent elements map to the same or the next PE.
        for i in 0..999u32 {
            let a = Partition::Block.owner(i, 1000, 16);
            let b = Partition::Block.owner(i + 1, 1000, 16);
            assert!(b == a || b == a + 1);
        }
    }

    #[test]
    fn grid2d_preserves_spatial_locality() {
        // 100x100 grid over 16 PEs (4x4): 4-neighbors stay on the same
        // or an edge-adjacent PE tile.
        let side = 100u32;
        let p = Partition::Grid2d { side };
        let total = (side * side) as usize;
        for v in 0..(total as u32 - side) {
            if v % side == side - 1 {
                continue;
            }
            let a = p.owner(v, total, 16);
            let right = p.owner(v + 1, total, 16);
            let down = p.owner(v + side, total, 16);
            let (ax, ay) = (a % 4, a / 4);
            for b in [right, down] {
                let (bx, by) = (b % 4, b / 4);
                assert!(ax.abs_diff(bx) <= 1 && ay.abs_diff(by) <= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "square PE array")]
    fn grid2d_requires_square_pes() {
        Partition::Grid2d { side: 10 }.owner(0, 100, 12);
    }

    #[test]
    fn selection_helper() {
        assert_eq!(Partition::for_local_dominated(true), Partition::Block);
        assert_eq!(Partition::for_local_dominated(false), Partition::Cyclic);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bounds_checked() {
        Partition::Cyclic.owner(10, 10, 4);
    }
}
