//! Graph substrate: synthetic generators standing in for the paper's
//! SNAP datasets (Figure 15b).
//!
//! Social/web graphs (wiki-Vote, soc-Slashdot0902, web-Google,
//! web-Stanford, amazon0302) are modeled with the R-MAT recursive
//! generator, which reproduces their power-law degree distributions and
//! community skew; roadNet-CA is modeled as a 2-D lattice with sparse
//! shortcuts (planar, almost entirely local). The large web graphs are
//! scaled down (documented per benchmark) to keep simulation tractable;
//! the traffic *geometry* — how edge endpoints spread across a vertex
//! partition — is what the NoC sees, and it is scale-free.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::partition::Partition;

/// A directed graph as an edge list over `0..num_vertices`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph, dropping self-loops and duplicate edges.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn new(num_vertices: usize, mut edges: Vec<(u32, u32)>) -> Self {
        for &(u, v) in &edges {
            assert!((u as usize) < num_vertices && (v as usize) < num_vertices);
        }
        edges.retain(|&(u, v)| u != v);
        edges.sort_unstable();
        edges.dedup();
        Graph {
            num_vertices,
            edges,
        }
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Edge count.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }
}

/// R-MAT generator (Chakrabarti et al.): recursively partitions the
/// adjacency matrix with probabilities `(a, b, c, d)`; `a ≫ d` yields
/// the heavy-tailed, community-skewed structure of social/web graphs.
///
/// # Panics
///
/// Panics if `scale > 31` or the probabilities do not sum to ≈1.
pub fn rmat(scale: u32, edges: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(scale <= 31);
    let d = 1.0 - a - b - c;
    assert!(d >= -1e-9, "probabilities exceed 1");
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(edges);
    for _ in 0..edges {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: nothing to add
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        list.push((u, v));
    }
    Graph::new(n, list)
}

/// Road-network generator: a `side × side` 4-neighbor lattice with a
/// small fraction of shortcut edges (highway ramps).
pub fn road_network(side: usize, shortcut_fraction: f64, seed: u64) -> Graph {
    let n = side * side;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let at = |x: usize, y: usize| (y * side + x) as u32;
    for y in 0..side {
        for x in 0..side {
            if x + 1 < side {
                edges.push((at(x, y), at(x + 1, y)));
                edges.push((at(x + 1, y), at(x, y)));
            }
            if y + 1 < side {
                edges.push((at(x, y), at(x, y + 1)));
                edges.push((at(x, y + 1), at(x, y)));
            }
        }
    }
    let shortcuts = (edges.len() as f64 * shortcut_fraction) as usize;
    for _ in 0..shortcuts {
        edges.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
    }
    Graph::new(n, edges)
}

/// A named graph benchmark: a synthetic stand-in for one of the paper's
/// SNAP graphs.
#[derive(Debug, Clone)]
pub struct GraphBenchmark {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// The synthetic graph.
    pub graph: Graph,
    /// True for graphs dominated by local structure (the paper notes
    /// roadNet-CA does not benefit from a faster NoC).
    pub local_dominated: bool,
    /// Vertex-to-PE partition preserving the benchmark's character:
    /// cyclic for scale-free graphs, 2-D blocks for road networks.
    pub partition: Partition,
}

/// The Figure 15b benchmark suite. Scale notes: wiki-Vote is near full
/// scale; Slashdot/amazon ~1/4; web-Google and web-Stanford ~1/8 and
/// ~1/4 respectively (R-MAT keeps their degree-skew geometry).
pub fn graph_benchmarks() -> Vec<GraphBenchmark> {
    vec![
        GraphBenchmark {
            name: "wiki-Vote",
            graph: rmat(13, 103_000, 0.57, 0.19, 0.19, 0xbee_f001),
            local_dominated: false,
            partition: Partition::Cyclic,
        },
        GraphBenchmark {
            name: "web-Stanford",
            graph: rmat(16, 580_000, 0.55, 0.20, 0.20, 0xbee_f002),
            local_dominated: false,
            partition: Partition::Cyclic,
        },
        GraphBenchmark {
            name: "web-Google",
            graph: rmat(16, 640_000, 0.57, 0.19, 0.19, 0xbee_f003),
            local_dominated: false,
            partition: Partition::Cyclic,
        },
        GraphBenchmark {
            name: "soc-Slashdot0902",
            graph: rmat(14, 230_000, 0.59, 0.18, 0.18, 0xbee_f004),
            local_dominated: false,
            partition: Partition::Cyclic,
        },
        GraphBenchmark {
            name: "roadNet-CA",
            graph: road_network(500, 0.01, 0xbee_f005),
            local_dominated: true,
            partition: Partition::Grid2d { side: 500 },
        },
        GraphBenchmark {
            name: "amazon0302",
            graph: rmat(15, 310_000, 0.50, 0.22, 0.22, 0xbee_f006),
            local_dominated: false,
            partition: Partition::Cyclic,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_dedups_and_drops_self_loops() {
        let g = Graph::new(4, vec![(0, 1), (0, 1), (2, 2), (3, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn rmat_power_law_degrees() {
        let g = rmat(12, 60_000, 0.57, 0.19, 0.19, 5);
        let mut out_deg = vec![0u32; g.num_vertices()];
        for &(u, _) in g.edges() {
            out_deg[u as usize] += 1;
        }
        let mut degs: Vec<_> = out_deg.into_iter().filter(|&d| d > 0).collect();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(
            max > 20 * median,
            "R-MAT should be heavy-tailed: max {max}, median {median}"
        );
    }

    #[test]
    fn road_network_is_planar_local() {
        let g = road_network(50, 0.0, 1);
        // 4-neighbor lattice: every edge connects adjacent cells.
        for &(u, v) in g.edges() {
            let (ux, uy) = (u % 50, u / 50);
            let (vx, vy) = (v % 50, v / 50);
            let dist = (ux as i32 - vx as i32).abs() + (uy as i32 - vy as i32).abs();
            assert_eq!(dist, 1);
        }
        // Both directions present.
        assert_eq!(g.num_edges(), 2 * 2 * 50 * 49);
    }

    #[test]
    fn benchmark_suite_complete() {
        // Spot-check the cheap entries; full generation covered by the
        // bench harness.
        let g = rmat(13, 103_000, 0.57, 0.19, 0.19, 0xbee_f001);
        assert!(g.num_edges() > 80_000);
        assert_eq!(g.num_vertices(), 8192);
    }
}
