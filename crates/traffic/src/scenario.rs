//! Versioned scenario traces: record a live [`TrafficSource`] run and
//! replay the realized injection schedule byte-identically.
//!
//! A scenario trace file is line-oriented text:
//!
//! ```text
//! fasttrack-scenario-trace v1
//! {"schema":2,"noc":"ft:8:2:1","channels":1,...}
//! m <cycle> <src> <dst> <tag>
//! ...
//! end <count> <checksum-hex>
//! ```
//!
//! Schema v2 generalizes the `noc` key from the three torus kinds to
//! the full [`TopologySpec`] grammar (`shg:<q>:<delta>`,
//! `mesh:<n>:<depth>`); [`ScenarioHeader::topology`] parses it. Every
//! v1 file is a valid v2 file (the torus grammar is a subset), so v1
//! corpus entries decode — and re-encode byte-identically, since the
//! recorded `schema` number is preserved. Unknown header keys are
//! ignored in both schemas, so older builds read newer minor traces.
//!
//! * Line 1 is the magic string ([`SCENARIO_MAGIC`]).
//! * Line 2 is a single flat JSON header object (hand-rolled — the
//!   repo vendors no serde). String values never contain escapes.
//! * Each `m` record is one realized queue push, in global push order
//!   (nondecreasing cycles; `PacketId` assignment order within a
//!   cycle), so replay reproduces identical packet ids and therefore
//!   an identical event stream.
//! * The `end` trailer carries the record count and a SplitMix64
//!   running checksum over the body, mirroring the sweep journal: a
//!   file missing its trailer is a torn tail ([`TraceError::TornTail`]),
//!   and interior corruption fails the checksum.
//!
//! Recording works by wrapping any source in a [`RecordingSource`]:
//! before delegating `pump`, it snapshots every queue depth, then
//! scans the FIFO tails for newly appended packets and sorts them by
//! [`PacketId`](fasttrack_core::packet::PacketId) to recover the exact
//! global push order. Replaying that schedule open-loop through a
//! [`ReplaySource`] reproduces the run exactly because the engine is
//! deterministic given the push schedule.

use std::fmt;

use fasttrack_core::config::{FtPolicy, NocConfig};
use fasttrack_core::fault::Fault;
use fasttrack_core::geom::Coord;
use fasttrack_core::packet::Delivery;
use fasttrack_core::port::OutPort;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::TrafficSource;
use fasttrack_core::sweep::splitmix64;
use fasttrack_core::topology::TopologySpec;

/// First line of every v1 scenario trace.
pub const SCENARIO_MAGIC: &str = "fasttrack-scenario-trace v1";

/// The schema number written by this library. v2 widened the `noc`
/// key to the full [`TopologySpec`] grammar; decoded v1 headers keep
/// their recorded number so re-encoding is byte-identical.
pub const SCENARIO_SCHEMA: u32 = 2;

/// One realized queue push: at `cycle`, node `src` enqueued a packet
/// for node `dst` carrying `tag`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioRecord {
    /// Pump cycle of the push.
    pub cycle: u64,
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Opaque workload tag.
    pub tag: u64,
}

/// Expected outcome embedded in a corpus entry, checked on replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Expectation {
    /// Packets delivered.
    pub delivered: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets dropped by faults.
    pub dropped: u64,
    /// Whether the run hit its cycle budget.
    pub truncated: bool,
}

/// Scenario metadata: everything needed to rebuild the session.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioHeader {
    /// Format schema (currently always [`SCENARIO_SCHEMA`]).
    pub schema: u32,
    /// Topology spec string in the [`TopologySpec`] grammar, e.g.
    /// `ft:8:2:1` (`ftlite:` for Inject policy) or, from schema v2 on,
    /// `shg:8:2` / `mesh:4:4`.
    pub noc: String,
    /// Multichannel bank width (1 = single channel).
    pub channels: usize,
    /// Cycle budget of the recorded run.
    pub max_cycles: u64,
    /// Warmup cycles of the recorded run.
    pub warmup: u64,
    /// Free-form generator label (e.g. `spmv`, `fuzz`).
    pub generator: String,
    /// Cycle at which the recorded generator first reported itself
    /// exhausted. Closed-loop sources (dataflow) stay unexhausted past
    /// their last push while trailing compute drains, which lengthens
    /// the recorded run; replay holds its own exhaustion until this
    /// cycle so the run length — and therefore the report — matches
    /// byte-for-byte. `None` means "exhausted at the last push".
    pub drained_at: Option<u64>,
    /// Faults active during the run, in plan order.
    pub faults: Vec<Fault>,
    /// Whether the recorded run used the standard fallback chains
    /// (`FallbackConfig::standard()`); replay must match or the byte
    /// comparison diverges. `false` (the default, omitted from the
    /// encoding) means chains were off.
    pub fallback: bool,
    /// Optional expected outcome for self-checking corpus entries.
    pub expect: Option<Expectation>,
}

impl ScenarioHeader {
    /// A minimal header for an `noc` spec with library defaults.
    pub fn new(noc: &str, generator: &str) -> Self {
        ScenarioHeader {
            schema: SCENARIO_SCHEMA,
            noc: noc.to_string(),
            channels: 1,
            max_cycles: 2_000_000,
            warmup: 0,
            generator: generator.to_string(),
            drained_at: None,
            faults: Vec::new(),
            fallback: false,
            expect: None,
        }
    }

    /// Torus side length implied by the spec string (`hoplite:8` → 8).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadHeader`] when the spec has no numeric
    /// second field.
    pub fn side_len(&self) -> Result<u16, TraceError> {
        let mut fields = self.noc.split(':');
        let _kind = fields.next();
        fields
            .next()
            .and_then(|f| f.parse::<u16>().ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| TraceError::BadHeader(format!("unparsable noc spec {:?}", self.noc)))
    }

    /// Rebuilds the full [`NocConfig`] from the spec string, using the
    /// same grammar as the CLI: `hoplite:<n>`, `ft:<n>:<d>:<r>` (Full
    /// policy), or `ftlite:<n>:<d>:<r>` (Inject policy).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadHeader`] for an unknown topology word,
    /// malformed numbers, or parameters the constructors reject.
    pub fn noc_config(&self) -> Result<NocConfig, TraceError> {
        let bad = |why: String| TraceError::BadHeader(why);
        let fields: Vec<&str> = self.noc.split(':').collect();
        let num = |s: &str| {
            s.parse::<u16>()
                .map_err(|_| bad(format!("bad number {s:?} in noc spec {:?}", self.noc)))
        };
        let cfg = match fields.as_slice() {
            ["hoplite", n] => NocConfig::hoplite(num(n)?),
            ["ft", n, d, r] => NocConfig::fasttrack(num(n)?, num(d)?, num(r)?, FtPolicy::Full),
            ["ftlite", n, d, r] => {
                NocConfig::fasttrack(num(n)?, num(d)?, num(r)?, FtPolicy::Inject)
            }
            _ => return Err(bad(format!("unknown noc spec {:?}", self.noc))),
        };
        cfg.map_err(|e| bad(format!("invalid noc spec {:?}: {e}", self.noc)))
    }

    /// The [`TopologySpec`] this header names — the schema-v2 view of
    /// the `noc` key. v1 headers migrate transparently: their torus
    /// spec strings are a subset of the v2 grammar, so the same parse
    /// covers both.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadHeader`] when the spec string does not
    /// parse under the [`TopologySpec`] grammar.
    pub fn topology(&self) -> Result<TopologySpec, TraceError> {
        self.noc
            .parse::<TopologySpec>()
            .map_err(|e| TraceError::BadHeader(format!("bad noc spec {:?}: {e}", self.noc)))
    }
}

/// A decoded scenario: header plus the realized push schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTrace {
    /// Scenario metadata.
    pub header: ScenarioHeader,
    /// Realized pushes in global push order (nondecreasing cycles).
    pub records: Vec<ScenarioRecord>,
}

/// Why a scenario trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The first line is not [`SCENARIO_MAGIC`].
    BadMagic,
    /// The header line is missing or malformed (reason attached).
    BadHeader(String),
    /// The schema number is newer than this library understands.
    UnsupportedSchema(u32),
    /// A body line is not a well-formed `m` record.
    BadRecord {
        /// 1-based line number in the file.
        line: usize,
    },
    /// A record names a node outside the system.
    NodeOutOfRange {
        /// 1-based line number in the file.
        line: usize,
        /// The offending node id (kept at `u64` so 32-bit hosts still
        /// report the un-truncated value).
        node: u64,
    },
    /// Record cycles went backwards (push order must be nondecreasing).
    NonMonotonic {
        /// 1-based line number in the file.
        line: usize,
    },
    /// The `end` trailer is missing — the file was torn mid-write.
    TornTail,
    /// The trailer checksum does not match the body.
    ChecksumMismatch,
    /// The trailer count does not match the number of records.
    CountMismatch {
        /// Count claimed by the trailer.
        expected: u64,
        /// Records actually present.
        found: u64,
    },
    /// Content after the `end` trailer.
    TrailingData {
        /// 1-based line number in the file.
        line: usize,
    },
    /// A fault encoding in the header could not be parsed.
    BadFault(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a scenario trace (bad magic line)"),
            TraceError::BadHeader(why) => write!(f, "bad trace header: {why}"),
            TraceError::UnsupportedSchema(v) => {
                write!(f, "trace schema v{v} is newer than this build understands")
            }
            TraceError::BadRecord { line } => write!(f, "line {line}: malformed record"),
            TraceError::NodeOutOfRange { line, node } => {
                write!(f, "line {line}: node {node} out of range")
            }
            TraceError::NonMonotonic { line } => {
                write!(f, "line {line}: record cycle went backwards")
            }
            TraceError::TornTail => write!(f, "trace has no end trailer (torn tail)"),
            TraceError::ChecksumMismatch => write!(f, "trace body checksum mismatch"),
            TraceError::CountMismatch { expected, found } => {
                write!(f, "trailer claims {expected} records, found {found}")
            }
            TraceError::TrailingData { line } => write!(f, "line {line}: data after end trailer"),
            TraceError::BadFault(text) => write!(f, "unparsable fault {text:?}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// SplitMix64 hash of one line, mirroring the sweep journal's row hash.
fn line_hash(line: &str) -> u64 {
    let mut h = splitmix64(line.len() as u64);
    for &b in line.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// Canonical token for an [`OutPort`] in the fault codec.
fn port_token(out: OutPort) -> &'static str {
    match out {
        OutPort::EastEx => "east-ex",
        OutPort::EastSh => "east-sh",
        OutPort::SouthEx => "south-ex",
        OutPort::SouthSh => "south-sh",
        OutPort::Exit => "exit",
    }
}

fn parse_port(token: &str) -> Option<OutPort> {
    Some(match token {
        "east-ex" => OutPort::EastEx,
        "east-sh" => OutPort::EastSh,
        "south-ex" => OutPort::SouthEx,
        "south-sh" => OutPort::SouthSh,
        "exit" => OutPort::Exit,
        _ => return None,
    })
}

/// Encodes one fault as a compact space-separated token string.
pub fn encode_fault(fault: &Fault) -> String {
    match *fault {
        Fault::DeadLink { node, out } => format!("dead {node} {}", port_token(out)),
        Fault::TransientLink {
            node,
            out,
            from,
            until,
            corrupt,
        } => {
            let mode = if corrupt { "corrupt" } else { "drop" };
            format!("transient {node} {} {from} {until} {mode}", port_token(out))
        }
        Fault::FailStopRouter { node, at } => format!("failstop {node} {at}"),
        Fault::StalledInjector { node, from, until } => format!("stall {node} {from} {until}"),
        Fault::DownLink {
            node,
            out,
            from,
            until,
        } => format!("down {node} {} {from} {until}", port_token(out)),
    }
}

/// Decodes a fault written by [`encode_fault`].
///
/// # Errors
///
/// Returns [`TraceError::BadFault`] on any malformed encoding.
pub fn decode_fault(text: &str) -> Result<Fault, TraceError> {
    let bad = || TraceError::BadFault(text.to_string());
    let fields: Vec<&str> = text.split_whitespace().collect();
    let num = |s: &str| s.parse::<u64>().map_err(|_| bad());
    match fields.as_slice() {
        ["dead", node, out] => Ok(Fault::DeadLink {
            node: num(node)? as usize,
            out: parse_port(out).ok_or_else(bad)?,
        }),
        ["transient", node, out, from, until, mode] => Ok(Fault::TransientLink {
            node: num(node)? as usize,
            out: parse_port(out).ok_or_else(bad)?,
            from: num(from)?,
            until: num(until)?,
            corrupt: match *mode {
                "corrupt" => true,
                "drop" => false,
                _ => return Err(bad()),
            },
        }),
        ["failstop", node, at] => Ok(Fault::FailStopRouter {
            node: num(node)? as usize,
            at: num(at)?,
        }),
        ["stall", node, from, until] => Ok(Fault::StalledInjector {
            node: num(node)? as usize,
            from: num(from)?,
            until: num(until)?,
        }),
        ["down", node, out, from, until] => Ok(Fault::DownLink {
            node: num(node)? as usize,
            out: parse_port(out).ok_or_else(bad)?,
            from: num(from)?,
            until: num(until)?,
        }),
        _ => Err(bad()),
    }
}

/// One value of the flat hand-rolled JSON header.
enum JsonValue {
    Str(String),
    Int(u64),
    Bool(bool),
}

/// Parses a flat JSON object with string / unsigned-integer / boolean
/// values and no escapes — exactly the subset [`ScenarioTrace::encode`]
/// emits. Anything else is a [`TraceError::BadHeader`].
fn parse_flat_json(text: &str) -> Result<Vec<(String, JsonValue)>, TraceError> {
    let err = |why: &str| TraceError::BadHeader(why.to_string());
    let mut chars = text.trim().char_indices().peekable();
    let bytes = text.trim();
    let mut pairs = Vec::new();
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err(err("expected '{'")),
    }
    // Empty object.
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
        return match chars.next() {
            None => Ok(pairs),
            Some(_) => Err(err("data after '}'")),
        };
    }
    loop {
        // "key"
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(err("expected '\"' starting a key")),
        }
        let key_start = chars
            .peek()
            .map(|&(i, _)| i)
            .ok_or_else(|| err("eof in key"))?;
        let key_end;
        loop {
            match chars.next() {
                Some((i, '"')) => {
                    key_end = i;
                    break;
                }
                Some((_, '\\')) => return Err(err("escapes unsupported")),
                Some(_) => {}
                None => return Err(err("eof in key")),
            }
        }
        let key = bytes[key_start..key_end].to_string();
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(err("expected ':'")),
        }
        // value
        let value = match chars.peek() {
            Some(&(_, '"')) => {
                chars.next();
                let vstart = chars
                    .peek()
                    .map(|&(i, _)| i)
                    .ok_or_else(|| err("eof in value"))?;
                let vend;
                loop {
                    match chars.next() {
                        Some((i, '"')) => {
                            vend = i;
                            break;
                        }
                        Some((_, '\\')) => return Err(err("escapes unsupported")),
                        Some(_) => {}
                        None => return Err(err("eof in value")),
                    }
                }
                JsonValue::Str(bytes[vstart..vend].to_string())
            }
            Some(&(_, 't')) | Some(&(_, 'f')) => {
                let start = chars.peek().map(|&(i, _)| i).unwrap();
                let mut end = bytes.len();
                while let Some(&(i, c)) = chars.peek() {
                    if c == ',' || c == '}' {
                        end = i;
                        break;
                    }
                    chars.next();
                }
                match &bytes[start..end] {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    other => return Err(err(&format!("bad literal {other:?}"))),
                }
            }
            Some(&(_, c)) if c.is_ascii_digit() => {
                let start = chars.peek().map(|&(i, _)| i).unwrap();
                let mut end = bytes.len();
                while let Some(&(i, c)) = chars.peek() {
                    if c == ',' || c == '}' {
                        end = i;
                        break;
                    }
                    if !c.is_ascii_digit() {
                        return Err(err("non-integer number"));
                    }
                    chars.next();
                }
                let digits = &bytes[start..end];
                JsonValue::Int(
                    digits
                        .parse::<u64>()
                        .map_err(|_| err(&format!("integer {digits:?} out of range")))?,
                )
            }
            _ => return Err(err("unsupported value")),
        };
        pairs.push((key, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            _ => return Err(err("expected ',' or '}'")),
        }
    }
    match chars.next() {
        None => Ok(pairs),
        Some(_) => Err(err("data after '}'")),
    }
}

impl ScenarioTrace {
    /// Creates a trace from a header and records.
    pub fn new(header: ScenarioHeader, records: Vec<ScenarioRecord>) -> Self {
        ScenarioTrace { header, records }
    }

    /// Serializes the trace to its v1 text form.
    pub fn encode(&self) -> String {
        let h = &self.header;
        let faults: Vec<String> = h.faults.iter().map(encode_fault).collect();
        let mut header = format!(
            "{{\"schema\":{},\"noc\":\"{}\",\"channels\":{},\"max_cycles\":{},\"warmup\":{},\"generator\":\"{}\",\"faults\":\"{}\"",
            h.schema,
            h.noc,
            h.channels,
            h.max_cycles,
            h.warmup,
            h.generator,
            faults.join(";"),
        );
        if let Some(d) = h.drained_at {
            header.push_str(&format!(",\"drained_at\":{d}"));
        }
        if h.fallback {
            header.push_str(",\"fallback\":true");
        }
        if let Some(e) = h.expect {
            header.push_str(&format!(
                ",\"expect_delivered\":{},\"expect_cycles\":{},\"expect_dropped\":{},\"expect_truncated\":{}",
                e.delivered, e.cycles, e.dropped, e.truncated
            ));
        }
        header.push('}');

        let mut out = String::new();
        out.push_str(SCENARIO_MAGIC);
        out.push('\n');
        out.push_str(&header);
        out.push('\n');
        let mut checksum = line_hash(&header);
        for r in &self.records {
            let line = format!("m {} {} {} {}", r.cycle, r.src, r.dst, r.tag);
            checksum = splitmix64(checksum ^ line_hash(&line));
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!("end {} {:016x}\n", self.records.len(), checksum));
        out
    }

    /// Parses a v1 trace, verifying the magic, header, record
    /// well-formedness (in-range nodes, nondecreasing cycles), and the
    /// checksummed trailer.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the first defect; a file cut off
    /// mid-write decodes to [`TraceError::TornTail`] rather than a
    /// silently shortened scenario.
    pub fn decode(text: &str) -> Result<ScenarioTrace, TraceError> {
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or(TraceError::BadMagic)?;
        if magic.trim_end() != SCENARIO_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let (_, header_line) = lines
            .next()
            .ok_or_else(|| TraceError::BadHeader("missing header line".into()))?;
        let header = Self::decode_header(header_line)?;
        let nodes = u64::from(header.side_len()?) * u64::from(header.side_len()?);

        let mut checksum = line_hash(header_line);
        let mut records = Vec::new();
        let mut trailer: Option<(u64, u64)> = None;
        let mut last_cycle = 0u64;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if trailer.is_some() {
                if line.trim().is_empty() {
                    continue;
                }
                return Err(TraceError::TrailingData { line: lineno });
            }
            if let Some(rest) = line.strip_prefix("end ") {
                let mut f = rest.split_whitespace();
                let count = f
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or(TraceError::BadRecord { line: lineno })?;
                let sum = f
                    .next()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or(TraceError::BadRecord { line: lineno })?;
                if f.next().is_some() {
                    return Err(TraceError::BadRecord { line: lineno });
                }
                trailer = Some((count, sum));
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [m, cycle, src, dst, tag] = fields.as_slice() else {
                return Err(TraceError::BadRecord { line: lineno });
            };
            if *m != "m" {
                return Err(TraceError::BadRecord { line: lineno });
            }
            let num = |s: &str| {
                s.parse::<u64>()
                    .map_err(|_| TraceError::BadRecord { line: lineno })
            };
            let (cycle, src, dst, tag) = (num(cycle)?, num(src)?, num(dst)?, num(tag)?);
            // Range-check in u64 BEFORE any narrowing cast, so a huge
            // node id reports as out-of-range instead of wrapping.
            for &node in &[src, dst] {
                if node >= nodes {
                    return Err(TraceError::NodeOutOfRange { line: lineno, node });
                }
            }
            if cycle < last_cycle {
                return Err(TraceError::NonMonotonic { line: lineno });
            }
            last_cycle = cycle;
            checksum = splitmix64(checksum ^ line_hash(line.trim_end()));
            records.push(ScenarioRecord {
                cycle,
                src: src as usize,
                dst: dst as usize,
                tag,
            });
        }
        let Some((count, sum)) = trailer else {
            return Err(TraceError::TornTail);
        };
        if count != records.len() as u64 {
            return Err(TraceError::CountMismatch {
                expected: count,
                found: records.len() as u64,
            });
        }
        if sum != checksum {
            return Err(TraceError::ChecksumMismatch);
        }
        Ok(ScenarioTrace { header, records })
    }

    fn decode_header(line: &str) -> Result<ScenarioHeader, TraceError> {
        let pairs = parse_flat_json(line)?;
        let mut header = ScenarioHeader::new("", "");
        let mut expect = Expectation::default();
        let mut has_expect = false;
        let mut saw_schema = false;
        for (key, value) in pairs {
            let want_int = |v: &JsonValue, key: &str| match v {
                JsonValue::Int(i) => Ok(*i),
                _ => Err(TraceError::BadHeader(format!("{key} must be an integer"))),
            };
            match key.as_str() {
                "schema" => {
                    let v = want_int(&value, "schema")?;
                    if v > u64::from(SCENARIO_SCHEMA) {
                        return Err(TraceError::UnsupportedSchema(v as u32));
                    }
                    header.schema = v as u32;
                    saw_schema = true;
                }
                "noc" => match value {
                    JsonValue::Str(s) => header.noc = s,
                    _ => return Err(TraceError::BadHeader("noc must be a string".into())),
                },
                "channels" => header.channels = want_int(&value, "channels")?.max(1) as usize,
                "max_cycles" => header.max_cycles = want_int(&value, "max_cycles")?,
                "warmup" => header.warmup = want_int(&value, "warmup")?,
                "generator" => match value {
                    JsonValue::Str(s) => header.generator = s,
                    _ => return Err(TraceError::BadHeader("generator must be a string".into())),
                },
                "drained_at" => header.drained_at = Some(want_int(&value, "drained_at")?),
                "fallback" => {
                    header.fallback = match value {
                        JsonValue::Bool(b) => b,
                        _ => {
                            return Err(TraceError::BadHeader("fallback must be a boolean".into()))
                        }
                    };
                }
                "faults" => match value {
                    JsonValue::Str(s) => {
                        for part in s.split(';').filter(|p| !p.trim().is_empty()) {
                            header.faults.push(decode_fault(part)?);
                        }
                    }
                    _ => return Err(TraceError::BadHeader("faults must be a string".into())),
                },
                "expect_delivered" => {
                    expect.delivered = want_int(&value, "expect_delivered")?;
                    has_expect = true;
                }
                "expect_cycles" => {
                    expect.cycles = want_int(&value, "expect_cycles")?;
                    has_expect = true;
                }
                "expect_dropped" => {
                    expect.dropped = want_int(&value, "expect_dropped")?;
                    has_expect = true;
                }
                "expect_truncated" => {
                    expect.truncated = match value {
                        JsonValue::Bool(b) => b,
                        _ => {
                            return Err(TraceError::BadHeader(
                                "expect_truncated must be a boolean".into(),
                            ))
                        }
                    };
                    has_expect = true;
                }
                // Forward compatibility: unknown keys within schema v1
                // are ignored so older builds read newer minor traces.
                _ => {}
            }
        }
        if !saw_schema {
            return Err(TraceError::BadHeader("missing schema".into()));
        }
        if header.noc.is_empty() {
            return Err(TraceError::BadHeader("missing noc spec".into()));
        }
        if has_expect {
            header.expect = Some(expect);
        }
        Ok(header)
    }

    /// A [`ReplaySource`] feeding this trace's schedule back into a
    /// session.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadHeader`] when the noc spec has no
    /// parsable side length.
    pub fn replay_source(&self) -> Result<ReplaySource, TraceError> {
        Ok(
            ReplaySource::new(self.header.side_len()?, self.records.clone())
                .hold_until(self.header.drained_at),
        )
    }

    /// Rebuilds everything a session needs to replay this trace: the
    /// topology from the header's noc spec, the recorded fault plan,
    /// and a [`ReplaySource`] feeding the push schedule back. One call
    /// serves `fasttrack replay`, `attribute --trace`, and
    /// `explain --trace` identically.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadHeader`] when the noc spec does not
    /// parse.
    pub fn replay_setup(
        &self,
    ) -> Result<(NocConfig, fasttrack_core::fault::FaultPlan, ReplaySource), TraceError> {
        let cfg = self.header.noc_config()?;
        let plan = self
            .header
            .faults
            .iter()
            .fold(fasttrack_core::fault::FaultPlan::new(), |p, &f| p.with(f));
        let source = self.replay_source()?;
        Ok((cfg, plan, source))
    }
}

/// Wraps any [`TrafficSource`] and records the realized push schedule.
///
/// Deliveries are forwarded to the inner source, so closed-loop
/// generators (dataflow, serialized transfers) behave exactly as if
/// unwrapped — the recording observes what they *actually* pushed.
#[derive(Debug, Clone)]
pub struct RecordingSource<S> {
    n: u16,
    inner: S,
    records: Vec<ScenarioRecord>,
    depths: Vec<usize>,
    drained_at: Option<u64>,
}

impl<S: TrafficSource> RecordingSource<S> {
    /// Wraps `inner` for an `n × n` system.
    pub fn new(n: u16, inner: S) -> Self {
        RecordingSource {
            n,
            inner,
            records: Vec::new(),
            depths: Vec::new(),
            drained_at: None,
        }
    }

    /// The records captured so far.
    pub fn records(&self) -> &[ScenarioRecord] {
        &self.records
    }

    /// The cycle the inner source first reported itself exhausted, if
    /// that has happened yet (assumes exhaustion is monotone, as every
    /// generator in this crate guarantees).
    pub fn drained_at(&self) -> Option<u64> {
        self.drained_at
    }

    /// Consumes the wrapper, returning the captured schedule.
    pub fn into_records(self) -> Vec<ScenarioRecord> {
        self.records
    }

    /// Consumes the wrapper into a full trace under `header` (the
    /// header's message-bearing fields are taken as given, except
    /// `drained_at`, which only the recording knows).
    pub fn into_trace(self, mut header: ScenarioHeader) -> ScenarioTrace {
        header.drained_at = self.drained_at;
        ScenarioTrace::new(header, self.records)
    }

    fn note_drain(&mut self, cycle: u64) {
        if self.drained_at.is_none() && self.inner.exhausted() {
            self.drained_at = Some(cycle);
        }
    }
}

impl<S: TrafficSource> TrafficSource for RecordingSource<S> {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        let nodes = queues.nodes();
        self.depths.resize(nodes, 0);
        for node in 0..nodes {
            self.depths[node] = queues.depth(node);
        }
        self.inner.pump(cycle, queues);
        // Collect this cycle's new tail entries across all nodes and
        // sort by packet id to recover the exact global push order —
        // replay must assign identical PacketIds.
        let mut fresh: Vec<(u64, ScenarioRecord)> = Vec::new();
        for node in 0..nodes {
            for p in queues.iter(node).skip(self.depths[node]) {
                fresh.push((
                    p.id.0,
                    ScenarioRecord {
                        cycle,
                        src: node,
                        dst: p.dst.to_node_id(self.n),
                        tag: p.tag,
                    },
                ));
            }
        }
        fresh.sort_by_key(|&(id, _)| id);
        self.records.extend(fresh.into_iter().map(|(_, r)| r));
        self.note_drain(cycle);
    }

    fn on_delivery(&mut self, delivery: &Delivery) {
        self.inner.on_delivery(delivery);
        // Closed-loop sources flip to exhausted on their final
        // delivery, between this cycle's pump and the engine's
        // termination check — catch that here or the drain cycle of a
        // run's very last cycle would be missed.
        self.note_drain(delivery.cycle);
    }

    fn exhausted(&self) -> bool {
        self.inner.exhausted()
    }
}

/// Open-loop source replaying a recorded push schedule at the exact
/// recorded cycles, implementing the same [`TrafficSource`] trait as
/// every generator.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    n: u16,
    records: Vec<ScenarioRecord>,
    next: usize,
    hold_until: Option<u64>,
    cycle: u64,
}

impl ReplaySource {
    /// Creates a replay source for an `n × n` system.
    pub fn new(n: u16, records: Vec<ScenarioRecord>) -> Self {
        ReplaySource {
            n,
            records,
            next: 0,
            hold_until: None,
            cycle: 0,
        }
    }

    /// Delays the source's exhaustion until the given cycle, matching
    /// a recorded generator that outlived its last push (see
    /// [`ScenarioHeader::drained_at`]).
    pub fn hold_until(mut self, cycle: Option<u64>) -> Self {
        self.hold_until = cycle;
        self
    }

    /// Total records in the schedule.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl TrafficSource for ReplaySource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        self.cycle = cycle;
        while let Some(r) = self.records.get(self.next) {
            if r.cycle > cycle {
                break;
            }
            queues.push(r.src, Coord::from_node_id(r.dst, self.n), cycle, r.tag);
            self.next += 1;
        }
    }

    fn exhausted(&self) -> bool {
        self.next >= self.records.len() && self.hold_until.is_none_or(|c| self.cycle >= c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ScenarioTrace {
        let mut header = ScenarioHeader::new("ft:4:2:1", "unit");
        header.max_cycles = 10_000;
        header.faults = vec![
            Fault::DeadLink {
                node: 5,
                out: OutPort::EastEx,
            },
            Fault::TransientLink {
                node: 3,
                out: OutPort::SouthSh,
                from: 10,
                until: 20,
                corrupt: true,
            },
            Fault::FailStopRouter { node: 7, at: 100 },
            Fault::StalledInjector {
                node: 1,
                from: 0,
                until: 50,
            },
        ];
        header.drained_at = Some(17);
        header.expect = Some(Expectation {
            delivered: 2,
            cycles: 40,
            dropped: 0,
            truncated: false,
        });
        let records = vec![
            ScenarioRecord {
                cycle: 0,
                src: 0,
                dst: 5,
                tag: 1,
            },
            ScenarioRecord {
                cycle: 3,
                src: 2,
                dst: 9,
                tag: 2,
            },
        ];
        ScenarioTrace::new(header, records)
    }

    #[test]
    fn encode_decode_round_trip() {
        let trace = sample_trace();
        let text = trace.encode();
        let back = ScenarioTrace::decode(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn fault_codec_round_trips() {
        for fault in sample_trace().header.faults {
            let text = encode_fault(&fault);
            assert_eq!(decode_fault(&text).unwrap(), fault);
        }
        assert!(matches!(
            decode_fault("dead x east-ex"),
            Err(TraceError::BadFault(_))
        ));
        assert!(matches!(
            decode_fault("dead 3 north"),
            Err(TraceError::BadFault(_))
        ));
        assert!(matches!(
            decode_fault("bogus 1 2"),
            Err(TraceError::BadFault(_))
        ));
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(ScenarioTrace::decode(""), Err(TraceError::BadMagic));
        assert_eq!(
            ScenarioTrace::decode("some other file\n"),
            Err(TraceError::BadMagic)
        );
    }

    #[test]
    fn rejects_malformed_header() {
        let cases = [
            format!("{SCENARIO_MAGIC}\n"),
            format!("{SCENARIO_MAGIC}\nnot json\nend 0 0\n"),
            format!("{SCENARIO_MAGIC}\n{{\"schema\":1}}\nend 0 0\n"), // missing noc
            format!("{SCENARIO_MAGIC}\n{{\"noc\":\"ft:4:2:1\"}}\nend 0 0\n"), // missing schema
            format!("{SCENARIO_MAGIC}\n{{\"schema\":1,\"noc\":\"ft:4:2:1\",\"faults\":\"junk\"}}\nend 0 0\n"),
        ];
        for text in &cases {
            let err = ScenarioTrace::decode(text).unwrap_err();
            assert!(
                matches!(err, TraceError::BadHeader(_) | TraceError::BadFault(_)),
                "{text:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_newer_schema() {
        let text = format!("{SCENARIO_MAGIC}\n{{\"schema\":9,\"noc\":\"ft:4:2:1\"}}\nend 0 0\n");
        assert_eq!(
            ScenarioTrace::decode(&text),
            Err(TraceError::UnsupportedSchema(9))
        );
    }

    #[test]
    fn v2_round_trips_non_torus_topologies() {
        use fasttrack_core::topology::TopologySpec;
        for spec in ["shg:8:2", "mesh:4:4"] {
            let header = ScenarioHeader::new(spec, "unit");
            assert_eq!(header.schema, SCENARIO_SCHEMA);
            let trace = ScenarioTrace::new(
                header,
                vec![ScenarioRecord {
                    cycle: 0,
                    src: 0,
                    dst: 5,
                    tag: 1,
                }],
            );
            let decoded = ScenarioTrace::decode(&trace.encode()).unwrap();
            assert_eq!(decoded, trace, "{spec}: round trip");
            let topo = decoded.header.topology().unwrap();
            match spec {
                "shg:8:2" => assert!(matches!(topo, TopologySpec::Shg(_))),
                _ => assert!(matches!(topo, TopologySpec::Mesh { n: 4, depth: 4 })),
            }
            // The torus-only accessor refuses the non-torus spec.
            assert!(decoded.header.noc_config().is_err());
        }
    }

    #[test]
    fn v2_ignores_unknown_header_keys() {
        // A hypothetical v2.x writer added keys this build predates.
        let header = "{\"schema\":2,\"noc\":\"shg:8:2\",\"wire_budget\":9000,\"flavor\":\"zesty\"}";
        let text = format!(
            "{SCENARIO_MAGIC}\n{header}\nend 0 {:016x}\n",
            line_hash(header)
        );
        let trace = ScenarioTrace::decode(&text).unwrap();
        assert_eq!(trace.header.noc, "shg:8:2");
        assert_eq!(trace.header.schema, 2);
        assert!(trace.records.is_empty());
    }

    #[test]
    fn v1_header_reads_as_v2_topology() {
        use fasttrack_core::config::FtPolicy;
        use fasttrack_core::topology::TopologySpec;
        // A v1 file: torus spec, schema 1.
        let header = "{\"schema\":1,\"noc\":\"ftlite:8:4:1\"}";
        let text = format!(
            "{SCENARIO_MAGIC}\n{header}\nend 0 {:016x}\n",
            line_hash(header)
        );
        let trace = ScenarioTrace::decode(&text).unwrap();
        // The recorded schema number is preserved...
        assert_eq!(trace.header.schema, 1);
        // ...the v2 accessor derives the TopologySpec from the v1 `noc`
        // key...
        let topo = trace.header.topology().unwrap();
        let TopologySpec::Torus(cfg) = &topo else {
            panic!("v1 specs are tori, got {topo:?}");
        };
        assert_eq!(cfg.ft_policy(), Some(FtPolicy::Inject));
        assert_eq!(cfg.n(), 8);
        // ...and both views agree.
        assert_eq!(*cfg, trace.header.noc_config().unwrap());
    }

    #[test]
    fn torn_tail_is_detected() {
        let text = sample_trace().encode();
        // Cut the trailer off entirely.
        let torn: String = text
            .lines()
            .filter(|l| !l.starts_with("end "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(ScenarioTrace::decode(&torn), Err(TraceError::TornTail));
        // Cut mid-record: last body line truncated AND no trailer.
        let cut = &text[..text.find("m 3").unwrap() + 4];
        assert!(matches!(
            ScenarioTrace::decode(cut),
            Err(TraceError::BadRecord { .. }) | Err(TraceError::TornTail)
        ));
    }

    #[test]
    fn interior_corruption_fails_checksum() {
        let text = sample_trace().encode();
        let corrupted = text.replace("m 0 0 5 1", "m 0 0 6 1");
        assert_eq!(
            ScenarioTrace::decode(&corrupted),
            Err(TraceError::ChecksumMismatch)
        );
    }

    #[test]
    fn count_mismatch_is_detected() {
        let text = sample_trace().encode();
        // Drop one record but keep the trailer.
        let shortened: String = text
            .lines()
            .filter(|l| !l.starts_with("m 3"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            ScenarioTrace::decode(&shortened),
            Err(TraceError::CountMismatch {
                expected: 2,
                found: 1
            }) | Err(TraceError::ChecksumMismatch)
        ));
    }

    #[test]
    fn out_of_range_node_reports_untruncated_value() {
        let huge = u64::from(u32::MAX) + 7;
        let body = format!("m 0 0 {huge} 0");
        let header = "{\"schema\":1,\"noc\":\"ft:4:2:1\"}";
        let mut checksum = line_hash(header);
        checksum = splitmix64(checksum ^ line_hash(&body));
        let text = format!("{SCENARIO_MAGIC}\n{header}\n{body}\nend 1 {checksum:016x}\n");
        assert_eq!(
            ScenarioTrace::decode(&text),
            Err(TraceError::NodeOutOfRange {
                line: 3,
                node: huge
            })
        );
    }

    #[test]
    fn nonmonotonic_cycles_rejected() {
        let header = "{\"schema\":1,\"noc\":\"ft:4:2:1\"}";
        let b1 = "m 5 0 1 0";
        let b2 = "m 4 0 1 0";
        let mut checksum = line_hash(header);
        checksum = splitmix64(checksum ^ line_hash(b1));
        checksum = splitmix64(checksum ^ line_hash(b2));
        let text = format!("{SCENARIO_MAGIC}\n{header}\n{b1}\n{b2}\nend 2 {checksum:016x}\n");
        assert_eq!(
            ScenarioTrace::decode(&text),
            Err(TraceError::NonMonotonic { line: 4 })
        );
    }

    #[test]
    fn trailing_data_rejected() {
        let mut text = sample_trace().encode();
        text.push_str("m 9 0 0 0\n");
        assert!(matches!(
            ScenarioTrace::decode(&text),
            Err(TraceError::TrailingData { line: 6 })
        ));
    }

    #[test]
    fn replay_holds_exhaustion_until_the_drain_cycle() {
        let records = vec![ScenarioRecord {
            cycle: 2,
            src: 0,
            dst: 1,
            tag: 0,
        }];
        let mut held = ReplaySource::new(4, records.clone()).hold_until(Some(9));
        let mut plain = ReplaySource::new(4, records);
        let mut q = InjectQueues::new(16);
        for cycle in 0..=9 {
            held.pump(cycle, &mut q);
            plain.pump(cycle, &mut q);
            assert_eq!(plain.exhausted(), cycle >= 2, "plain at {cycle}");
            assert_eq!(held.exhausted(), cycle >= 9, "held at {cycle}");
        }
    }

    #[test]
    fn noc_config_rebuilds_every_topology() {
        let cfg = ScenarioHeader::new("hoplite:4", "t").noc_config().unwrap();
        assert_eq!(cfg.n(), 4);
        let cfg = ScenarioHeader::new("ft:8:2:1", "t").noc_config().unwrap();
        assert_eq!((cfg.d(), cfg.r()), (2, 1));
        assert_eq!(cfg.ft_policy(), Some(FtPolicy::Full));
        let cfg = ScenarioHeader::new("ftlite:8:4:2", "t")
            .noc_config()
            .unwrap();
        assert_eq!(cfg.ft_policy(), Some(FtPolicy::Inject));
        for bad in ["mesh:4", "ft:8:2", "ft:8:x:1", "ft:8:3:2", ""] {
            assert!(
                matches!(
                    ScenarioHeader::new(bad, "t").noc_config(),
                    Err(TraceError::BadHeader(_))
                ),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(TraceError::TornTail.to_string().contains("torn"));
        assert!(TraceError::NodeOutOfRange { line: 3, node: 99 }
            .to_string()
            .contains("99"));
        assert!(TraceError::UnsupportedSchema(2).to_string().contains("v2"));
    }

    #[test]
    fn replay_setup_rebuilds_config_faults_and_source() {
        let trace = sample_trace();
        let (cfg, plan, _source) = trace.replay_setup().expect("valid trace");
        assert_eq!(cfg.n(), 4);
        assert_eq!(plan.faults(), trace.header.faults.as_slice());
        // The rebuilt source replays the same schedule as one built by
        // hand from the record list.
        let by_hand = trace.replay_source().expect("valid trace");
        let (_, _, rebuilt) = trace.replay_setup().expect("valid trace");
        let cfg2 = trace.header.noc_config().unwrap();
        let mut a = rebuilt;
        let mut b = by_hand;
        let ra = fasttrack_core::sim::SimSession::new(&cfg2)
            .max_cycles(trace.header.max_cycles)
            .run(&mut a)
            .unwrap()
            .report;
        let rb = fasttrack_core::sim::SimSession::new(&cfg2)
            .max_cycles(trace.header.max_cycles)
            .run(&mut b)
            .unwrap()
            .report;
        assert_eq!(ra, rb);
    }
}
