//! Graph-analytics accelerator traffic (paper Figure 15b).
//!
//! Vertex-centric push model (one superstep of PageRank/BFS-style
//! processing): vertices are partitioned over the PEs (cyclic for
//! scale-free graphs, block for planar road networks — see
//! [`Partition`]), and every directed edge `(u, v)` produces a message
//! from `u`'s PE to `v`'s PE. Like SpMV this is throughput-bound: the
//! metric is the makespan of the edge-message batch.

use crate::graph_gen::Graph;
use crate::partition::Partition;
use crate::source::{Message, MessageBatchSource};

/// Extracts the edge-message batch for one push superstep.
pub fn graph_messages(graph: &Graph, pes: usize, partition: Partition) -> Vec<Message> {
    assert!(pes > 0);
    let total = graph.num_vertices();
    graph
        .edges()
        .iter()
        .map(|&(u, v)| Message {
            src: partition.owner(u, total, pes),
            dst: partition.owner(v, total, pes),
            tag: v as u64,
        })
        .collect()
}

/// Builds a ready-to-run traffic source for one superstep on an `n × n`
/// NoC.
pub fn graph_source(graph: &Graph, n: u16, partition: Partition) -> MessageBatchSource {
    let pes = n as usize * n as usize;
    MessageBatchSource::new(n, graph_messages(graph, pes, partition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_gen::{rmat, road_network};
    use fasttrack_core::config::{FtPolicy, NocConfig};
    use fasttrack_core::sim::{SimOptions, SimSession};

    #[test]
    fn one_message_per_edge() {
        let g = rmat(10, 5000, 0.57, 0.19, 0.19, 2);
        let msgs = graph_messages(&g, 16, Partition::Cyclic);
        assert_eq!(msgs.len(), g.num_edges());
    }

    #[test]
    fn road_network_traffic_is_mostly_local_under_block_partition() {
        let g = road_network(64, 0.0, 3);
        let msgs = graph_messages(&g, 16, Partition::Block);
        let same_pe = msgs.iter().filter(|m| m.src == m.dst).count();
        assert!(
            same_pe as f64 > 0.7 * msgs.len() as f64,
            "expected PE-local structure: {same_pe}/{}",
            msgs.len()
        );
    }

    #[test]
    fn graph_superstep_ft_speedup() {
        let g = rmat(11, 20_000, 0.57, 0.19, 0.19, 4);
        let opts = SimOptions::default();
        let mut src = graph_source(&g, 4, Partition::Cyclic);
        let hoplite = SimSession::new(&NocConfig::hoplite(4).unwrap())
            .options(opts)
            .run(&mut src)
            .unwrap()
            .report;
        let mut src = graph_source(&g, 4, Partition::Cyclic);
        let ft = SimSession::new(&NocConfig::fasttrack(4, 2, 1, FtPolicy::Full).unwrap())
            .options(opts)
            .run(&mut src)
            .unwrap()
            .report;
        assert!(!hoplite.truncated && !ft.truncated);
        assert_eq!(hoplite.stats.delivered as usize, g.num_edges());
        let speedup = hoplite.cycles as f64 / ft.cycles as f64;
        assert!(speedup > 1.0, "expected FT speedup, got {speedup}");
    }
}
