//! Frontier-driven BFS traversal traffic: a closed-loop graph-analytics
//! workload where each superstep's messages depend on the previous
//! one's deliveries (unlike the single-superstep push batch of
//! [`crate::graph`], whose traffic is all known up front).
//!
//! When a vertex receives its first visit message it joins the frontier
//! and, on the next cycle, sends visit messages along all its out-edges.
//! NoC latency therefore sits on the critical path between BFS levels —
//! a latency-sensitive counterpart to the throughput-bound supersteps.

use fasttrack_core::geom::Coord;
use fasttrack_core::packet::Delivery;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::TrafficSource;

use crate::graph_gen::Graph;
use crate::partition::Partition;

/// A BFS traversal executing on an `n × n` NoC.
#[derive(Debug, Clone)]
pub struct BfsSource {
    n: u16,
    partition: Partition,
    num_vertices: usize,
    /// CSR out-adjacency.
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    visited: Vec<bool>,
    /// Vertices that joined the frontier and still owe their sends.
    to_expand: Vec<u32>,
    visited_count: usize,
}

impl BfsSource {
    /// Builds a BFS from `root` over `graph`, partitioned onto the PEs.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn new(graph: &Graph, root: u32, n: u16, partition: Partition) -> Self {
        let v = graph.num_vertices();
        assert!((root as usize) < v, "root out of range");
        let mut row_ptr = vec![0u32; v + 1];
        for &(u, _) in graph.edges() {
            row_ptr[u as usize + 1] += 1;
        }
        for i in 0..v {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut col = vec![0u32; graph.num_edges()];
        for &(u, w) in graph.edges() {
            col[cursor[u as usize] as usize] = w;
            cursor[u as usize] += 1;
        }
        let mut visited = vec![false; v];
        visited[root as usize] = true;
        BfsSource {
            n,
            partition,
            num_vertices: v,
            row_ptr,
            col,
            visited,
            to_expand: vec![root],
            visited_count: 1,
        }
    }

    /// Vertices visited so far.
    pub fn visited_count(&self) -> usize {
        self.visited_count
    }

    fn out_edges(&self, v: u32) -> &[u32] {
        &self.col[self.row_ptr[v as usize] as usize..self.row_ptr[v as usize + 1] as usize]
    }
}

impl TrafficSource for BfsSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        let pes = self.n as usize * self.n as usize;
        let expand = std::mem::take(&mut self.to_expand);
        for v in expand {
            let src_pe = self.partition.owner(v, self.num_vertices, pes);
            for i in 0..self.out_edges(v).len() {
                let w = self.out_edges(v)[i];
                let dst_pe = self.partition.owner(w, self.num_vertices, pes);
                queues.push(src_pe, Coord::from_node_id(dst_pe, self.n), cycle, w as u64);
            }
        }
    }

    fn on_delivery(&mut self, delivery: &Delivery) {
        let w = delivery.packet.tag as usize;
        if !self.visited[w] {
            self.visited[w] = true;
            self.visited_count += 1;
            self.to_expand.push(w as u32);
        }
    }

    fn exhausted(&self) -> bool {
        self.to_expand.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_gen::{road_network, Graph};
    use fasttrack_core::config::{FtPolicy, NocConfig};
    use fasttrack_core::sim::{SimOptions, SimSession};

    #[test]
    fn visits_every_reachable_vertex() {
        // A directed cycle: everything reachable from 0.
        let g = Graph::new(50, (0..50u32).map(|i| (i, (i + 1) % 50)).collect());
        let mut src = BfsSource::new(&g, 0, 4, Partition::Cyclic);
        let report = SimSession::new(&NocConfig::hoplite(4).unwrap())
            .run(&mut src)
            .unwrap()
            .report;
        assert!(!report.truncated);
        assert_eq!(src.visited_count(), 50);
        // A cycle visits one new vertex per level: edge messages = 50.
        assert_eq!(report.stats.delivered, 50);
    }

    #[test]
    fn unreachable_vertices_stay_unvisited() {
        let g = Graph::new(10, vec![(0, 1), (1, 2), (5, 6)]);
        let mut src = BfsSource::new(&g, 0, 2, Partition::Cyclic);
        let report = SimSession::new(&NocConfig::hoplite(2).unwrap())
            .run(&mut src)
            .unwrap()
            .report;
        assert!(!report.truncated);
        assert_eq!(src.visited_count(), 3); // 0, 1, 2
    }

    #[test]
    fn duplicate_visits_do_not_reexpand() {
        // Diamond: 0->1, 0->2, 1->3, 2->3; vertex 3 receives two
        // messages but expands once.
        let g = Graph::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut src = BfsSource::new(&g, 0, 2, Partition::Cyclic);
        let report = SimSession::new(&NocConfig::hoplite(2).unwrap())
            .run(&mut src)
            .unwrap()
            .report;
        assert_eq!(src.visited_count(), 4);
        assert_eq!(report.stats.delivered, 4); // one message per edge
    }

    #[test]
    fn bfs_latency_benefits_from_fasttrack() {
        // A deep graph (road network) makes BFS level-latency-bound.
        let g = road_network(60, 0.0, 1);
        let run = |cfg: &NocConfig| {
            let mut src = BfsSource::new(&g, 0, 4, Partition::Cyclic);
            let r = SimSession::new(cfg)
                .options(SimOptions::with_max_cycles(10_000_000))
                .run(&mut src)
                .unwrap()
                .report;
            assert!(!r.truncated);
            assert_eq!(src.visited_count(), 3600);
            r.cycles
        };
        let hoplite = run(&NocConfig::hoplite(4).unwrap());
        let ft = run(&NocConfig::fasttrack(4, 2, 1, FtPolicy::Full).unwrap());
        assert!(
            (hoplite as f64) > 0.95 * ft as f64,
            "FT should not lose: {hoplite} vs {ft}"
        );
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn root_bounds_checked() {
        let g = Graph::new(4, vec![]);
        BfsSource::new(&g, 9, 2, Partition::Cyclic);
    }
}
