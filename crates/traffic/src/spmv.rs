//! Sparse Matrix-Vector Multiplication (SpMV) accelerator traffic
//! (paper Figure 15a).
//!
//! The accelerator distributes matrix rows and vector entries over the
//! PEs (cyclic for scale-free matrices, block for banded/circuit ones —
//! see [`Partition`]). One SpMV iteration `y = A·x` generates, for every
//! nonzero `A[i][j]`, a message from the PE owning `x[j]` to the PE
//! accumulating row `i` (the vector-value fan-out). The workload is
//! throughput-bound: each PE streams its messages as fast as the NoC
//! accepts them, and the metric is the makespan of the whole batch.

use crate::matrix::SparseMatrix;
use crate::partition::Partition;
use crate::source::{Message, MessageBatchSource};

/// Extracts the SpMV message batch for one iteration of `y = A·x` on
/// `pes` processing elements under the given partition.
///
/// Messages whose producer and consumer land on the same PE are kept:
/// they still occupy the PE's injection port (local accumulate), exactly
/// one per nonzero, so Hoplite-vs-FastTrack comparisons stay fair.
pub fn spmv_messages(matrix: &SparseMatrix, pes: usize, partition: Partition) -> Vec<Message> {
    assert!(pes > 0);
    let n = matrix.n();
    let mut msgs = Vec::with_capacity(matrix.nnz());
    for (i, j) in matrix.iter() {
        msgs.push(Message {
            src: partition.owner(j, n, pes),
            dst: partition.owner(i, n, pes),
            tag: i as u64,
        });
    }
    msgs
}

/// Builds a ready-to-run traffic source for one SpMV iteration on an
/// `n × n` NoC.
pub fn spmv_source(matrix: &SparseMatrix, n: u16, partition: Partition) -> MessageBatchSource {
    let pes = n as usize * n as usize;
    MessageBatchSource::new(n, spmv_messages(matrix, pes, partition))
}

/// Iterative SpMV (`x ← A·x` repeated): each iteration's messages are
/// released only after the previous iteration fully drains — the global
/// barrier of an iterative solver. Exposes how NoC *latency* (not just
/// throughput) taxes convergence loops.
#[derive(Debug, Clone)]
pub struct IterativeSpmvSource {
    n: u16,
    messages: Vec<Message>,
    iterations_left: u32,
    outstanding: u64,
}

impl IterativeSpmvSource {
    /// Creates a source running `iterations` SpMV passes.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn new(matrix: &SparseMatrix, n: u16, partition: Partition, iterations: u32) -> Self {
        assert!(iterations > 0, "need at least one iteration");
        let pes = n as usize * n as usize;
        IterativeSpmvSource {
            n,
            messages: spmv_messages(matrix, pes, partition),
            iterations_left: iterations,
            outstanding: 0,
        }
    }

    /// Iterations not yet started.
    pub fn iterations_left(&self) -> u32 {
        self.iterations_left
    }
}

impl fasttrack_core::sim::TrafficSource for IterativeSpmvSource {
    fn pump(&mut self, cycle: u64, queues: &mut fasttrack_core::queue::InjectQueues) {
        if self.outstanding == 0 && self.iterations_left > 0 {
            for m in &self.messages {
                queues.push(
                    m.src,
                    fasttrack_core::geom::Coord::from_node_id(m.dst, self.n),
                    cycle,
                    m.tag,
                );
            }
            self.outstanding = self.messages.len() as u64;
            self.iterations_left -= 1;
        }
    }

    fn on_delivery(&mut self, _delivery: &fasttrack_core::packet::Delivery) {
        debug_assert!(self.outstanding > 0);
        self.outstanding -= 1;
    }

    fn exhausted(&self) -> bool {
        self.iterations_left == 0 && self.outstanding == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{banded, circuit, SparseMatrix};
    use fasttrack_core::config::{FtPolicy, NocConfig};
    use fasttrack_core::sim::{SimOptions, SimSession};

    #[test]
    fn message_count_equals_nnz() {
        let m = circuit(200, 4, 1, 2, 1);
        let msgs = spmv_messages(&m, 16, Partition::Cyclic);
        assert_eq!(msgs.len(), m.nnz());
    }

    #[test]
    fn diagonal_messages_stay_local() {
        let m = SparseMatrix::from_coords(32, (0..32).map(|i| (i, i)).collect());
        for p in [Partition::Cyclic, Partition::Block] {
            for msg in spmv_messages(&m, 16, p) {
                assert_eq!(msg.src, msg.dst);
            }
        }
    }

    #[test]
    fn block_partition_keeps_banded_traffic_local() {
        let m = banded(1600, 5, 0, 3);
        let msgs = spmv_messages(&m, 16, Partition::Block);
        let same_pe = msgs.iter().filter(|m| m.src == m.dst).count();
        assert!(
            same_pe as f64 > 0.8 * msgs.len() as f64,
            "banded + block should be mostly PE-local: {same_pe}/{}",
            msgs.len()
        );
    }

    #[test]
    fn iterative_spmv_barriers_between_passes() {
        use fasttrack_core::sim::SimSession;
        let m = circuit(300, 4, 1, 2, 5);
        let cfg = NocConfig::hoplite(4).unwrap();
        // One pass vs five passes: with a barrier between passes the
        // makespan scales roughly linearly.
        let mut one = IterativeSpmvSource::new(&m, 4, Partition::Cyclic, 1);
        let r1 = SimSession::new(&cfg).run(&mut one).unwrap().report;
        let mut five = IterativeSpmvSource::new(&m, 4, Partition::Cyclic, 5);
        let r5 = SimSession::new(&cfg).run(&mut five).unwrap().report;
        assert!(!r1.truncated && !r5.truncated);
        assert_eq!(r5.stats.delivered, 5 * r1.stats.delivered);
        assert!(one.iterations_left() == 0 && five.iterations_left() == 0);
        let ratio = r5.cycles as f64 / r1.cycles as f64;
        assert!(
            (4.0..=6.5).contains(&ratio),
            "barrier scaling off: {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        IterativeSpmvSource::new(&circuit(10, 2, 1, 0, 1), 2, Partition::Cyclic, 0);
    }

    #[test]
    fn spmv_runs_to_completion_and_ft_wins() {
        let m = circuit(800, 4, 2, 3, 11);
        let opts = SimOptions::default();
        let hoplite = {
            let mut src = spmv_source(&m, 4, Partition::Cyclic);
            SimSession::new(&NocConfig::hoplite(4).unwrap())
                .options(opts)
                .run(&mut src)
                .unwrap()
                .report
        };
        let ft = {
            let mut src = spmv_source(&m, 4, Partition::Cyclic);
            SimSession::new(&NocConfig::fasttrack(4, 2, 1, FtPolicy::Full).unwrap())
                .options(opts)
                .run(&mut src)
                .unwrap()
                .report
        };
        assert!(!hoplite.truncated && !ft.truncated);
        assert_eq!(hoplite.stats.delivered, m.nnz() as u64);
        assert_eq!(ft.stats.delivered, m.nnz() as u64);
        let speedup = hoplite.cycles as f64 / ft.cycles as f64;
        assert!(
            speedup > 1.0,
            "FastTrack should speed up SpMV, got {speedup}"
        );
    }
}
