//! Transfer serialization: logical multi-bit transfers over a NoC of a
//! given datawidth (paper §VI-B).
//!
//! A 512-bit x86 cacheline rides a 512-bit NoC as a single Hoplite-style
//! wide packet; on a 128-bit NoC it must be serialized into four flits.
//! This module splits logical [`Transfer`]s into per-flit packets,
//! tracks reassembly at the destination, and reports transfer-level
//! completion — letting experiments compare *wide-but-slow* against
//! *narrow-but-fast* configurations on equal terms (cachelines per
//! second, not packets per cycle).

use fasttrack_core::geom::Coord;
use fasttrack_core::packet::Delivery;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::TrafficSource;

/// One logical transfer (e.g. a cacheline) between two PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source PE (node id).
    pub src: usize,
    /// Destination PE (node id).
    pub dst: usize,
    /// Payload size in bits.
    pub bits: u32,
}

/// Number of flits a transfer needs at `width` bits per packet.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn flits_for(bits: u32, width: u32) -> u32 {
    assert!(width > 0, "datawidth must be positive");
    bits.div_ceil(width).max(1)
}

/// A closed batch of logical transfers, serialized to `width`-bit flits
/// (all available at cycle 0), with destination-side reassembly.
///
/// The flit tag encodes the transfer index, so [`TransferBatchSource`]
/// can count a transfer complete when its last flit arrives.
#[derive(Debug, Clone)]
pub struct TransferBatchSource {
    n: u16,
    width: u32,
    transfers: Vec<Transfer>,
    /// Remaining undelivered flits per transfer.
    remaining: Vec<u32>,
    completed: usize,
    /// Deliveries whose tag named no outstanding flit of this batch.
    foreign_flits: u64,
    pushed: bool,
}

impl TransferBatchSource {
    /// Creates the source for an `n × n` NoC of `width`-bit links.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or any endpoint is out of range.
    pub fn new(n: u16, width: u32, transfers: Vec<Transfer>) -> Self {
        assert!(width > 0);
        let nodes = n as usize * n as usize;
        let mut remaining = Vec::with_capacity(transfers.len());
        for t in &transfers {
            assert!(
                t.src < nodes && t.dst < nodes,
                "transfer endpoint out of range"
            );
            remaining.push(flits_for(t.bits, width));
        }
        TransferBatchSource {
            n,
            width,
            transfers,
            remaining,
            completed: 0,
            foreign_flits: 0,
            pushed: false,
        }
    }

    /// Total flits this batch will inject.
    pub fn total_flits(&self) -> u64 {
        self.transfers
            .iter()
            .map(|t| flits_for(t.bits, self.width) as u64)
            .sum()
    }

    /// Transfers fully reassembled so far.
    pub fn completed_transfers(&self) -> usize {
        self.completed
    }

    /// Number of logical transfers in the batch.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Deliveries observed whose tag named no outstanding flit of this
    /// batch (e.g. a foreign or corrupted replay) — always 0 in a
    /// well-formed run.
    pub fn foreign_flits(&self) -> u64 {
        self.foreign_flits
    }
}

impl TrafficSource for TransferBatchSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        if !self.pushed {
            for (idx, t) in self.transfers.iter().enumerate() {
                for _ in 0..flits_for(t.bits, self.width) {
                    queues.push(t.src, Coord::from_node_id(t.dst, self.n), cycle, idx as u64);
                }
            }
            self.pushed = true;
        }
    }

    fn on_delivery(&mut self, delivery: &Delivery) {
        // Bounds-check the tag before using it as an index: a replayed
        // or foreign trace may carry tags this batch never issued, and
        // `tag as usize` alone would wrap on 32-bit hosts. Unknown
        // tags are counted, not indexed with.
        let tag = delivery.packet.tag;
        let Ok(idx) = usize::try_from(tag) else {
            self.foreign_flits += 1;
            return;
        };
        let Some(remaining) = self.remaining.get_mut(idx) else {
            self.foreign_flits += 1;
            return;
        };
        if *remaining == 0 {
            self.foreign_flits += 1;
            return;
        }
        *remaining -= 1;
        if *remaining == 0 {
            self.completed += 1;
        }
    }

    fn exhausted(&self) -> bool {
        self.pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::NocConfig;
    use fasttrack_core::sim::SimSession;

    #[test]
    fn flit_math() {
        assert_eq!(flits_for(512, 512), 1);
        assert_eq!(flits_for(512, 256), 2);
        assert_eq!(flits_for(512, 96), 6);
        assert_eq!(flits_for(1, 512), 1);
        assert_eq!(flits_for(0, 64), 1); // a transfer is at least one flit
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        flits_for(64, 0);
    }

    #[test]
    fn serializes_and_reassembles() {
        let transfers = vec![
            Transfer {
                src: 0,
                dst: 5,
                bits: 512,
            },
            Transfer {
                src: 3,
                dst: 12,
                bits: 512,
            },
        ];
        let mut src = TransferBatchSource::new(4, 128, transfers);
        assert_eq!(src.total_flits(), 8);
        assert_eq!(src.len(), 2);
        let cfg = NocConfig::hoplite(4).unwrap();
        let report = SimSession::new(&cfg).run(&mut src).unwrap().report;
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 8);
        assert_eq!(src.completed_transfers(), 2);
        assert_eq!(src.foreign_flits(), 0);
    }

    #[test]
    fn foreign_tags_are_counted_not_indexed() {
        use fasttrack_core::packet::{Packet, PacketId};
        let mut src = TransferBatchSource::new(
            4,
            128,
            vec![Transfer {
                src: 0,
                dst: 5,
                bits: 128,
            }],
        );
        let mk = |tag| Delivery {
            packet: Packet::new(PacketId(0), Coord::new(0, 0), Coord::new(1, 1), 0, tag),
            cycle: 3,
        };
        // Out-of-range index, u64 wider than usize range, and a
        // double-delivery of an already-complete transfer.
        src.on_delivery(&mk(99));
        src.on_delivery(&mk(u64::MAX));
        src.on_delivery(&mk(0));
        src.on_delivery(&mk(0));
        assert_eq!(src.completed_transfers(), 1);
        assert_eq!(src.foreign_flits(), 3);
    }

    #[test]
    fn wide_links_need_fewer_cycles_per_cacheline() {
        // 200 cachelines from each PE to a partner: at 512b each is one
        // packet; at 128b it is four — the narrow run takes ~4x longer.
        let mk = |width| {
            let transfers: Vec<Transfer> = (0..16)
                .flat_map(|s| {
                    (0..200).map(move |_| Transfer {
                        src: s,
                        dst: (s + 7) % 16,
                        bits: 512,
                    })
                })
                .collect();
            TransferBatchSource::new(4, width, transfers)
        };
        let cfg = NocConfig::hoplite(4).unwrap();
        let wide = {
            let mut s = mk(512);
            SimSession::new(&cfg).run(&mut s).unwrap().report
        };
        let narrow = {
            let mut s = mk(128);
            SimSession::new(&cfg).run(&mut s).unwrap().report
        };
        let ratio = narrow.cycles as f64 / wide.cycles as f64;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "serialization ratio {ratio:.2}"
        );
    }
}
