//! Traffic sources implementing [`TrafficSource`]: open-loop Bernoulli
//! injectors (the paper's synthetic experiments use 1 K packets per PE at
//! a swept injection rate) and closed message batches (saturation runs
//! and accelerator-trace communication).

use fasttrack_core::geom::Coord;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::TrafficSource;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::pattern::Pattern;

/// Open-loop source: every PE flips a Bernoulli coin each cycle and, on
/// success, enqueues a packet to a pattern-drawn destination — until it
/// has generated its quota (`packets_per_pe`).
#[derive(Debug, Clone)]
pub struct BernoulliSource {
    n: u16,
    rate: f64,
    pattern: Pattern,
    packets_per_pe: u64,
    generated: Vec<u64>,
    rng: SmallRng,
}

impl BernoulliSource {
    /// Creates a source for an `n × n` system.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `(0.0, 1.0]`.
    pub fn new(n: u16, pattern: Pattern, rate: f64, packets_per_pe: u64, seed: u64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "injection rate {rate} out of (0,1]"
        );
        BernoulliSource {
            n,
            rate,
            pattern,
            packets_per_pe,
            generated: vec![0; n as usize * n as usize],
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Total packets this source will generate.
    pub fn total_packets(&self) -> u64 {
        self.packets_per_pe * self.generated.len() as u64
    }
}

impl TrafficSource for BernoulliSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        for node in 0..self.generated.len() {
            if self.generated[node] < self.packets_per_pe && self.rng.gen::<f64>() < self.rate {
                let src = Coord::from_node_id(node, self.n);
                let dst = self.pattern.destination(src, self.n, &mut self.rng);
                queues.push(node, dst, cycle, 0);
                self.generated[node] += 1;
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.generated.iter().all(|&g| g >= self.packets_per_pe)
    }
}

/// One pre-computed message of a closed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Source PE (node id).
    pub src: usize,
    /// Destination PE (node id).
    pub dst: usize,
    /// Opaque tag carried through the NoC.
    pub tag: u64,
}

/// Closed-workload source: a fixed batch of messages, all available at
/// cycle 0 (each PE drains its share as fast as the NoC accepts). The
/// makespan of the batch is the workload completion time — the metric
/// behind the paper's accelerator case studies.
#[derive(Debug, Clone)]
pub struct MessageBatchSource {
    n: u16,
    messages: Vec<Message>,
    pushed: bool,
}

impl MessageBatchSource {
    /// Creates a batch source for an `n × n` system.
    ///
    /// # Panics
    ///
    /// Panics if any message endpoint is out of range.
    pub fn new(n: u16, messages: Vec<Message>) -> Self {
        let nodes = n as usize * n as usize;
        for m in &messages {
            assert!(
                m.src < nodes && m.dst < nodes,
                "message endpoint out of range"
            );
        }
        MessageBatchSource {
            n,
            messages,
            pushed: false,
        }
    }

    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

impl TrafficSource for MessageBatchSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        if !self.pushed {
            for m in &self.messages {
                queues.push(m.src, Coord::from_node_id(m.dst, self.n), cycle, m.tag);
            }
            self.pushed = true;
        }
    }

    fn exhausted(&self) -> bool {
        self.pushed
    }
}

/// Timed trace source: messages become available at prescribed cycles
/// (extracted accelerator communication traces).
#[derive(Debug, Clone)]
pub struct TimedTraceSource {
    n: u16,
    /// Events sorted by release cycle.
    events: Vec<(u64, Message)>,
    next: usize,
}

impl TimedTraceSource {
    /// Creates a trace source; events are sorted by release cycle.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn new(n: u16, mut events: Vec<(u64, Message)>) -> Self {
        let nodes = n as usize * n as usize;
        for (_, m) in &events {
            assert!(
                m.src < nodes && m.dst < nodes,
                "trace endpoint out of range"
            );
        }
        events.sort_by_key(|(t, _)| *t);
        TimedTraceSource { n, events, next: 0 }
    }

    /// Number of events remaining.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl TrafficSource for TimedTraceSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        while self.next < self.events.len() && self.events[self.next].0 <= cycle {
            let (_, m) = self.events[self.next];
            queues.push(m.src, Coord::from_node_id(m.dst, self.n), cycle, m.tag);
            self.next += 1;
        }
    }

    fn exhausted(&self) -> bool {
        self.next == self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::NocConfig;
    use fasttrack_core::sim::SimSession;

    #[test]
    fn bernoulli_generates_exact_quota() {
        let mut src = BernoulliSource::new(4, Pattern::Random, 0.5, 10, 3);
        assert_eq!(src.total_packets(), 160);
        let mut q = InjectQueues::new(16);
        let mut cycle = 0;
        while !src.exhausted() {
            src.pump(cycle, &mut q);
            cycle += 1;
            assert!(cycle < 10_000, "quota never reached");
        }
        assert_eq!(q.total_enqueued(), 160);
    }

    #[test]
    fn bernoulli_rate_controls_pacing() {
        // At rate 0.1 the quota takes ~10x longer than at rate 1.0.
        let mut fast = BernoulliSource::new(4, Pattern::Random, 1.0, 50, 3);
        let mut slow = BernoulliSource::new(4, Pattern::Random, 0.1, 50, 3);
        let mut qf = InjectQueues::new(16);
        let mut qs = InjectQueues::new(16);
        let mut fast_cycles = 0u64;
        while !fast.exhausted() {
            fast.pump(fast_cycles, &mut qf);
            fast_cycles += 1;
        }
        let mut slow_cycles = 0u64;
        while !slow.exhausted() {
            slow.pump(slow_cycles, &mut qs);
            slow_cycles += 1;
        }
        assert_eq!(fast_cycles, 50);
        assert!(slow_cycles > 300, "rate 0.1 finished suspiciously fast");
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn zero_rate_rejected() {
        BernoulliSource::new(4, Pattern::Random, 0.0, 1, 0);
    }

    #[test]
    fn batch_source_end_to_end() {
        let msgs = vec![
            Message {
                src: 0,
                dst: 5,
                tag: 1,
            },
            Message {
                src: 3,
                dst: 12,
                tag: 2,
            },
            Message {
                src: 15,
                dst: 0,
                tag: 3,
            },
        ];
        let mut src = MessageBatchSource::new(4, msgs);
        assert_eq!(src.len(), 3);
        assert!(!src.is_empty());
        let cfg = NocConfig::hoplite(4).unwrap();
        let report = SimSession::new(&cfg).run(&mut src).unwrap().report;
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_bounds_checked() {
        MessageBatchSource::new(
            2,
            vec![Message {
                src: 0,
                dst: 99,
                tag: 0,
            }],
        );
    }

    #[test]
    fn timed_trace_releases_in_order() {
        let events = vec![
            (
                5,
                Message {
                    src: 1,
                    dst: 2,
                    tag: 0,
                },
            ),
            (
                0,
                Message {
                    src: 0,
                    dst: 3,
                    tag: 1,
                },
            ),
        ];
        let mut src = TimedTraceSource::new(2, events);
        assert_eq!(src.remaining(), 2);
        let mut q = InjectQueues::new(4);
        src.pump(0, &mut q);
        assert_eq!(q.total_enqueued(), 1); // only the cycle-0 event
        assert!(!src.exhausted());
        src.pump(5, &mut q);
        assert_eq!(q.total_enqueued(), 2);
        assert!(src.exhausted());
    }
}
