//! Multi-processor overlay traffic (paper Figure 15d).
//!
//! The paper replays SNIPER/PARSEC communication traces on a 32-PE
//! processor overlay. We synthesize per-benchmark traffic with matched
//! first-order characteristics — per-PE message intensity, locality (how
//! much traffic stays within a small neighborhood, e.g. `freqmine` is
//! "predominantly local" and gains nothing from a faster NoC), and a
//! shared-data hotspot component (coherence directories / shared heap).

use fasttrack_core::geom::Coord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::source::{Message, TimedTraceSource};

/// Traffic profile of one PARSEC benchmark on the overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParsecProfile {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// Messages generated per PE.
    pub messages_per_pe: u32,
    /// Probability a message targets a neighbor within the local radius.
    pub locality: f64,
    /// Probability a (non-local) message targets the hotspot set
    /// (shared-data homes).
    pub hotspot: f64,
    /// Mean cycles between message generations at one PE (compute/comm
    /// ratio; larger = sparser traffic).
    pub think_cycles: f64,
}

/// The Figure 15d suite (32 PEs). Locality/intensity follow the paper's
/// qualitative description: `freqmine` is local-dominated; `x264`,
/// `dedup`, and `vips` ship lots of shared data around.
pub fn parsec_benchmarks() -> Vec<ParsecProfile> {
    vec![
        ParsecProfile {
            name: "x264",
            messages_per_pe: 4000,
            locality: 0.15,
            hotspot: 0.35,
            think_cycles: 2.0,
        },
        ParsecProfile {
            name: "vips",
            messages_per_pe: 3500,
            locality: 0.25,
            hotspot: 0.30,
            think_cycles: 2.5,
        },
        ParsecProfile {
            name: "freqmine",
            messages_per_pe: 2500,
            locality: 0.85,
            hotspot: 0.05,
            think_cycles: 4.0,
        },
        ParsecProfile {
            name: "fluidanimate",
            messages_per_pe: 3000,
            locality: 0.55,
            hotspot: 0.15,
            think_cycles: 3.0,
        },
        ParsecProfile {
            name: "dedup",
            messages_per_pe: 3800,
            locality: 0.20,
            hotspot: 0.40,
            think_cycles: 2.0,
        },
        ParsecProfile {
            name: "blackscholes",
            messages_per_pe: 2000,
            locality: 0.40,
            hotspot: 0.20,
            think_cycles: 5.0,
        },
    ]
}

/// Generates the timed message trace of a profile on an `n × n` overlay
/// (the paper uses 32 PEs; pass the NoC side that hosts them).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn parsec_trace(profile: &ParsecProfile, n: u16, seed: u64) -> TimedTraceSource {
    assert!(n >= 2);
    let pes = n as usize * n as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    // Hotspot homes: a handful of PEs holding hot shared lines.
    let hotspots: Vec<usize> = (0..4).map(|_| rng.gen_range(0..pes)).collect();
    let mut events = Vec::new();
    for pe in 0..pes {
        let src = Coord::from_node_id(pe, n);
        let mut t = 0u64;
        for _ in 0..profile.messages_per_pe {
            // Exponential-ish inter-arrival via geometric sampling.
            t += 1 + (profile.think_cycles * -(1.0 - rng.gen::<f64>()).ln()) as u64;
            let r: f64 = rng.gen();
            let dst = if r < profile.locality {
                // Neighbor within radius 1 (torus).
                let dx = rng.gen_range(-1i32..=1);
                let dy = rng.gen_range(-1i32..=1);
                let x = (src.x as i32 + dx).rem_euclid(n as i32) as u16;
                let y = (src.y as i32 + dy).rem_euclid(n as i32) as u16;
                Coord::new(x, y).to_node_id(n)
            } else if r < profile.locality + profile.hotspot {
                hotspots[rng.gen_range(0..hotspots.len())]
            } else {
                rng.gen_range(0..pes)
            };
            events.push((
                t,
                Message {
                    src: pe,
                    dst,
                    tag: 0,
                },
            ));
        }
    }
    TimedTraceSource::new(n, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::{FtPolicy, NocConfig};
    use fasttrack_core::queue::InjectQueues;
    use fasttrack_core::sim::{SimOptions, SimSession, TrafficSource};

    #[test]
    fn suite_has_six_benchmarks() {
        let b = parsec_benchmarks();
        assert_eq!(b.len(), 6);
        let freqmine = b.iter().find(|p| p.name == "freqmine").unwrap();
        assert!(freqmine.locality > 0.8, "freqmine must be local-dominated");
    }

    #[test]
    fn trace_generates_expected_volume() {
        let profile = ParsecProfile {
            name: "test",
            messages_per_pe: 100,
            locality: 0.5,
            hotspot: 0.2,
            think_cycles: 1.0,
        };
        let mut trace = parsec_trace(&profile, 4, 1);
        assert_eq!(trace.remaining(), 1600);
        let mut q = InjectQueues::new(16);
        trace.pump(u64::MAX, &mut q);
        assert_eq!(q.total_enqueued(), 1600);
    }

    #[test]
    fn locality_profile_respected() {
        let local = ParsecProfile {
            name: "local",
            messages_per_pe: 500,
            locality: 1.0,
            hotspot: 0.0,
            think_cycles: 1.0,
        };
        let mut trace = parsec_trace(&local, 6, 2);
        let mut q = InjectQueues::new(36);
        trace.pump(u64::MAX, &mut q);
        // All destinations within radius 1 of their source.
        for node in 0..36usize {
            let src = Coord::from_node_id(node, 6);
            while let Some(p) = q.pop(node) {
                let dx = (p.dst.x as i32 - src.x as i32)
                    .rem_euclid(6)
                    .min((src.x as i32 - p.dst.x as i32).rem_euclid(6));
                let dy = (p.dst.y as i32 - src.y as i32)
                    .rem_euclid(6)
                    .min((src.y as i32 - p.dst.y as i32).rem_euclid(6));
                assert!(dx <= 1 && dy <= 1, "non-local message {src} -> {}", p.dst);
            }
        }
    }

    #[test]
    fn overlay_workload_completes_on_both_nocs() {
        let profile = parsec_benchmarks()[5]; // blackscholes, smallest
        let opts = SimOptions::default();
        let mut t1 = parsec_trace(&profile, 4, 3);
        let hoplite = SimSession::new(&NocConfig::hoplite(4).unwrap())
            .options(opts)
            .run(&mut t1)
            .unwrap()
            .report;
        let mut t2 = parsec_trace(&profile, 4, 3);
        let ft = SimSession::new(&NocConfig::fasttrack(4, 2, 1, FtPolicy::Full).unwrap())
            .options(opts)
            .run(&mut t2)
            .unwrap()
            .report;
        assert!(!hoplite.truncated && !ft.truncated);
        assert_eq!(hoplite.stats.delivered, ft.stats.delivered);
        assert!(ft.cycles <= hoplite.cycles, "FT slower on overlay traffic");
    }
}
