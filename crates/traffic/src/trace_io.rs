//! Plain-text trace serialization.
//!
//! Downstream users replay their own accelerator communication traces
//! (the paper extracts them from SpMV/graph/LU/PARSEC runs). The format
//! is one event per line:
//!
//! ```text
//! # comment lines and blanks are ignored
//! <release_cycle> <src_node> <dst_node> [tag]
//! ```
//!
//! Nodes are row-major ids on the target torus. The reader validates
//! ranges eagerly so a bad trace fails at load, not mid-simulation.

use std::fmt::Write as _;
use std::num::ParseIntError;

use crate::source::{Message, TimedTraceSource};

/// Errors raised while parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// A line did not have 3 or 4 whitespace-separated fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        fields: usize,
    },
    /// A field failed integer parsing.
    BadInteger {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A node id is outside the target system.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending node id, kept at full `u64` width so the
        /// reported value is never a truncated alias of what the file
        /// actually said.
        node: u64,
        /// Nodes in the target system.
        nodes: usize,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::BadFieldCount { line, fields } => {
                write!(f, "line {line}: expected 3 or 4 fields, found {fields}")
            }
            TraceParseError::BadInteger { line, text } => {
                write!(f, "line {line}: invalid integer {text:?}")
            }
            TraceParseError::NodeOutOfRange { line, node, nodes } => {
                write!(f, "line {line}: node {node} outside 0..{nodes}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// One parsed trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the message becomes available at its source.
    pub release_cycle: u64,
    /// The message.
    pub message: Message,
}

/// Parses a text trace targeted at an `n × n` system.
///
/// # Errors
///
/// Returns a [`TraceParseError`] describing the first malformed line.
pub fn parse_trace(text: &str, n: u16) -> Result<Vec<TraceEvent>, TraceParseError> {
    let nodes = n as usize * n as usize;
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() != 3 && fields.len() != 4 {
            return Err(TraceParseError::BadFieldCount {
                line,
                fields: fields.len(),
            });
        }
        let parse = |text: &str| -> Result<u64, TraceParseError> {
            text.parse()
                .map_err(|_: ParseIntError| TraceParseError::BadInteger {
                    line,
                    text: text.to_string(),
                })
        };
        let release_cycle = parse(fields[0])?;
        let src = parse(fields[1])?;
        let dst = parse(fields[2])?;
        let tag = if fields.len() == 4 {
            parse(fields[3])?
        } else {
            0
        };
        // Range-check at u64 width BEFORE narrowing to usize: a node id
        // above usize::MAX must report as out-of-range, not silently
        // wrap into a valid-looking id on 32-bit hosts.
        for node in [src, dst] {
            if node >= nodes as u64 {
                return Err(TraceParseError::NodeOutOfRange { line, node, nodes });
            }
        }
        events.push(TraceEvent {
            release_cycle,
            message: Message {
                src: src as usize,
                dst: dst as usize,
                tag,
            },
        });
    }
    Ok(events)
}

/// Serializes events into the text format (sorted by release cycle).
pub fn format_trace(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.release_cycle);
    let mut out = String::from("# cycle src dst tag\n");
    for e in sorted {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            e.release_cycle, e.message.src, e.message.dst, e.message.tag
        );
    }
    out
}

/// Builds a ready-to-run [`TimedTraceSource`] from trace text.
///
/// # Errors
///
/// Returns a [`TraceParseError`] for malformed input.
pub fn trace_source_from_text(text: &str, n: u16) -> Result<TimedTraceSource, TraceParseError> {
    let events = parse_trace(text, n)?;
    Ok(TimedTraceSource::new(
        n,
        events
            .into_iter()
            .map(|e| (e.release_cycle, e.message))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_tags() {
        let text = "# header\n\n0 0 5\n10 3 1 42  # inline comment\n";
        let events = parse_trace(text, 4).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].message,
            Message {
                src: 0,
                dst: 5,
                tag: 0
            }
        );
        assert_eq!(events[1].release_cycle, 10);
        assert_eq!(events[1].message.tag, 42);
    }

    #[test]
    fn error_reporting_is_line_accurate() {
        assert_eq!(
            parse_trace("0 1\n", 4).unwrap_err(),
            TraceParseError::BadFieldCount { line: 1, fields: 2 }
        );
        assert_eq!(
            parse_trace("0 0 1\nx 0 1\n", 4).unwrap_err(),
            TraceParseError::BadInteger {
                line: 2,
                text: "x".into()
            }
        );
        assert_eq!(
            parse_trace("0 0 99\n", 4).unwrap_err(),
            TraceParseError::NodeOutOfRange {
                line: 1,
                node: 99,
                nodes: 16
            }
        );
        assert!(parse_trace("0 0 99\n", 4)
            .unwrap_err()
            .to_string()
            .contains("node 99"));
    }

    #[test]
    fn huge_node_ids_report_untruncated() {
        // 2^32 + 5 would wrap to 5 (in range!) if narrowed before the
        // range check on a 32-bit host.
        let huge = (1u64 << 32) + 5;
        assert_eq!(
            parse_trace(&format!("0 0 {huge}\n"), 4).unwrap_err(),
            TraceParseError::NodeOutOfRange {
                line: 1,
                node: huge,
                nodes: 16
            }
        );
    }

    #[test]
    fn roundtrip_preserves_events() {
        let events = vec![
            TraceEvent {
                release_cycle: 7,
                message: Message {
                    src: 1,
                    dst: 2,
                    tag: 3,
                },
            },
            TraceEvent {
                release_cycle: 0,
                message: Message {
                    src: 0,
                    dst: 15,
                    tag: 0,
                },
            },
        ];
        let text = format_trace(&events);
        let parsed = parse_trace(&text, 4).unwrap();
        // format_trace sorts by cycle.
        assert_eq!(parsed[0].release_cycle, 0);
        assert_eq!(parsed[1], events[0]);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn source_built_from_text_runs() {
        use fasttrack_core::config::NocConfig;
        use fasttrack_core::sim::SimSession;
        let text = "0 0 5\n0 1 6\n5 2 7\n";
        let mut src = trace_source_from_text(text, 4).unwrap();
        let report = SimSession::new(&NocConfig::hoplite(4).unwrap())
            .run(&mut src)
            .unwrap()
            .report;
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 3);
    }
}
