//! Vendored, dependency-free subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `proptest` its property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, range and
//! [`any`] strategies, tuple composition, [`array::uniform4`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (failures reproduce exactly by re-running the
//! test), and there is **no shrinking** — a failing case reports its
//! index and message only. For the engine-level properties in this
//! workspace, inputs are already small, so shrinking matters little.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy for "any value of `T`" ([`crate::any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a full-domain uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rand::Standard::sample(rng)
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// `proptest::strategy::Just` — always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;

    /// Strategy yielding `[S::Value; 4]` from four draws of `strategy`.
    pub fn uniform4<S: Strategy>(strategy: S) -> Uniform4<S> {
        Uniform4(strategy)
    }

    /// The strategy returned by [`uniform4`].
    #[derive(Debug, Clone)]
    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

pub mod test_runner {
    //! Case-generation loop and failure reporting.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-test configuration (a subset of upstream's fields).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives one property: deterministic per-case RNG streams.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        /// Stream seed; fixed so failures replay on rerun.
        seed: u64,
    }

    impl TestRunner {
        /// Creates a runner for `config`.
        pub fn new(config: Config) -> Self {
            TestRunner {
                config,
                seed: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for case number `case`.
        pub fn rng_for(&self, case: u32) -> SmallRng {
            SmallRng::seed_from_u64(self.seed ^ (case as u64).wrapping_mul(0xD134_2543_DE82_EF95))
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

use std::marker::PhantomData;

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(PhantomData)
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = $crate::test_runner::Config::default(); $($rest)*
        );
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($config);
            for case in 0..runner.cases() {
                let mut __proptest_rng = runner.rng_for(case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __proptest_rng,
                    );
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        case + 1,
                        runner.cases(),
                        stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u16..10, y in -3i32..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn tuples_and_map(pair in (0u8..4, crate::any::<bool>()).prop_map(|(a, b)| (a as u32, b))) {
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn arrays(a in crate::array::uniform4(0u8..3)) {
            prop_assert_eq!(a.len(), 4);
            for v in a {
                prop_assert!(v < 3);
            }
        }

        #[test]
        fn early_ok_return_works(x in 0u8..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    #[test]
    fn failures_panic_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(false, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
