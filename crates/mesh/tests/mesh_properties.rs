//! Property-based tests of the buffered mesh: conservation, deadlock
//! freedom, per-flow FIFO ordering, and minimal-path routing.

use fasttrack_core::geom::Coord;
use fasttrack_core::packet::Delivery;
use fasttrack_core::queue::InjectQueues;
use fasttrack_mesh::{mesh_distance, MeshConfig, MeshNoc};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn drain(cfg: MeshConfig, batch: &[(usize, Coord)], max: u64) -> (Vec<Delivery>, MeshNoc) {
    let mut noc = MeshNoc::new(cfg);
    let mut q = InjectQueues::new(cfg.num_nodes());
    for &(s, d) in batch {
        q.push(s, d, 0, 0);
    }
    let mut dels = Vec::new();
    for _ in 0..max {
        noc.step(&mut q, &mut dels);
        if q.is_empty() && noc.in_flight() == 0 {
            break;
        }
    }
    (dels, noc)
}

fn random_batch(n: u16, per_pe: usize, seed: u64) -> Vec<(usize, Coord)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes = n as usize * n as usize;
    let mut batch = Vec::new();
    for node in 0..nodes {
        for _ in 0..per_pe {
            batch.push((node, Coord::new(rng.gen_range(0..n), rng.gen_range(0..n))));
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every packet is delivered exactly once (deadlock/livelock/loss
    /// freedom) for arbitrary sizes, depths, and loads.
    #[test]
    fn conservation(
        n in 2u16..9,
        depth in 1usize..6,
        per_pe in 1usize..10,
        seed in any::<u64>(),
    ) {
        let cfg = MeshConfig::new(n, depth).unwrap();
        let batch = random_batch(n, per_pe, seed);
        let (dels, noc) = drain(cfg, &batch, 500_000);
        prop_assert_eq!(dels.len(), batch.len());
        prop_assert_eq!(noc.in_flight(), 0);
        let mut ids = std::collections::HashSet::new();
        for d in &dels {
            prop_assert!(ids.insert(d.packet.id));
            prop_assert_eq!(d.packet.dst.to_node_id(n), d.packet.dst.to_node_id(n));
        }
    }

    /// Buffered XY routing is minimal: every packet's hop count equals
    /// its Manhattan distance (no deflections ever).
    #[test]
    fn minimal_paths(n in 2u16..9, seed in any::<u64>()) {
        let cfg = MeshConfig::new(n, 4).unwrap();
        let batch = random_batch(n, 3, seed);
        let (dels, _) = drain(cfg, &batch, 500_000);
        for d in &dels {
            prop_assert_eq!(
                d.packet.short_hops,
                mesh_distance(d.packet.src, d.packet.dst),
                "non-minimal path for {:?}", d.packet
            );
            prop_assert_eq!(d.packet.deflections, 0);
            prop_assert_eq!(d.packet.express_hops, 0);
        }
    }

    /// Per-flow FIFO order: two packets with the same source and
    /// destination are delivered in injection order (XY routing is a
    /// single path, FIFOs preserve order).
    #[test]
    fn per_flow_ordering(n in 2u16..7, seed in any::<u64>()) {
        let cfg = MeshConfig::new(n, 2).unwrap();
        let mut batch = random_batch(n, 4, seed);
        // Duplicate each entry so every flow has >= 2 packets.
        let dup = batch.clone();
        batch.extend(dup);
        let (dels, _) = drain(cfg, &batch, 500_000);
        let mut last_seen: std::collections::HashMap<(Coord, Coord), u64> =
            std::collections::HashMap::new();
        // Deliveries are pushed in cycle order; check ids per flow are
        // increasing given ids are assigned in push order per flow.
        for d in &dels {
            let key = (d.packet.src, d.packet.dst);
            if let Some(&prev) = last_seen.get(&key) {
                prop_assert!(d.packet.id.0 > prev, "flow reordered: {key:?}");
            }
            last_seen.insert(key, d.packet.id.0);
        }
    }

    /// Latency never beats the physical minimum (hops + ejection).
    #[test]
    fn latency_bound(n in 2u16..9, seed in any::<u64>()) {
        let cfg = MeshConfig::new(n, 3).unwrap();
        let batch = random_batch(n, 2, seed);
        let (dels, _) = drain(cfg, &batch, 500_000);
        for d in &dels {
            prop_assert!(d.total_latency() >= (d.packet.short_hops + 1) as u64);
        }
    }

    /// The deprecated `simulate_mesh_traced` shim and the
    /// `SimSession::with_backend` path are indistinguishable: same
    /// report, same event stream, for arbitrary sizes and batches —
    /// the mesh half of the refactor's differential guarantee.
    #[cfg(feature = "legacy-api")]
    #[test]
    fn shim_traced_matches_session(
        n in 2u16..7,
        depth in 1usize..5,
        seed in any::<u64>(),
    ) {
        use fasttrack_core::sim::{SimOptions, SimSession, TrafficSource};
        use fasttrack_core::trace::VecSink;
        use fasttrack_mesh::MeshBackend;

        struct Batch {
            items: Vec<(usize, Coord)>,
            pushed: bool,
        }
        impl TrafficSource for Batch {
            fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
                if !self.pushed {
                    for &(s, d) in &self.items {
                        queues.push(s, d, cycle, 0);
                    }
                    self.pushed = true;
                }
            }
            fn exhausted(&self) -> bool {
                self.pushed
            }
        }

        let cfg = MeshConfig::new(n, depth).unwrap();
        let items = random_batch(n, 2, seed);
        let mk = || Batch { items: items.clone(), pushed: false };

        let mut legacy_sink = VecSink::new();
        #[allow(deprecated)]
        let legacy = fasttrack_mesh::simulate_mesh_traced(
            &cfg,
            &mut mk(),
            SimOptions::default(),
            &mut legacy_sink,
        );

        let mut session_sink = VecSink::new();
        let session = SimSession::with_backend(MeshBackend::new(&cfg))
            .with_sink(&mut session_sink)
            .run(&mut mk())
            .unwrap()
            .report;

        prop_assert_eq!(legacy, session);
        prop_assert_eq!(&legacy_sink.events, &session_sink.events);
    }
}
