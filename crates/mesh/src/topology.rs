//! The buffered mesh as a [`Topology`] implementation.
//!
//! Re-expresses the mesh's geometry through `fasttrack-core`'s
//! topology abstraction so sessions, monitors, fault planners, and the
//! iso-resource comparison harness treat it uniformly with the torus
//! and Sparse Hamming Graph backends.
//!
//! Link tagging follows the engine's event convention (see
//! `crate::noc`): the mesh's bidirectional links report through the
//! torus axis classes, x-axis links as `E_sh` and y-axis links as
//! `S_sh`, all [`WireClass::Short`] — a buffered mesh has no express
//! wires. The per-direction `slot` is [`Dir::index`], so edge routers
//! simply omit the slots that would leave the fabric.

use fasttrack_core::fault::{Fault, FaultError, FaultPlan};
use fasttrack_core::geom::Coord;
use fasttrack_core::port::OutPort;
use fasttrack_core::topology::{
    LinkDesc, MonitorShape, ResourceCost, Topology, TopologySpec, WireClass, DATAPATH_BITS,
};

use crate::config::MeshConfig;
use crate::noc::MeshNoc;
use crate::router::{xy_route, Dir};

/// The axis class a mesh direction reports through (the engine's event
/// convention: unidirectional torus ports fold both mesh directions of
/// an axis onto the shared-lane class).
fn axis_port(dir: Dir) -> OutPort {
    match dir {
        Dir::East | Dir::West => OutPort::EastSh,
        Dir::North | Dir::South => OutPort::SouthSh,
    }
}

/// An `n × n` buffered mesh viewed through the [`Topology`] trait.
#[derive(Debug, Clone, Copy)]
pub struct MeshTopology {
    cfg: MeshConfig,
}

impl MeshTopology {
    /// Wraps a mesh configuration.
    pub fn new(cfg: MeshConfig) -> Self {
        MeshTopology { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }
}

impl Topology for MeshTopology {
    fn name(&self) -> String {
        self.cfg.name()
    }

    fn spec(&self) -> TopologySpec {
        TopologySpec::Mesh {
            n: self.cfg.n(),
            depth: self.cfg.buffer_depth(),
        }
    }

    fn num_nodes(&self) -> usize {
        self.cfg.num_nodes()
    }

    fn monitor_shape(&self) -> MonitorShape {
        MonitorShape::torus(self.cfg.n())
    }

    fn out_links(&self, node: usize) -> Vec<LinkDesc> {
        let n = self.cfg.n();
        let at = Coord::from_node_id(node, n);
        Dir::ALL
            .iter()
            .filter_map(|&dir| {
                dir.neighbor(at, n).map(|next| LinkDesc {
                    src: node,
                    dst: next.to_node_id(n),
                    slot: dir.index(),
                    port: axis_port(dir),
                    class: WireClass::Short,
                    span: 1,
                })
            })
            .collect()
    }

    fn route_slot(&self, at: usize, dst: usize) -> usize {
        let n = self.cfg.n();
        let from = Coord::from_node_id(at, n);
        let to = Coord::from_node_id(dst, n);
        xy_route(from, to).map_or(0, Dir::index)
    }

    /// A buffered router is priced like the default mux-tree model on
    /// the LUT side, but its flip-flops hold `buffer_depth` flits per
    /// input FIFO instead of one link register — the Table I gap the
    /// iso-resource harness exists to expose.
    fn resource_cost(&self) -> ResourceCost {
        let depth = self.cfg.buffer_depth() as u64;
        let mut cost = ResourceCost::default();
        for node in 0..self.num_nodes() {
            let out_degree = self.out_links(node).len() as u64;
            let in_degree = out_degree; // bidirectional: one FIFO per inbound link
            let outputs = out_degree + 1; // + Exit
            let fanin = in_degree + 1; // + injection
            cost.luts += outputs * (fanin - 1) * (DATAPATH_BITS / 2) + 8 * outputs;
            cost.ffs += DATAPATH_BITS * depth * in_degree + 8 * in_degree + 16;
        }
        cost
    }

    /// Delegates to the mesh engine's own validator: XY routing is
    /// single-path, so the mesh admits only transient axis faults,
    /// fail-stop routers, and stalled injectors — never dead links.
    fn validate_fault(&self, fault: &Fault) -> Result<(), FaultError> {
        MeshNoc::with_faults(self.cfg, &FaultPlan::new().with(*fault)).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(n: u16) -> MeshTopology {
        MeshTopology::new(MeshConfig::new(n, 4).unwrap())
    }

    #[test]
    fn corner_and_interior_degrees() {
        let t = topo(4);
        assert_eq!(t.out_links(0).len(), 2, "corner: east + south only");
        assert_eq!(t.out_links(5).len(), 4, "interior: all four");
        // Every link's reverse twin exists (bidirectional mesh).
        for l in t.links() {
            assert!(t.out_links(l.dst).iter().any(|r| r.dst == l.src));
        }
    }

    #[test]
    fn mesh_is_strongly_connected_and_has_no_express() {
        let t = topo(4);
        assert!(t.connected_without(&[]));
        assert!(t.express_ports().is_empty());
        assert!(t
            .links()
            .iter()
            .all(|l| l.class == WireClass::Short && l.span == 1));
    }

    #[test]
    fn route_lut_is_xy() {
        let t = topo(4);
        let lut = t.build_route_lut();
        // (0,0) -> (2,1): east first.
        let slot = lut.slot(0, Coord::new(2, 1).to_node_id(4)).unwrap();
        assert_eq!(slot, Dir::East.index());
        // (2,0) -> (2,1): then south.
        let slot = lut.slot(2, Coord::new(2, 1).to_node_id(4)).unwrap();
        assert_eq!(slot, Dir::South.index());
    }

    #[test]
    fn fault_validation_matches_engine() {
        let t = topo(4);
        let dead = Fault::DeadLink {
            node: 0,
            out: OutPort::EastSh,
        };
        assert!(
            t.validate_fault(&dead).is_err(),
            "single-path XY: no dead links"
        );
        let transient = Fault::TransientLink {
            node: 1,
            out: OutPort::EastSh,
            from: 0,
            until: 10,
            corrupt: false,
        };
        assert!(t.validate_fault(&transient).is_ok());
    }

    #[test]
    fn buffers_dominate_ff_cost() {
        let shallow = MeshTopology::new(MeshConfig::new(4, 1).unwrap()).resource_cost();
        let deep = MeshTopology::new(MeshConfig::new(4, 8).unwrap()).resource_cost();
        assert_eq!(shallow.luts, deep.luts, "depth is FF-only");
        assert!(deep.ffs > 4 * shallow.ffs);
    }

    #[test]
    fn spec_round_trips_through_core_grammar() {
        let t = topo(4);
        let spec = t.spec();
        assert_eq!(spec.to_string(), "mesh:4:4");
        assert_eq!(spec.to_string().parse::<TopologySpec>().unwrap(), spec);
        assert_eq!(spec.monitor_shape(), t.monitor_shape());
    }
}
