//! Mesh directions and XY dimension-ordered routing.

use fasttrack_core::geom::Coord;

/// A mesh link direction. `South` is increasing `y`, matching the torus
/// convention of `fasttrack-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward decreasing `y`.
    North,
    /// Toward increasing `x`.
    East,
    /// Toward increasing `y`.
    South,
    /// Toward decreasing `x`.
    West,
}

impl Dir {
    /// All directions, in arbitration index order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// Dense index (0..4).
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }

    /// The direction a packet *arrives from* when sent this way.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// The neighbor of `at` in this direction on an `n × n` mesh, or
    /// `None` at the mesh edge (no wraparound).
    pub fn neighbor(self, at: Coord, n: u16) -> Option<Coord> {
        match self {
            Dir::North => (at.y > 0).then(|| Coord::new(at.x, at.y - 1)),
            Dir::South => (at.y + 1 < n).then(|| Coord::new(at.x, at.y + 1)),
            Dir::West => (at.x > 0).then(|| Coord::new(at.x - 1, at.y)),
            Dir::East => (at.x + 1 < n).then(|| Coord::new(at.x + 1, at.y)),
        }
    }
}

/// Where a packet at `at` heading for `dst` wants to go next under XY
/// dimension-ordered routing (`None` = eject here).
pub fn xy_route(at: Coord, dst: Coord) -> Option<Dir> {
    if at.x < dst.x {
        Some(Dir::East)
    } else if at.x > dst.x {
        Some(Dir::West)
    } else if at.y < dst.y {
        Some(Dir::South)
    } else if at.y > dst.y {
        Some(Dir::North)
    } else {
        None
    }
}

/// Minimal hop count between two mesh nodes.
pub fn mesh_distance(a: Coord, b: Coord) -> u32 {
    (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposites() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_eq!(Dir::East.opposite(), Dir::West);
    }

    #[test]
    fn indices_dense() {
        let mut seen = [false; 4];
        for d in Dir::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
    }

    #[test]
    fn neighbors_respect_mesh_edges() {
        let n = 4;
        assert_eq!(Dir::North.neighbor(Coord::new(0, 0), n), None);
        assert_eq!(Dir::West.neighbor(Coord::new(0, 0), n), None);
        assert_eq!(Dir::East.neighbor(Coord::new(3, 0), n), None);
        assert_eq!(Dir::South.neighbor(Coord::new(0, 3), n), None);
        assert_eq!(
            Dir::East.neighbor(Coord::new(1, 1), n),
            Some(Coord::new(2, 1))
        );
        assert_eq!(
            Dir::North.neighbor(Coord::new(1, 1), n),
            Some(Coord::new(1, 0))
        );
    }

    #[test]
    fn xy_routes_x_first() {
        let dst = Coord::new(3, 3);
        assert_eq!(xy_route(Coord::new(0, 0), dst), Some(Dir::East));
        assert_eq!(xy_route(Coord::new(5, 0), dst), Some(Dir::West));
        assert_eq!(xy_route(Coord::new(3, 0), dst), Some(Dir::South));
        assert_eq!(xy_route(Coord::new(3, 5), dst), Some(Dir::North));
        assert_eq!(xy_route(dst, dst), None);
    }

    #[test]
    fn distance_is_manhattan() {
        assert_eq!(mesh_distance(Coord::new(0, 0), Coord::new(3, 2)), 5);
        assert_eq!(mesh_distance(Coord::new(3, 2), Coord::new(0, 0)), 5);
        assert_eq!(mesh_distance(Coord::new(1, 1), Coord::new(1, 1)), 0);
    }
}
