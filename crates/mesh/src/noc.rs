//! The buffered-mesh engine: input-FIFO routers with credit-based flow
//! control and round-robin output arbitration.
//!
//! Unlike the bufferless torus, a buffered router *parks* losers: each
//! of the four link inputs owns a FIFO of `buffer_depth` packets, a
//! packet advances only when its output wins arbitration *and* the
//! downstream FIFO has a credit, and ejection consumes one packet per
//! cycle. XY routing on a mesh with guaranteed ejection is
//! deadlock-free, which the tests verify by draining adversarial loads.

use std::collections::VecDeque;

use fasttrack_core::fault::{Fault, FaultError, FaultPlan};
use fasttrack_core::geom::Coord;
use fasttrack_core::packet::{Delivery, Packet};
use fasttrack_core::port::OutPort;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::stats::SimStats;
use fasttrack_core::trace::{EventSink, NullSink, SimEvent};

use crate::config::MeshConfig;
use crate::router::{xy_route, Dir};

/// Maps a mesh link direction onto the torus-typed event port by *axis*:
/// the torus enum has no west/north outputs (its rings are
/// unidirectional), so traces report x-axis links as `E_sh` and y-axis
/// links as `S_sh`. Axis-level link accounting (e.g. the windowed
/// metrics' utilization series) stays meaningful; direction within the
/// axis is a mesh-only detail.
fn axis_port(dir: Dir) -> OutPort {
    match dir {
        Dir::East | Dir::West => OutPort::EastSh,
        Dir::North | Dir::South => OutPort::SouthSh,
    }
}

/// Candidate inputs per output: four link FIFOs plus local injection.
const INJ: usize = 4;

/// The mesh's compiled view of a [`FaultPlan`]. The core engine's
/// compiled tables are crate-private, so the mesh re-derives its own
/// from the public plan. Link faults are *axis-level* here (see
/// [`axis_port`]): a `TransientLink` on `E_sh` covers both x-axis
/// directions at its node, `S_sh` both y-axis directions.
#[derive(Debug, Clone)]
struct MeshFaultState {
    /// Per-node fail-stop cycle (`u64::MAX` = never fails).
    fail_at: Vec<u64>,
    /// Per-node injector stall windows `[from, until)`.
    stalls: Vec<Vec<(u64, u64)>>,
    /// Transient axis-link faults: `(node, axis, from, until, corrupt)`.
    transients: Vec<(usize, OutPort, u64, u64, bool)>,
}

impl MeshFaultState {
    /// Checks `plan` against a mesh: XY routing is single-path, so dead
    /// links are rejected outright ([`FaultError::PartitionsTorus`]) and
    /// transient faults must name axis (shared) ports — the mesh has no
    /// express links.
    fn validate(plan: &FaultPlan, cfg: &MeshConfig) -> Result<(), FaultError> {
        let nodes = cfg.num_nodes();
        for fault in plan.faults() {
            let node = fault.node();
            if node >= nodes {
                return Err(FaultError::BadNode { node, nodes });
            }
            match *fault {
                Fault::DeadLink { out, .. } => {
                    return Err(FaultError::PartitionsTorus { node, out })
                }
                Fault::TransientLink {
                    out, from, until, ..
                } => {
                    match out {
                        OutPort::Exit => return Err(FaultError::NotALink { node }),
                        OutPort::EastEx | OutPort::SouthEx => {
                            return Err(FaultError::NoExpressLink { node, out })
                        }
                        OutPort::EastSh | OutPort::SouthSh => {}
                    }
                    if from >= until {
                        return Err(FaultError::EmptyWindow { from, until });
                    }
                }
                Fault::FailStopRouter { .. } => {}
                Fault::StalledInjector { from, until, .. } => {
                    if from >= until {
                        return Err(FaultError::EmptyWindow { from, until });
                    }
                }
                // Down-then-recover windows name express links, which the
                // mesh does not have.
                Fault::DownLink { out, .. } => return Err(FaultError::NoExpressLink { node, out }),
            }
        }
        Ok(())
    }

    fn compile(plan: &FaultPlan, nodes: usize) -> Self {
        let mut state = MeshFaultState {
            fail_at: vec![u64::MAX; nodes],
            stalls: vec![Vec::new(); nodes],
            transients: Vec::new(),
        };
        for fault in plan.faults() {
            match *fault {
                Fault::DeadLink { .. } | Fault::DownLink { .. } => {
                    unreachable!("rejected by validate")
                }
                Fault::TransientLink {
                    node,
                    out,
                    from,
                    until,
                    corrupt,
                } => state.transients.push((node, out, from, until, corrupt)),
                Fault::FailStopRouter { node, at } => {
                    state.fail_at[node] = state.fail_at[node].min(at);
                }
                Fault::StalledInjector { node, from, until } => {
                    state.stalls[node].push((from, until));
                }
            }
        }
        state
    }

    fn failed(&self, node: usize, cycle: u64) -> bool {
        cycle >= self.fail_at[node]
    }

    fn injector_stalled(&self, node: usize, cycle: u64) -> bool {
        self.stalls[node]
            .iter()
            .any(|&(from, until)| cycle >= from && cycle < until)
    }

    fn link_fault(&self, node: usize, axis: OutPort, cycle: u64) -> Option<bool> {
        self.transients
            .iter()
            .find(|&&(n, a, from, until, _)| {
                n == node && a == axis && cycle >= from && cycle < until
            })
            .map(|&(_, _, _, _, corrupt)| corrupt)
    }
}

/// A buffered 2-D mesh NoC instance.
#[derive(Debug, Clone)]
pub struct MeshNoc {
    cfg: MeshConfig,
    /// `fifos[node][d]`: packets that arrived moving *from* direction
    /// `d` (i.e. sent by the `d`-side neighbor).
    fifos: Vec<[VecDeque<Packet>; 4]>,
    /// `credits[node][d]`: free slots we may still consume in the
    /// `d`-side neighbor's facing FIFO.
    credits: Vec<[usize; 4]>,
    /// Round-robin arbitration pointer per node per output (4 links +
    /// ejection).
    rr: Vec<[u8; 5]>,
    in_flight: usize,
    cycle: u64,
    stats: SimStats,
    faults: Option<MeshFaultState>,
}

/// One granted move, computed against the cycle-start snapshot.
#[derive(Debug, Clone, Copy)]
struct Move {
    node: usize,
    /// Input index: 0..4 = link FIFO by direction, [`INJ`] = injection.
    input: usize,
    /// Output: `Some(dir)` = link, `None` = ejection.
    out: Option<Dir>,
}

impl MeshNoc {
    /// Builds an idle mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        let nodes = cfg.num_nodes();
        MeshNoc {
            cfg,
            fifos: vec![Default::default(); nodes],
            credits: vec![[cfg.buffer_depth(); 4]; nodes],
            rr: vec![[0; 5]; nodes],
            in_flight: 0,
            cycle: 0,
            stats: SimStats::default(),
            faults: None,
        }
    }

    /// Builds a mesh with `plan` injected. An empty plan is identical to
    /// [`MeshNoc::new`]. The mesh supports the fault subset that its
    /// single-path XY routing can express: fail-stop routers, stalled
    /// injectors, and transient axis-link faults; permanently dead links
    /// are rejected (every mesh link is the only route for some pairs).
    pub fn with_faults(cfg: MeshConfig, plan: &FaultPlan) -> Result<Self, FaultError> {
        MeshFaultState::validate(plan, &cfg)?;
        let mut noc = MeshNoc::new(cfg);
        if !plan.is_empty() {
            noc.faults = Some(MeshFaultState::compile(plan, cfg.num_nodes()));
        }
        Ok(noc)
    }

    /// True when every node that still has queued packets has
    /// fail-stopped by the current cycle — those packets can never
    /// inject, so a driver waiting for the queues to drain should stop.
    /// Always false on a fault-free mesh.
    pub fn only_failed_injectors_pending(&self, queues: &InjectQueues) -> bool {
        let Some(f) = &self.faults else { return false };
        (0..self.cfg.num_nodes())
            .all(|node| queues.peek(node).is_none() || f.failed(node, self.cycle))
    }

    /// The configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Packets currently buffered in the mesh.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Returns the mesh to its just-constructed state: buffers drained,
    /// credits refilled, round-robin pointers and statistics zeroed, and
    /// the cycle counter back to 0. Topology and compiled fault plans
    /// are kept (fault tables are absolute-cycle, so resetting the cycle
    /// replays them identically) — the batched driver resets between
    /// seeds instead of rebuilding.
    pub fn reset(&mut self) {
        for fifo in &mut self.fifos {
            for dir in fifo.iter_mut() {
                dir.clear();
            }
        }
        for credit in &mut self.credits {
            *credit = [self.cfg.buffer_depth(); 4];
        }
        for rr in &mut self.rr {
            *rr = [0; 5];
        }
        self.in_flight = 0;
        self.cycle = 0;
        self.stats = SimStats::default();
    }

    /// Advances the mesh by one cycle.
    pub fn step(&mut self, queues: &mut InjectQueues, deliveries: &mut Vec<Delivery>) {
        self.step_with_sink(queues, deliveries, &mut NullSink);
    }

    /// [`MeshNoc::step`] with an [`EventSink`] observing the cycle.
    ///
    /// The mesh emits the same event vocabulary as the torus engines
    /// with two caveats: routing decisions carry `in_port: None` (FIFO
    /// inputs have no torus port identity) and link outputs are reported
    /// by axis (`axis_port`). Buffered routers hold rather than
    /// misroute, so no [`SimEvent::Deflect`] is ever emitted.
    pub fn step_with_sink<S: EventSink>(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        sink: &mut S,
    ) {
        let n = self.cfg.n();
        let nodes = self.cfg.num_nodes();
        let mut moves: Vec<Move> = Vec::new();

        // Phase 0: fail-stop routers drop everything buffered at them
        // and return the consumed credits upstream, so traffic keeps
        // flowing *toward* the dead node and is accounted as lost there
        // (exact conservation: every drop decrements in-flight).
        for node in 0..nodes {
            if !self
                .faults
                .as_ref()
                .is_some_and(|f| f.failed(node, self.cycle))
            {
                continue;
            }
            let at = Coord::from_node_id(node, n);
            for d in Dir::ALL {
                while let Some(pkt) = self.fifos[node][d.index()].pop_front() {
                    if let Some(upstream) = d.neighbor(at, n) {
                        self.credits[upstream.to_node_id(n)][d.opposite().index()] += 1;
                    }
                    self.in_flight -= 1;
                    self.stats.dropped += 1;
                    if S::ENABLED {
                        sink.emit(&SimEvent::FaultDrop {
                            cycle: self.cycle,
                            node,
                            packet: pkt.id,
                            link: None,
                            corrupted: false,
                        });
                    }
                }
            }
        }

        // Phase 1: arbitration against the cycle-start snapshot.
        for node in 0..nodes {
            // A fail-stopped router makes no moves: nothing routes,
            // nothing injects, nothing ejects.
            if self
                .faults
                .as_ref()
                .is_some_and(|f| f.failed(node, self.cycle))
            {
                continue;
            }
            let at = Coord::from_node_id(node, n);
            // Desired output of each candidate input's head packet.
            let mut desires: [Option<Option<Dir>>; 5] = [None; 5];
            for d in Dir::ALL {
                if let Some(head) = self.fifos[node][d.index()].front() {
                    desires[d.index()] = Some(xy_route(at, head.dst));
                }
            }
            let inject_blocked = self
                .faults
                .as_ref()
                .is_some_and(|f| f.injector_stalled(node, self.cycle));
            if !inject_blocked {
                if let Some(pending) = queues.peek(node) {
                    desires[INJ] = Some(xy_route(at, pending.dst));
                }
            }

            // Arbitrate each output: ejection (index 4) plus four links.
            for out_idx in 0..5usize {
                let out: Option<Dir> = if out_idx == 4 {
                    None
                } else {
                    Some(Dir::ALL[out_idx])
                };
                // Link outputs need a neighbor and a credit.
                if let Some(dir) = out {
                    if dir.neighbor(at, n).is_none() || self.credits[node][dir.index()] == 0 {
                        continue;
                    }
                }
                // Round-robin over the five candidate inputs.
                let start = self.rr[node][out_idx] as usize;
                let winner = (0..5)
                    .map(|k| (start + k) % 5)
                    .find(|&i| desires[i] == Some(out));
                if let Some(input) = winner {
                    moves.push(Move { node, input, out });
                    self.rr[node][out_idx] = ((input + 1) % 5) as u8;
                    // Reserve the credit now so no other router state is
                    // needed; pops/pushes apply in phase 2.
                    if let Some(dir) = out {
                        self.credits[node][dir.index()] -= 1;
                    }
                }
            }
        }

        // Phase 2: apply moves — pops (returning upstream credits), then
        // pushes into downstream FIFOs.
        let mut arrivals: Vec<(usize, usize, Packet)> = Vec::new();
        for mv in &moves {
            let at = Coord::from_node_id(mv.node, n);
            let mut pkt = if mv.input == INJ {
                let pending = queues.pop(mv.node).expect("granted injection has a packet");
                let mut p = Packet::new(
                    pending.id,
                    at,
                    pending.dst,
                    pending.enqueued_at,
                    pending.tag,
                );
                p.injected_at = self.cycle;
                self.stats.injected += 1;
                self.in_flight += 1;
                if S::ENABLED {
                    sink.emit(&SimEvent::Inject {
                        cycle: self.cycle,
                        node: mv.node,
                        packet: p.id,
                        dst: p.dst,
                        out: mv.out.map_or(OutPort::Exit, axis_port),
                        queue_wait: self.cycle.saturating_sub(p.enqueued_at),
                    });
                }
                p
            } else {
                let p = self.fifos[mv.node][mv.input]
                    .pop_front()
                    .expect("granted input has a head");
                // Return the credit to the upstream router that feeds
                // this FIFO (if any — edge FIFOs have no upstream).
                let from_dir = Dir::ALL[mv.input];
                if let Some(upstream) = from_dir.neighbor(at, n) {
                    self.credits[upstream.to_node_id(n)][from_dir.opposite().index()] += 1;
                }
                if S::ENABLED {
                    sink.emit(&SimEvent::RouteDecision {
                        cycle: self.cycle,
                        node: mv.node,
                        packet: p.id,
                        in_port: None,
                        out: mv.out.map_or(OutPort::Exit, axis_port),
                        src: p.src,
                        dst: p.dst,
                        hops: p.total_hops(),
                    });
                }
                p
            };

            match mv.out {
                None => {
                    debug_assert_eq!(pkt.dst, at);
                    self.in_flight -= 1;
                    self.stats.delivered += 1;
                    let delivery = Delivery {
                        packet: pkt,
                        cycle: self.cycle + 1,
                    };
                    self.stats.total_latency.record(delivery.total_latency());
                    self.stats
                        .network_latency
                        .record(delivery.network_latency());
                    if S::ENABLED {
                        sink.emit(&SimEvent::Eject {
                            cycle: self.cycle,
                            node: mv.node,
                            delivery,
                        });
                    }
                    deliveries.push(delivery);
                }
                Some(dir) => {
                    // The hop is counted even when a transient fault eats
                    // the packet: the wire was driven either way.
                    pkt.short_hops += 1;
                    self.stats.link_usage.short_hops += 1;
                    let axis = axis_port(dir);
                    if let Some(corrupted) = self
                        .faults
                        .as_ref()
                        .and_then(|f| f.link_fault(mv.node, axis, self.cycle))
                    {
                        // The reserved downstream slot is never filled:
                        // hand the credit straight back.
                        self.credits[mv.node][dir.index()] += 1;
                        self.in_flight -= 1;
                        self.stats.dropped += 1;
                        if S::ENABLED {
                            sink.emit(&SimEvent::FaultDrop {
                                cycle: self.cycle,
                                node: mv.node,
                                packet: pkt.id,
                                link: Some(axis),
                                corrupted,
                            });
                        }
                        continue;
                    }
                    let target = dir.neighbor(at, n).expect("checked in phase 1");
                    // The packet arrives at the target on the FIFO facing
                    // back toward us.
                    arrivals.push((target.to_node_id(n), dir.opposite().index(), pkt));
                }
            }
        }
        for (node, fifo, pkt) in arrivals {
            debug_assert!(self.fifos[node][fifo].len() < self.cfg.buffer_depth());
            self.fifos[node][fifo].push_back(pkt);
        }

        if S::ENABLED {
            // A node with a still-pending head was denied injection this
            // cycle (grants pop the head, and pumps happen outside step).
            for node in 0..nodes {
                let injected = moves.iter().any(|m| m.node == node && m.input == INJ);
                if !injected && queues.peek(node).is_some() {
                    sink.emit(&queues.stall_event(self.cycle, node));
                }
            }
            sink.end_cycle(self.cycle);
        }

        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(noc: &mut MeshNoc, q: &mut InjectQueues, max: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for _ in 0..max {
            noc.step(q, &mut out);
            if q.is_empty() && noc.in_flight() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn single_packet_shortest_path() {
        let mut noc = MeshNoc::new(MeshConfig::new(4, 2).unwrap());
        let mut q = InjectQueues::new(16);
        q.push(0, Coord::new(3, 2), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].packet.short_hops, 5); // Manhattan distance
                                                  // Injection rides the first link in its grant cycle: 5 link
                                                  // cycles + 1 ejection cycle = latency 6.
        assert_eq!(dels[0].total_latency(), 6);
    }

    #[test]
    fn west_and_north_routes_exist() {
        // Mesh traffic is bidirectional, unlike the torus.
        let mut noc = MeshNoc::new(MeshConfig::new(4, 2).unwrap());
        let mut q = InjectQueues::new(16);
        let src = Coord::new(3, 3).to_node_id(4);
        q.push(src, Coord::new(0, 0), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].packet.short_hops, 6);
    }

    #[test]
    fn buffers_absorb_contention_without_loss() {
        let mut noc = MeshNoc::new(MeshConfig::new(4, 4).unwrap());
        let mut q = InjectQueues::new(16);
        for node in 0..16 {
            if node != 5 {
                for _ in 0..8 {
                    q.push(node, Coord::new(1, 1), 0, 0); // node 5
                }
            }
        }
        let dels = drain(&mut noc, &mut q, 10_000);
        assert_eq!(dels.len(), 15 * 8, "buffered mesh must deliver everything");
        assert_eq!(noc.in_flight(), 0);
        // Ejection-limited: 120 packets need >= 120 cycles.
        assert!(noc.cycle() >= 120);
    }

    #[test]
    fn credits_bound_fifo_occupancy() {
        let mut noc = MeshNoc::new(MeshConfig::new(4, 1).unwrap());
        let mut q = InjectQueues::new(16);
        for node in 0..16 {
            for _ in 0..5 {
                q.push(node, Coord::new(3, 3), 0, 0);
            }
        }
        let mut dels = Vec::new();
        for _ in 0..5000 {
            noc.step(&mut q, &mut dels);
            for fifos in &noc.fifos {
                for f in fifos {
                    assert!(f.len() <= 1, "depth-1 FIFO overflow");
                }
            }
            if q.is_empty() && noc.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(dels.len(), 80);
    }

    #[test]
    fn adversarial_full_random_load_drains() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        let mut noc = MeshNoc::new(MeshConfig::new(8, 4).unwrap());
        let mut q = InjectQueues::new(64);
        let mut count = 0;
        for node in 0..64usize {
            for _ in 0..30 {
                let dst = Coord::new(rng.gen_range(0..8), rng.gen_range(0..8));
                if dst.to_node_id(8) != node {
                    q.push(node, dst, 0, 0);
                    count += 1;
                }
            }
        }
        let dels = drain(&mut noc, &mut q, 100_000);
        assert_eq!(dels.len(), count, "deadlock or loss in buffered mesh");
    }

    #[test]
    fn trace_events_cover_the_packet_lifetime() {
        use fasttrack_core::trace::VecSink;
        let mut noc = MeshNoc::new(MeshConfig::new(4, 2).unwrap());
        let mut q = InjectQueues::new(16);
        q.push(0, Coord::new(3, 2), 0, 0);
        q.push(0, Coord::new(1, 0), 0, 0); // queued behind the first: stalls
        let mut sink = VecSink::new();
        let mut dels = Vec::new();
        for _ in 0..100 {
            noc.step_with_sink(&mut q, &mut dels, &mut sink);
            if q.is_empty() && noc.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(dels.len(), 2);
        assert_eq!(sink.of_kind("inject").len(), 2);
        assert_eq!(sink.of_kind("eject").len(), 2);
        // Each FIFO move is a decision: packet 1 rides its first link on
        // injection, then 4 link moves + the ejection move; packet 2
        // covers its single hop on injection, then ejects (4 + 1 + 1).
        let routes = sink.of_kind("route");
        assert_eq!(routes.len(), 6);
        let exits = routes
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SimEvent::RouteDecision {
                        out: OutPort::Exit,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(exits, 2);
        // Buffered routers never deflect.
        assert!(sink.of_kind("deflect").is_empty());
        for e in routes {
            if let SimEvent::RouteDecision { in_port, .. } = e {
                assert!(in_port.is_none(), "mesh FIFOs have no torus port identity");
            }
        }
    }

    #[test]
    fn depth_one_credits_stall_injection() {
        use fasttrack_core::trace::VecSink;
        // Depth-1 FIFOs: the second packet cannot inject until the first
        // vacates the downstream buffer and the credit returns.
        let mut noc = MeshNoc::new(MeshConfig::new(4, 1).unwrap());
        let mut q = InjectQueues::new(16);
        q.push(0, Coord::new(2, 0), 0, 0);
        q.push(0, Coord::new(2, 0), 0, 0);
        let mut sink = VecSink::new();
        let mut dels = Vec::new();
        for _ in 0..100 {
            noc.step_with_sink(&mut q, &mut dels, &mut sink);
            if q.is_empty() && noc.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(dels.len(), 2);
        let stalls = sink.of_kind("stall");
        assert!(
            !stalls.is_empty(),
            "credit exhaustion must surface as a stall"
        );
        for e in stalls {
            assert!(matches!(e, SimEvent::QueueStall { node: 0, .. }));
        }
    }

    #[test]
    fn latency_is_low_and_deterministic_at_low_load() {
        let mut noc = MeshNoc::new(MeshConfig::new(8, 4).unwrap());
        let mut q = InjectQueues::new(64);
        q.push(0, Coord::new(4, 4), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        // No contention: latency = hops + inject + eject, no deflections
        // ever (buffered routers hold, never misroute).
        assert_eq!(dels[0].packet.short_hops, 8);
        assert_eq!(dels[0].packet.deflections, 0);
    }
}
