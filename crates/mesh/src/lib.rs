//! # fasttrack-mesh
//!
//! A buffered, credit-flow-controlled 2-D mesh NoC — the "buffered
//! low-radix router" class (CONNECT, Split-Merge, OpenSMART) that the
//! FastTrack paper compares against in Table I and Figure 1.
//!
//! Five-port routers with per-input FIFOs, XY dimension-ordered routing,
//! round-robin output arbitration, and credit-based backpressure.
//! Packets are single-flit (matching the Hoplite-family comparison).
//! Buffered routers never deflect: losers wait. On an FPGA this costs
//! ~20× the LUTs of a Hoplite switch and halves the clock (Table I) —
//! which is exactly the trade-off the figure-1 bench quantifies by
//! simulation.
//!
//! ```
//! use fasttrack_core::geom::Coord;
//! use fasttrack_core::queue::InjectQueues;
//! use fasttrack_mesh::{MeshConfig, MeshNoc};
//!
//! let mut noc = MeshNoc::new(MeshConfig::new(4, 4)?);
//! let mut queues = InjectQueues::new(16);
//! queues.push(0, Coord::new(3, 3), 0, 0);
//! let mut deliveries = Vec::new();
//! while noc.in_flight() > 0 || !queues.is_empty() {
//!     noc.step(&mut queues, &mut deliveries);
//! }
//! assert_eq!(deliveries.len(), 1);
//! assert_eq!(deliveries[0].packet.short_hops, 6); // Manhattan distance
//! # Ok::<(), fasttrack_mesh::MeshConfigError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod noc;
pub mod router;
pub mod sim;
pub mod topology;

pub use config::{MeshConfig, MeshConfigError};
pub use noc::MeshNoc;
pub use router::{mesh_distance, xy_route, Dir};
pub use sim::MeshBackend;
#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
pub use sim::{simulate_mesh, simulate_mesh_traced};
pub use topology::MeshTopology;
