//! Driver glue for the buffered mesh: a [`SessionBackend`] so
//! `fasttrack_core`'s [`SimSession`] (and its shared drive loop) runs
//! the mesh exactly like the torus engines, producing the same
//! [`SimReport`] so results compose in one table.

use fasttrack_core::fault::{FaultError, FaultPlan};
use fasttrack_core::packet::Delivery;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::{SessionBackend, SimEngine};
#[cfg(feature = "legacy-api")]
use fasttrack_core::sim::{SimOptions, SimReport, SimSession, TrafficSource};
use fasttrack_core::stats::SimStats;
use fasttrack_core::topology::{MonitorShape, Topology};
use fasttrack_core::trace::EventSink;
#[cfg(feature = "legacy-api")]
use fasttrack_core::trace::NullSink;

use crate::config::MeshConfig;
use crate::noc::MeshNoc;
use crate::topology::MeshTopology;

impl SimEngine for MeshNoc {
    fn num_nodes(&self) -> usize {
        self.config().num_nodes()
    }

    fn report_name(&self) -> String {
        self.config().name()
    }

    fn step_cycle<S: EventSink>(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        sink: &mut S,
    ) {
        self.step_with_sink(queues, deliveries, sink);
    }

    fn in_flight(&self) -> usize {
        MeshNoc::in_flight(self)
    }

    fn reset_stats(&mut self) {
        MeshNoc::reset_stats(self);
    }

    fn only_failed_injectors_pending(&self, queues: &InjectQueues) -> bool {
        MeshNoc::only_failed_injectors_pending(self, queues)
    }

    fn stats_snapshot(&self) -> SimStats {
        self.stats().clone()
    }

    fn reset(&mut self) {
        MeshNoc::reset(self);
    }
}

/// [`SessionBackend`] for the buffered mesh:
/// `SimSession::with_backend(MeshBackend::new(&cfg))` composes sinks,
/// monitors, and (the mesh-supported subset of) fault plans exactly like
/// the torus sessions.
#[derive(Debug, Clone, Copy)]
pub struct MeshBackend {
    cfg: MeshConfig,
}

impl MeshBackend {
    /// A backend building [`MeshNoc`]s from `cfg`.
    pub fn new(cfg: &MeshConfig) -> Self {
        MeshBackend { cfg: *cfg }
    }
}

impl SessionBackend for MeshBackend {
    type Engine = MeshNoc;

    fn build(&self, faults: Option<&FaultPlan>) -> Result<MeshNoc, FaultError> {
        match faults {
            Some(plan) => MeshNoc::with_faults(self.cfg, plan),
            None => Ok(MeshNoc::new(self.cfg)),
        }
    }

    fn monitor_shape(&self) -> MonitorShape {
        MeshTopology::new(self.cfg).monitor_shape()
    }
}

/// Runs `source` on a buffered mesh built from `cfg`, producing the same
/// [`SimReport`] the torus simulators emit so results compose in one
/// table.
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession::with_backend(MeshBackend::new(cfg))` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_mesh<S: TrafficSource>(
    cfg: &MeshConfig,
    source: &mut S,
    opts: SimOptions,
) -> SimReport {
    #[allow(deprecated)]
    simulate_mesh_traced(cfg, source, opts, &mut NullSink)
}

/// [`simulate_mesh`] with an [`EventSink`] observing the run (same
/// driver markers as the torus sessions).
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession::with_backend(..)` with `.with_sink(sink)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_mesh_traced<S: TrafficSource, K: EventSink>(
    cfg: &MeshConfig,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    SimSession::with_backend(MeshBackend::new(cfg))
        .options(opts)
        .with_sink(sink)
        .run(source)
        .expect("no fault plan attached")
        .report
}

/// [`simulate_mesh`] with a [`FaultPlan`] injected (the mesh-supported
/// subset — see [`MeshNoc::with_faults`]). An empty plan reproduces
/// [`simulate_mesh`] bit-for-bit.
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession::with_backend(..)` with `.with_faults(plan)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_mesh_faulted<S: TrafficSource>(
    cfg: &MeshConfig,
    plan: &FaultPlan,
    source: &mut S,
    opts: SimOptions,
) -> Result<SimReport, FaultError> {
    SimSession::with_backend(MeshBackend::new(cfg))
        .options(opts)
        .with_faults(plan)
        .run(source)
        .map(|o| o.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(not(feature = "legacy-api"))]
    use fasttrack_core::sim::{SimReport, SimSession, TrafficSource};

    use fasttrack_core::geom::Coord;

    struct Batch {
        items: Vec<(usize, Coord)>,
        pushed: bool,
    }

    impl TrafficSource for Batch {
        fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
            if !self.pushed {
                for &(s, d) in &self.items {
                    queues.push(s, d, cycle, 0);
                }
                self.pushed = true;
            }
        }
        fn exhausted(&self) -> bool {
            self.pushed
        }
    }

    fn run_mesh(cfg: &MeshConfig, src: &mut impl TrafficSource) -> SimReport {
        SimSession::with_backend(MeshBackend::new(cfg))
            .run(src)
            .expect("no fault plan attached")
            .report
    }

    #[test]
    fn report_fields_populated() {
        let cfg = MeshConfig::new(4, 4).unwrap();
        let mut src = Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        let report = run_mesh(&cfg, &mut src);
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 15);
        assert_eq!(report.nodes, 16);
        assert!(report.config_name.contains("Mesh"));
        assert!(report.avg_latency() > 0.0);
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    fn deprecated_shim_matches_session() {
        let cfg = MeshConfig::new(4, 4).unwrap();
        let mk = || Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        #[allow(deprecated)]
        let legacy = simulate_mesh(&cfg, &mut mk(), SimOptions::default());
        let session = run_mesh(&cfg, &mut mk());
        assert_eq!(legacy, session);
    }

    #[test]
    fn batched_runs_reset_cleanly() {
        let cfg = MeshConfig::new(4, 4).unwrap();
        let mk = |seed: u64| Batch {
            items: (0..16)
                .map(|i| (i, Coord::from_node_id((i + 1 + seed as usize % 5) % 16, 4)))
                .collect(),
            pushed: false,
        };
        let batch = SimSession::with_backend(MeshBackend::new(&cfg))
            .run_batch(&[0, 3, 7], mk)
            .unwrap();
        for (outcome, &seed) in batch.iter().zip(&[0u64, 3, 7]) {
            let solo = run_mesh(&cfg, &mut mk(seed));
            assert_eq!(
                outcome.report, solo,
                "mesh reset must be exact (seed {seed})"
            );
        }
    }

    #[test]
    fn mesh_has_no_deflection_tax_at_low_load() {
        // At 10% injection the buffered mesh delivers offered load with
        // short, tight latencies — the "buffered routers are fine at low
        // load" half of the paper's Figure 1 trade-off.
        use fasttrack_core::config::NocConfig;
        struct Trickle {
            left: u32,
        }
        impl TrafficSource for Trickle {
            fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
                if self.left > 0 && cycle.is_multiple_of(10) {
                    let node = (cycle / 10) as usize % 16;
                    queues.push(node, Coord::new(3, 3), cycle, 0);
                    self.left -= 1;
                }
            }
            fn exhausted(&self) -> bool {
                self.left == 0
            }
        }
        let mesh = run_mesh(&MeshConfig::new(4, 4).unwrap(), &mut Trickle { left: 50 });
        let torus = SimSession::new(&NocConfig::hoplite(4).unwrap())
            .run(&mut Trickle { left: 50 })
            .unwrap()
            .report;
        assert!(!mesh.truncated && !torus.truncated);
        assert_eq!(mesh.stats.delivered, 50);
        // Mesh minimal paths are at most as long as unidirectional-torus
        // paths, so mean latency is no worse at trickle load.
        assert!(mesh.avg_latency() <= torus.avg_latency() + 2.0);
    }
}
