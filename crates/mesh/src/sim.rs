//! Driver for the buffered mesh, mirroring `fasttrack_core::sim`.

use fasttrack_core::fault::{FaultError, FaultPlan};
use fasttrack_core::packet::Delivery;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::sim::{SimOptions, SimReport, TrafficSource};
use fasttrack_core::trace::{EventSink, NullSink, SimEvent};

use crate::config::MeshConfig;
use crate::noc::MeshNoc;

/// Runs `source` on a buffered mesh built from `cfg`, producing the same
/// [`SimReport`] the torus simulators emit so results compose in one
/// table.
pub fn simulate_mesh<S: TrafficSource>(
    cfg: &MeshConfig,
    source: &mut S,
    opts: SimOptions,
) -> SimReport {
    simulate_mesh_traced(cfg, source, opts, &mut NullSink)
}

/// [`simulate_mesh`] with an [`EventSink`] observing the run (same
/// driver markers as `fasttrack_core::sim::simulate_traced`).
pub fn simulate_mesh_traced<S: TrafficSource, K: EventSink>(
    cfg: &MeshConfig,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    drive_mesh(MeshNoc::new(*cfg), cfg, source, opts, sink)
}

/// [`simulate_mesh`] with a [`FaultPlan`] injected (the mesh-supported
/// subset — see [`MeshNoc::with_faults`]). An empty plan reproduces
/// [`simulate_mesh`] bit-for-bit.
pub fn simulate_mesh_faulted<S: TrafficSource>(
    cfg: &MeshConfig,
    plan: &FaultPlan,
    source: &mut S,
    opts: SimOptions,
) -> Result<SimReport, FaultError> {
    let noc = MeshNoc::with_faults(*cfg, plan)?;
    Ok(drive_mesh(noc, cfg, source, opts, &mut NullSink))
}

fn drive_mesh<S: TrafficSource, K: EventSink>(
    mut noc: MeshNoc,
    cfg: &MeshConfig,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    let mut queues = InjectQueues::new(cfg.num_nodes());
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut measured_from = 0u64;
    let mut cycle = 0u64;
    let mut truncated = true;

    while cycle < opts.max_cycles {
        if cycle == opts.warmup_cycles && cycle != 0 {
            noc.reset_stats();
            measured_from = cycle;
            if K::ENABLED {
                sink.emit(&SimEvent::WarmupReset { cycle });
            }
        }
        source.pump(cycle, &mut queues);
        deliveries.clear();
        noc.step_with_sink(&mut queues, &mut deliveries, sink);
        for d in &deliveries {
            source.on_delivery(d);
        }
        cycle += 1;
        if source.exhausted()
            && noc.in_flight() == 0
            && (queues.is_empty() || noc.only_failed_injectors_pending(&queues))
        {
            truncated = false;
            break;
        }
    }
    if truncated && K::ENABLED {
        sink.emit(&SimEvent::Truncated { cycle });
    }

    let mut stats = noc.stats().clone();
    stats.enqueued = queues.total_enqueued();
    SimReport {
        config_name: cfg.name(),
        nodes: cfg.num_nodes(),
        cycles: cycle - measured_from,
        stats,
        truncated,
        in_flight: noc.in_flight(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::geom::Coord;

    struct Batch {
        items: Vec<(usize, Coord)>,
        pushed: bool,
    }

    impl TrafficSource for Batch {
        fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
            if !self.pushed {
                for &(s, d) in &self.items {
                    queues.push(s, d, cycle, 0);
                }
                self.pushed = true;
            }
        }
        fn exhausted(&self) -> bool {
            self.pushed
        }
    }

    #[test]
    fn report_fields_populated() {
        let cfg = MeshConfig::new(4, 4).unwrap();
        let mut src = Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        let report = simulate_mesh(&cfg, &mut src, SimOptions::default());
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 15);
        assert_eq!(report.nodes, 16);
        assert!(report.config_name.contains("Mesh"));
        assert!(report.avg_latency() > 0.0);
    }

    #[test]
    fn mesh_has_no_deflection_tax_at_low_load() {
        // At 10% injection the buffered mesh delivers offered load with
        // short, tight latencies — the "buffered routers are fine at low
        // load" half of the paper's Figure 1 trade-off.
        use fasttrack_core::config::NocConfig;
        use fasttrack_core::sim::simulate;
        struct Trickle {
            left: u32,
        }
        impl TrafficSource for Trickle {
            fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
                if self.left > 0 && cycle.is_multiple_of(10) {
                    let node = (cycle / 10) as usize % 16;
                    queues.push(node, Coord::new(3, 3), cycle, 0);
                    self.left -= 1;
                }
            }
            fn exhausted(&self) -> bool {
                self.left == 0
            }
        }
        let mesh = simulate_mesh(
            &MeshConfig::new(4, 4).unwrap(),
            &mut Trickle { left: 50 },
            SimOptions::default(),
        );
        let torus = simulate(
            &NocConfig::hoplite(4).unwrap(),
            &mut Trickle { left: 50 },
            SimOptions::default(),
        );
        assert!(!mesh.truncated && !torus.truncated);
        assert_eq!(mesh.stats.delivered, 50);
        // Mesh minimal paths are at most as long as unidirectional-torus
        // paths, so mean latency is no worse at trickle load.
        assert!(mesh.avg_latency() <= torus.avg_latency() + 2.0);
    }
}
