//! Buffered-mesh configuration.

use std::fmt;

/// Errors raised when validating a [`MeshConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshConfigError {
    /// The mesh needs at least 2×2 routers.
    SystemTooSmall {
        /// Offending side length.
        n: u16,
    },
    /// Input buffers need at least one slot.
    ZeroBufferDepth,
}

impl fmt::Display for MeshConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshConfigError::SystemTooSmall { n } => {
                write!(f, "mesh side {n} too small, need n >= 2")
            }
            MeshConfigError::ZeroBufferDepth => f.write_str("buffer depth must be at least 1"),
        }
    }
}

impl std::error::Error for MeshConfigError {}

/// A buffered 2-D mesh NoC: five-port routers (the paper's "buffered
/// low-radix" class — CONNECT, Split-Merge, OpenSMART), XY
/// dimension-ordered routing, input FIFOs with credit-based flow
/// control, round-robin output arbitration, single-flit packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    n: u16,
    buffer_depth: usize,
}

impl MeshConfig {
    /// Creates an `n × n` mesh with the given input-FIFO depth.
    ///
    /// # Errors
    ///
    /// Returns a [`MeshConfigError`] when `n < 2` or `buffer_depth == 0`.
    pub fn new(n: u16, buffer_depth: usize) -> Result<Self, MeshConfigError> {
        if n < 2 {
            return Err(MeshConfigError::SystemTooSmall { n });
        }
        if buffer_depth == 0 {
            return Err(MeshConfigError::ZeroBufferDepth);
        }
        Ok(MeshConfig { n, buffer_depth })
    }

    /// Mesh side length.
    pub fn n(&self) -> u16 {
        self.n
    }

    /// Total routers/PEs.
    pub fn num_nodes(&self) -> usize {
        self.n as usize * self.n as usize
    }

    /// Input FIFO depth per port.
    pub fn buffer_depth(&self) -> usize {
        self.buffer_depth
    }

    /// Display name, e.g. `Mesh 8x8 (4-deep)`.
    pub fn name(&self) -> String {
        format!("Mesh {0}x{0} ({1}-deep)", self.n, self.buffer_depth)
    }
}

impl fmt::Display for MeshConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = MeshConfig::new(8, 4).unwrap();
        assert_eq!(c.n(), 8);
        assert_eq!(c.num_nodes(), 64);
        assert_eq!(c.buffer_depth(), 4);
        assert_eq!(c.name(), "Mesh 8x8 (4-deep)");
    }

    #[test]
    fn validation() {
        assert_eq!(
            MeshConfig::new(1, 4).unwrap_err(),
            MeshConfigError::SystemTooSmall { n: 1 }
        );
        assert_eq!(
            MeshConfig::new(4, 0).unwrap_err(),
            MeshConfigError::ZeroBufferDepth
        );
        assert!(MeshConfigError::ZeroBufferDepth
            .to_string()
            .contains("depth"));
    }
}
