//! Textual specifications for NoCs and patterns, e.g. `ft:8:2:1`,
//! `hoplite:16`, `random`, `local:2` — the CLI's configuration surface.

use std::fmt;

use fasttrack_core::config::{ConfigError, FtPolicy, NocConfig};
use fasttrack_core::topology::{TopologySpec, TopologySpecError};
use fasttrack_traffic::pattern::Pattern;

/// Errors raised while parsing a spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec's leading keyword is unknown.
    UnknownKind(String),
    /// Wrong number of `:`-separated fields for the kind.
    BadArity {
        /// The spec kind.
        kind: &'static str,
        /// Expected field count (after the kind).
        expected: usize,
        /// Found field count.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber(String),
    /// An `ft:`/`ftlite:` spec violates the paper's structural
    /// constraints on `FT(N², D, R)`.
    BadFtParams {
        /// Torus side length `N`.
        n: u16,
        /// Express-link span `D`.
        d: u16,
        /// Depopulation factor `R`.
        r: u16,
        /// Which constraint failed, human-readable.
        why: &'static str,
    },
    /// The parsed configuration failed validation.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownKind(k) => write!(f, "unknown spec kind {k:?}"),
            SpecError::BadArity {
                kind,
                expected,
                found,
            } => {
                write!(f, "{kind} spec needs {expected} field(s), found {found}")
            }
            SpecError::BadNumber(s) => write!(f, "invalid number {s:?}"),
            SpecError::BadFtParams { n, d, r, why } => write!(
                f,
                "invalid FastTrack spec FT({sq},{d},{r}) on a {n}x{n} torus: {why} \
                 (constraints: 1 <= D <= N/2, 1 <= R <= D, D divisible by R)",
                sq = u32::from(*n) * u32::from(*n)
            ),
            SpecError::Invalid(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ConfigError> for SpecError {
    fn from(e: ConfigError) -> Self {
        SpecError::Invalid(e.to_string())
    }
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, SpecError> {
    s.parse().map_err(|_| SpecError::BadNumber(s.to_string()))
}

/// Checks the paper's structural constraints on `FT(N², D, R)` before
/// the configuration is built: `1 <= D <= N/2` (an express link must
/// not wrap past the opposite side of the torus), `1 <= R <= D`, and
/// `D % R == 0` (depopulated express routers must tile the express
/// span).
///
/// # Errors
///
/// Returns [`SpecError::BadFtParams`] naming the violated constraint.
pub fn validate_ft_params(n: u16, d: u16, r: u16) -> Result<(), SpecError> {
    let why = if d < 1 {
        Some("D must be at least 1")
    } else if d > n / 2 {
        Some("D exceeds N/2, so express links would wrap past the far side")
    } else if r < 1 {
        Some("R must be at least 1")
    } else if r > d {
        Some("R exceeds D, so some express spans would have no express router")
    } else if !d.is_multiple_of(r) {
        Some("R must divide D for express routers to tile the express span")
    } else {
        None
    };
    match why {
        Some(why) => Err(SpecError::BadFtParams { n, d, r, why }),
        None => Ok(()),
    }
}

/// Parses a NoC spec:
///
/// * `hoplite:<n>` — baseline Hoplite on an `n × n` torus
/// * `ft:<n>:<d>:<r>` — FastTrack (Full policy)
/// * `ftlite:<n>:<d>:<r>` — FastTrack (Inject policy)
///
/// # Errors
///
/// Returns a [`SpecError`] describing the malformed field.
pub fn parse_noc(spec: &str) -> Result<NocConfig, SpecError> {
    let fields: Vec<&str> = spec.split(':').collect();
    match fields[0] {
        "hoplite" => {
            if fields.len() != 2 {
                return Err(SpecError::BadArity {
                    kind: "hoplite",
                    expected: 1,
                    found: fields.len() - 1,
                });
            }
            Ok(NocConfig::hoplite(num(fields[1])?)?)
        }
        "ft" | "ftlite" => {
            if fields.len() != 4 {
                return Err(SpecError::BadArity {
                    kind: "ft",
                    expected: 3,
                    found: fields.len() - 1,
                });
            }
            let policy = if fields[0] == "ft" {
                FtPolicy::Full
            } else {
                FtPolicy::Inject
            };
            let (n, d, r) = (num(fields[1])?, num(fields[2])?, num(fields[3])?);
            validate_ft_params(n, d, r)?;
            Ok(NocConfig::fasttrack(n, d, r, policy)?)
        }
        other => Err(SpecError::UnknownKind(other.to_string())),
    }
}

fn topology_spec_error(e: TopologySpecError) -> SpecError {
    match e {
        TopologySpecError::UnknownKind(k) => SpecError::UnknownKind(k),
        TopologySpecError::BadNumber(s) => SpecError::BadNumber(s),
        other => SpecError::Invalid(other.to_string()),
    }
}

/// Parses a topology spec covering every backend the CLI can drive:
///
/// * `hoplite:<n>` / `ft:<n>:<d>:<r>` / `ftlite:<n>:<d>:<r>` — torus
///   backends, identical to [`parse_noc`] (including the structural
///   `FT(N², D, R)` checks)
/// * `shg:<q>:<delta>` — Sparse Hamming Graph on a `q × q` grid with
///   `delta` strides per dimension
/// * `mesh:<n>:<depth>` — buffered XY mesh with `depth`-deep FIFOs
///
/// # Errors
///
/// Returns a [`SpecError`] describing the malformed field.
pub fn parse_topology(spec: &str) -> Result<TopologySpec, SpecError> {
    match spec.split(':').next().unwrap_or("") {
        "hoplite" | "ft" | "ftlite" => Ok(TopologySpec::Torus(parse_noc(spec)?)),
        "shg" | "mesh" => spec.parse::<TopologySpec>().map_err(topology_spec_error),
        other => Err(SpecError::UnknownKind(other.to_string())),
    }
}

/// Parses a pattern spec: `random`, `bitcompl`, `transpose`, `tornado`,
/// `shuffle`, `bitrev`, `local:<radius>`, or `hotspot:<percent>`.
///
/// # Errors
///
/// Returns a [`SpecError`] for unknown names or malformed parameters.
pub fn parse_pattern(spec: &str) -> Result<Pattern, SpecError> {
    let fields: Vec<&str> = spec.split(':').collect();
    match fields[0] {
        "random" => Ok(Pattern::Random),
        "bitcompl" => Ok(Pattern::BitComplement),
        "transpose" => Ok(Pattern::Transpose),
        "tornado" => Ok(Pattern::Tornado),
        "shuffle" => Ok(Pattern::Shuffle),
        "bitrev" => Ok(Pattern::BitReverse),
        "local" => {
            if fields.len() != 2 {
                return Err(SpecError::BadArity {
                    kind: "local",
                    expected: 1,
                    found: fields.len() - 1,
                });
            }
            Ok(Pattern::Local {
                radius: num(fields[1])?,
            })
        }
        "hotspot" => {
            if fields.len() != 2 {
                return Err(SpecError::BadArity {
                    kind: "hotspot",
                    expected: 1,
                    found: fields.len() - 1,
                });
            }
            let percent: u8 = num(fields[1])?;
            if !(1..=100).contains(&percent) {
                return Err(SpecError::Invalid(format!(
                    "hotspot percent {percent} out of 1..=100"
                )));
            }
            Ok(Pattern::Hotspot { percent })
        }
        other => Err(SpecError::UnknownKind(other.to_string())),
    }
}

/// A parsed `--grid` specification: the cross product of topologies,
/// patterns, and injection rates a sweep expands into.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Topology specifications (in spec order).
    pub nocs: Vec<TopologySpec>,
    /// Traffic patterns (in spec order).
    pub patterns: Vec<Pattern>,
    /// Injection rates (in spec order).
    pub rates: Vec<f64>,
}

/// Parses a sweep grid spec of the form
/// `<noc>[,<noc>...];<pattern>[,<pattern>...];<rate>[,<rate>...]`,
/// e.g. `hoplite:8,ft:8:2:1;random,transpose;0.1,0.5,1.0`.
///
/// # Errors
///
/// Returns a [`SpecError`] for a missing section, an empty list, a
/// malformed element, or an out-of-range rate.
pub fn parse_grid(spec: &str) -> Result<GridSpec, SpecError> {
    let sections: Vec<&str> = spec.split(';').collect();
    if sections.len() != 3 {
        return Err(SpecError::BadArity {
            kind: "grid",
            expected: 3,
            found: sections.len(),
        });
    }
    let list = |s: &str| -> Vec<String> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(String::from)
            .collect()
    };
    let nocs = list(sections[0])
        .iter()
        .map(|s| parse_topology(s))
        .collect::<Result<Vec<_>, _>>()?;
    let patterns = list(sections[1])
        .iter()
        .map(|s| parse_pattern(s))
        .collect::<Result<Vec<_>, _>>()?;
    let rates = list(sections[2])
        .iter()
        .map(|s| num::<f64>(s))
        .collect::<Result<Vec<_>, _>>()?;
    if nocs.is_empty() || patterns.is_empty() || rates.is_empty() {
        return Err(SpecError::Invalid(
            "grid needs at least one NoC, pattern, and rate".into(),
        ));
    }
    for &rate in &rates {
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(SpecError::Invalid(format!(
                "injection rate {rate} out of (0,1]"
            )));
        }
    }
    Ok(GridSpec {
        nocs,
        patterns,
        rates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_noc_specs() {
        assert_eq!(parse_noc("hoplite:8").unwrap().name(), "Hoplite 8x8");
        assert_eq!(parse_noc("ft:8:2:1").unwrap().name(), "FT(64,2,1)");
        let lite = parse_noc("ftlite:8:2:2").unwrap();
        assert_eq!(lite.ft_policy(), Some(FtPolicy::Inject));
    }

    #[test]
    fn rejects_bad_noc_specs() {
        assert!(matches!(
            parse_noc("mesh:4"),
            Err(SpecError::UnknownKind(_))
        ));
        assert!(matches!(
            parse_noc("hoplite"),
            Err(SpecError::BadArity { .. })
        ));
        assert!(matches!(
            parse_noc("ft:8:2"),
            Err(SpecError::BadArity { .. })
        ));
        assert!(matches!(
            parse_noc("ft:8:x:1"),
            Err(SpecError::BadNumber(_))
        ));
    }

    #[test]
    fn rejects_ft_constraint_violations() {
        // D > N/2: express links would wrap past the far side.
        let e = parse_noc("ft:8:5:1").unwrap_err();
        assert!(
            matches!(
                e,
                SpecError::BadFtParams {
                    n: 8,
                    d: 5,
                    r: 1,
                    ..
                }
            ),
            "{e}"
        );
        assert!(e.to_string().contains("1 <= D <= N/2"), "{e}");
        assert!(e.to_string().contains("FT(64,5,1)"), "{e}");
        // D == 0 and R == 0.
        assert!(matches!(
            parse_noc("ft:8:0:1"),
            Err(SpecError::BadFtParams { .. })
        ));
        assert!(matches!(
            parse_noc("ft:8:2:0"),
            Err(SpecError::BadFtParams { .. })
        ));
        // R > D: some express spans would have no express router.
        assert!(matches!(
            parse_noc("ft:8:2:3"),
            Err(SpecError::BadFtParams { .. })
        ));
        // R does not divide D.
        assert!(matches!(
            parse_noc("ft:8:4:3"),
            Err(SpecError::BadFtParams { .. })
        ));
        // The ftlite path shares the check.
        assert!(matches!(
            parse_noc("ftlite:8:5:1"),
            Err(SpecError::BadFtParams { .. })
        ));
        // Boundary cases stay accepted.
        assert!(parse_noc("ft:8:4:4").is_ok(), "D == N/2, R == D");
        assert!(parse_noc("ft:8:1:1").is_ok(), "D == 1");
        assert!(validate_ft_params(8, 4, 2).is_ok());
    }

    #[test]
    fn parses_patterns() {
        assert_eq!(parse_pattern("random").unwrap(), Pattern::Random);
        assert_eq!(
            parse_pattern("local:2").unwrap(),
            Pattern::Local { radius: 2 }
        );
        assert_eq!(parse_pattern("transpose").unwrap(), Pattern::Transpose);
        assert_eq!(parse_pattern("shuffle").unwrap(), Pattern::Shuffle);
        assert_eq!(parse_pattern("bitrev").unwrap(), Pattern::BitReverse);
        assert_eq!(
            parse_pattern("hotspot:60").unwrap(),
            Pattern::Hotspot { percent: 60 }
        );
        assert!(matches!(
            parse_pattern("hotspot"),
            Err(SpecError::BadArity { .. })
        ));
        assert!(matches!(
            parse_pattern("hotspot:0"),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            parse_pattern("hotspot:101"),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            parse_pattern("weird"),
            Err(SpecError::UnknownKind(_))
        ));
        assert!(matches!(
            parse_pattern("local"),
            Err(SpecError::BadArity { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = parse_noc("ft:8:2").unwrap_err();
        assert!(e.to_string().contains("3 field"));
    }

    #[test]
    fn parses_grid_specs() {
        let g = parse_grid("hoplite:8,ft:8:2:1;random,local:2;0.1,0.5,1.0").unwrap();
        assert_eq!(g.nocs.len(), 2);
        assert_eq!(g.nocs[1].display_name(), "FT(64,2,1)");
        assert_eq!(
            g.patterns,
            vec![Pattern::Random, Pattern::Local { radius: 2 }]
        );
        assert_eq!(g.rates, vec![0.1, 0.5, 1.0]);
    }

    #[test]
    fn parses_topology_specs() {
        assert!(matches!(
            parse_topology("ft:8:2:1").unwrap(),
            TopologySpec::Torus(_)
        ));
        assert!(matches!(
            parse_topology("shg:8:2").unwrap(),
            TopologySpec::Shg(_)
        ));
        assert!(matches!(
            parse_topology("mesh:8:4").unwrap(),
            TopologySpec::Mesh { n: 8, depth: 4 }
        ));
        // The torus kinds keep their structural FT checks.
        assert!(matches!(
            parse_topology("ft:8:5:1"),
            Err(SpecError::BadFtParams { .. })
        ));
        assert!(matches!(
            parse_topology("shg:8"),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            parse_topology("mesh:8:x"),
            Err(SpecError::BadNumber(_))
        ));
        assert!(matches!(
            parse_topology("ring:8"),
            Err(SpecError::UnknownKind(_))
        ));
    }

    #[test]
    fn grid_accepts_all_topology_kinds() {
        let g = parse_grid("hoplite:8,shg:8:2,mesh:8:4;random;0.5").unwrap();
        assert_eq!(g.nocs.len(), 3);
        assert!(matches!(g.nocs[1], TopologySpec::Shg(_)));
        assert!(matches!(g.nocs[2], TopologySpec::Mesh { .. }));
    }

    #[test]
    fn rejects_bad_grid_specs() {
        assert!(matches!(
            parse_grid("hoplite:8;random"),
            Err(SpecError::BadArity { .. })
        ));
        assert!(matches!(
            parse_grid(";random;0.5"),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            parse_grid("hoplite:8;random;2.0"),
            Err(SpecError::Invalid(_))
        ));
        assert!(matches!(
            parse_grid("ring:8;random;0.5"),
            Err(SpecError::UnknownKind(_))
        ));
    }
}
