//! CLI subcommand implementations. Each returns its report as a string
//! so the logic is unit-testable; `main` only prints.

use fasttrack_bench::fuzz::{fuzz, FuzzConfig};
use fasttrack_bench::journal::run_journaled;
use fasttrack_bench::runner::{
    attribution_csv, health_json, storm_json, sweep_csv, topology_of, FallibleSweepOptions,
    NocUnderTest, SloSpec, SweepGrid, INJECTION_RATES,
};
use fasttrack_bench::snapshot::{self, BenchSnapshot, SnapshotError};
use fasttrack_core::attribution::{AttributionConfig, LatencyComponent, PacketJourney};
use fasttrack_core::config::{FtPolicy, NocConfig};
use fasttrack_core::export::{epochs_to_csv, ChromeTraceSink, NdjsonSink};
use fasttrack_core::fallback::FallbackConfig;
use fasttrack_core::fault::{FaultPlan, FaultSpec, StormSpec};
use fasttrack_core::metrics::WindowedMetrics;
use fasttrack_core::monitor::{DetectorConfig, FlightRecorder, HealthMonitor, MonitorConfig};
use fasttrack_core::packet::PacketId;
use fasttrack_core::shg::ShgBackend;
use fasttrack_core::sim::{SimOptions, SimOutcome, SimReport, SimSession, TrafficSource};
use fasttrack_core::topology::{MonitorShape, TopologySpec};
use fasttrack_core::trace::{EventSink, SimEvent};
use fasttrack_fpga::device::Device;
use fasttrack_fpga::power::PowerModel;
use fasttrack_fpga::resources::noc_cost;
use fasttrack_fpga::routability::noc_frequency_mhz;
use fasttrack_mesh::{MeshBackend, MeshConfig};
use fasttrack_traffic::dataflow::{lu_dag, DataflowSource};
use fasttrack_traffic::graph::graph_source;
use fasttrack_traffic::graph_gen::rmat;
use fasttrack_traffic::matrix::circuit;
use fasttrack_traffic::multiproc::{parsec_benchmarks, parsec_trace};
use fasttrack_traffic::partition::Partition;
use fasttrack_traffic::scenario::{Expectation, RecordingSource, ScenarioHeader, ScenarioTrace};
use fasttrack_traffic::source::BernoulliSource;
use fasttrack_traffic::spmv::spmv_source;
use fasttrack_traffic::trace_io::trace_source_from_text;

use crate::args::{ArgError, Flags};
use crate::spec::{parse_grid, parse_noc, parse_pattern, parse_topology, SpecError};

/// Any CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Argument-level problem.
    Args(ArgError),
    /// Spec-level problem.
    Spec(SpecError),
    /// Subcommand unknown.
    UnknownCommand(String),
    /// I/O failure (trace file).
    Io(String),
    /// Anything else (trace parse, infeasible config...).
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Spec(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?} (try `help`)"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Other(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::Spec(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
fasttrack — FastTrack/Hoplite NoC simulator (ISCA 2018 reproduction)

USAGE:
  fasttrack simulate --noc <spec> [--pattern <p>] [--rate <r>]
                     [--packets <n>] [--seed <s>] [--channels <k>]
  fasttrack monitor  --noc <spec> [--pattern <p>] [--rate <r>]
                     [--packets <n>] [--seed <s>] [--channels <k>]
                     [--snapshot <cycles>] [--flight-recorder <K>]
                     [--max-reports <n>] [--livelock-multiple <x>]
                     [--stall-streak <n>] [--hotspot-watermark <u>]
                     [--health <path>] [--metrics <path>] [--profile]
  fasttrack sweep    (--grid <g> | --noc <spec> [--pattern <p>])
                     [--threads <t>] [--out table|csv]
                     [--packets <n>] [--seed <s>] [--health <path>]
                     [--attribution <path>] [--retries <n>]
                     [--cycle-budget <cycles>] [--resume <journal>] [--profile]
  fasttrack compare  [--topologies <t1,t2,...>] [--pattern <p>] [--rate <r>]
                     [--packets <n>] [--seed <s>] [--out <csv>]
  fasttrack faults   --noc <spec> [--pattern <p>] [--rate <r>]
                     [--packets <n>] [--seed <s>] [--fault-seed <s>]
                     [--dead-links <n>] [--transient-links <n>]
                     [--fail-stop <n>] [--stalled-injectors <n>]
                     [--down-links <n>] [--window <from:until>]
                     [--channels <k>] [--health <path>] [--profile] [--json]
  fasttrack storm    [--noc <spec> | --grid <g>] [--pattern <p>] [--rate <r>]
                     [--packets <n>] [--seed <s>] [--threads <t>] [--channels <k>]
                     [--kills <per-kcycle>] [--heal <lo:hi>] [--duration <c>]
                     [--min-delivered <frac>] [--max-p99 <cycles>]
                     [--out <path>] [--json]
  fasttrack profile  [--noc <spec>] [--pattern <p>] [--rate <r>]
                     [--packets <n>] [--seed <s>] [--out <prefix>] [--json]
  fasttrack attribute (--trace <path> | --noc <spec> [--pattern <p>]
                     [--rate <r>] [--packets <n>] [--seed <s>]
                     [--channels <k>]) [--metrics <path>] [--json]
  fasttrack explain  <packet-id> (--trace <path> | --noc <spec> ...)
                     [--flight-recorder <K>]
  fasttrack bench    snapshot [--packets <n>] [--out <path>] [--json]
  fasttrack bench    diff --baseline <path> --candidate <path> [--json]
  fasttrack bench    gate --baseline <path> [--candidate <path>]
                     [--tolerance <pct>] [--packets <n>]
  fasttrack bench    migrate --file <path>
  fasttrack cost     --noc <spec> [--width <bits>] [--channels <k>]
  fasttrack trace    --noc <spec> --file <path>
  fasttrack trace    [--topology hoplite|ft|ftlite] [--n <n>] [--d <d>] [--r <r>]
                     [--pattern <p>] [--rate <r>] [--packets <n>] [--seed <s>]
                     [--epoch <cycles>] [--flight-recorder <K>] [--out <prefix>]
  fasttrack record   --out <path> (--workload spmv|graph|dataflow|multiproc |
                     --noc <spec> [--pattern <p>] [--rate <r>] [--packets <n>])
                     [--seed <s>] [--channels <k>] [--max-cycles <c>]
                     [--fault-seed <s>] [--dead-links <n>] [--transient-links <n>]
                     [--fail-stop <n>] [--stalled-injectors <n>] [--window <from:until>]
  fasttrack replay   --file <path>
  fasttrack fuzz     [--iters <n>] [--seed <s>] [--threads <t>]
                     [--max-cycles <c>] [--out <dir>]
  fasttrack help

SPECS:
  NoC:     hoplite:<n> | ft:<n>:<d>:<r> | ftlite:<n>:<d>:<r>
           | shg:<q>:<delta> | mesh:<n>:<depth>
           (simulate/monitor/faults/cost/record drive the torus kinds;
            sweep, storm, compare, and attribute accept all five)
  Pattern: random | bitcompl | transpose | tornado | shuffle | bitrev
           | local:<radius> | hotspot:<percent>
  Grid:    <noc>[,<noc>...];<pattern>[,<pattern>...];<rate>[,<rate>...]
           (sweep runs the full cross product; per-point seeds are
            derived from --seed, so any --threads count is bit-exact)

TRACE OUTPUTS (synthetic-traffic mode):
  <prefix>.events.ndjson  one JSON object per engine event
  <prefix>.epochs.csv     per-epoch throughput/latency/deflection series
  <prefix>.chrome.json    Chrome trace-event JSON (chrome://tracing, Perfetto)
  with --flight-recorder <K>, also the last K events per router:
  <prefix>.flight.ndjson / <prefix>.flight.chrome.json

MONITOR:
  Runs one simulation with the online health monitor attached: periodic
  snapshot lines, the usual report, and a final verdict from the
  livelock / starvation / hotspot detectors. --health writes the
  summary JSON; --metrics writes a Prometheus-style text exposition.
  sweep --health writes one health summary per sweep point (the CSV
  rows are byte-identical with or without it, at any --threads).

FAULTS:
  Draws a seeded fault plan (dead express links, transient link
  drop/corruption windows, fail-stop routers, stalled injectors,
  down-then-recover links via --down-links) from --fault-seed, runs the
  healthy baseline and the faulted fabric on the same traffic, and
  reports packets dropped/rerouted, the degraded throughput ratio, the
  exact conservation check (delivered + in-flight + dropped ==
  injected), and the health verdict. --window bounds the cycles
  transient faults are drawn from. --json emits the accounting as one
  JSON object; either way the exit code is nonzero when the
  conservation invariant is violated.

STORM:
  `storm` measures availability under a seeded fault storm: express
  links die at --kills per thousand cycles and heal after a --heal
  delay, for --duration cycles. Every point runs twice — with the
  standard fallback chains (stranded express packets demote to the
  shared ring; allocation losers switch channels) and with chains off
  (today's drop behavior) — and the report shows delivered fraction,
  p99 tail latency, demotions, and the SLO verdict per point. Exit is
  nonzero when a chained point misses --min-delivered / --max-p99 or
  breaks conservation. --out writes the machine-readable SLO report;
  per-point storms derive from --seed, so any --threads count is
  bit-exact.

COMPARE:
  `compare` is the iso-resource harness: it runs identical traffic on
  every listed topology (default ft:8:2:2,shg:8:2,mesh:8:4), prices
  each with the shared first-order FPGA resource model (LUTs + FFs),
  and reports sustained throughput per thousand logic cells, relative
  to the first topology. --out writes the comparison as CSV.

PROFILE:
  `profile` runs one simulation with the engine's self-profiler: a span
  tree over the session phases (build, LUT construction, fault
  validation, drive loop) with per-phase self time, plus hot-path
  counters (cycles/sec, packets/sec, route decisions, pool-slot reuse,
  deflections). --out <prefix> writes <prefix>.chrome.json (Chrome
  trace-event format); --json emits the summary as JSON. --profile on
  monitor/faults attaches the same profiler to those runs (with a
  monitor, the fasttrack_profile_* series ride the --metrics
  exposition); sweep --profile prints per-point timing percentiles to
  stderr while the CSV stays byte-identical.

ATTRIBUTION:
  `attribute` answers \"where did the cycles go?\": it runs one
  simulation (synthetic traffic, or a recorded scenario via --trace)
  with the streaming latency-attribution layer attached and prints the
  per-component cycle accounting — source-queue wait, express-lane
  transit, shared-ring transit, deflection penalty, fault-reroute
  penalty, and the final eject cycle. Components sum exactly to every
  packet's end-to-end latency, and express + ring + exit decisions
  reconcile with the engine's route-decision counter; both verdicts are
  printed. --metrics writes the fasttrack_attrib_* cells (totals,
  per-component histograms with quantile samples, traffic-weighted
  express fraction) as a Prometheus exposition; --json emits the
  aggregate report as JSON. `explain <packet-id>` reconstructs one
  packet's journey cycle by cycle — injection, every routing decision,
  deflections, express hops, fault events, eject — with its latency
  decomposition and a flight-recorder excerpt around its final router.
  sweep --attribution <path> writes one accounting row per sweep point
  as a sidecar CSV (the sweep CSV stays byte-identical, at any
  --threads).

BENCH TRAJECTORY:
  `bench snapshot` measures the canonical sweep_scaling hot-path grid
  and writes a versioned snapshot (schema, commit, grid fingerprint,
  normalized packets/sec). `bench diff` compares two snapshots;
  `bench gate` fails (exit 1) when the candidate — a file, or a fresh
  measurement when --candidate is omitted — is more than --tolerance
  percent slower than the baseline. `bench migrate` rewrites a
  pre-versioning BENCH_hotpath.json in place as the current schema.

SCENARIO CORPUS:
  `record` captures the realized injection schedule of any run —
  workload preset or synthetic, healthy or faulted — as a versioned,
  checksummed scenario trace whose header embeds the NoC spec, fault
  plan, and realized outcome. `replay` feeds the schedule back through
  the engine byte-identically and fails (exit 1) if the outcome
  diverges from the embedded expectation. `fuzz` drives seeded random
  scenarios (topology x traffic x faults) in parallel, checks exact
  conservation and the health detectors on every run, delta-minimizes
  each failure class, and writes the minimized traces to --out as
  self-contained corpus entries; the same --seed is bit-exact at any
  --threads count.

CRASH-SAFE SWEEPS:
  sweep --resume <journal> appends every finished point to an
  append-only journal (flushed per point) and emits CSV. If the file
  already exists, recorded points are restored instead of re-run and
  the merged CSV is byte-identical to an uninterrupted run; a journal
  from a different grid is refused. --retries re-runs a panicked or
  over-budget point with a fresh derived seed; --cycle-budget fails
  points that exceed the given cycle count instead of hanging the grid.

EXAMPLES:
  fasttrack simulate --noc ft:8:2:1 --pattern random --rate 0.5
  fasttrack cost --noc ft:8:2:1 --width 256
  fasttrack sweep --noc hoplite:8 --pattern bitcompl
  fasttrack sweep --grid \"hoplite:8,ft:8:2:1;random;0.1,0.5\" --threads 8 --out csv
  fasttrack sweep --grid \"ft:8:2:2,shg:8:2,mesh:8:4;random;0.3\" --out csv
  fasttrack compare --topologies ft:8:2:2,shg:8:2,mesh:8:4 --rate 0.5 --out iso.csv
  fasttrack monitor --noc ft:8:2:2 --rate 1.0 --snapshot 500 --health health.json
  fasttrack faults --noc ft:8:2:2 --rate 0.3 --dead-links 2 --fault-seed 42
  fasttrack faults --noc ftlite:8:4:1 --rate 0.5 --dead-links 4 --json
  fasttrack storm --noc ft:8:2:2 --rate 0.3 --kills 8 --heal 200:600 --out slo.json
  fasttrack sweep --grid \"ft:8:2:1;random;0.1,0.5\" --resume run.journal
  fasttrack trace --topology ft --n 8 --d 2 --r 2 --pattern random --rate 0.2
  fasttrack profile --noc ft:8:2:2 --rate 0.5 --out prof
  fasttrack attribute --noc ft:8:2:2 --rate 1.0 --metrics attrib.prom
  fasttrack explain 42 --trace spmv.trace
  fasttrack sweep --grid \"ft:8:2:1;random;0.5\" --attribution attrib.csv
  fasttrack bench gate --baseline BENCH_hotpath.json --tolerance 10
  fasttrack record --workload spmv --out spmv.trace
  fasttrack record --noc ftlite:8:4:1 --pattern hotspot:60 --rate 0.8 --dead-links 4 --out hot.trace
  fasttrack replay --file spmv.trace
  fasttrack fuzz --iters 200 --seed 7 --threads 4 --out corpus/
";

fn render_report(report: &SimReport) -> String {
    format!(
        "{}: {} delivered in {} cycles\n  sustained rate {:.4} pkt/cyc/PE\n  \
         latency avg {:.1} / p99 {} / worst {} cycles\n  deflections {} \
         ({} short + {} express hops){}",
        report.config_name,
        report.stats.delivered,
        report.cycles,
        report.sustained_rate_per_pe(),
        report.avg_latency(),
        report
            .stats
            .total_latency
            .histogram()
            .percentile(99.0)
            .unwrap_or(0),
        report.worst_latency(),
        report.stats.ports.total_deflections(),
        report.stats.link_usage.short_hops,
        report.stats.link_usage.express_hops,
        if report.truncated {
            "\n  WARNING: truncated at max cycles"
        } else {
            ""
        },
    )
}

/// `simulate` — one run at one injection rate.
pub fn cmd_simulate(flags: &Flags) -> Result<String, CliError> {
    let cfg = parse_noc(flags.required("noc")?)?;
    let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
    let rate: f64 = flags.numeric("rate", 1.0)?;
    let packets: u64 = flags.numeric("packets", 1000)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    let channels: usize = flags.numeric("channels", 1)?;
    let mut src = BernoulliSource::new(cfg.n(), pattern, rate, packets, seed);
    let report = if channels <= 1 {
        SimSession::new(&cfg).run(&mut src).unwrap().report
    } else {
        SimSession::new(&cfg)
            .channels(channels)
            .run(&mut src)
            .unwrap()
            .report
    };
    Ok(render_report(&report))
}

/// `monitor` — one run with the online health monitor attached.
///
/// Prints a snapshot line every `--snapshot` cycles, the usual report,
/// and the final health verdict (livelock / starvation / hotspot
/// detectors, each report carrying a flight-recorder excerpt of the
/// last `--flight-recorder` events at the triggering router).
/// `--health <path>` writes the summary JSON, `--metrics <path>` the
/// Prometheus-style exposition of the live counters.
pub fn cmd_monitor(flags: &Flags) -> Result<String, CliError> {
    let cfg = parse_noc(flags.required("noc")?)?;
    let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
    let rate: f64 = flags.numeric("rate", 1.0)?;
    let packets: u64 = flags.numeric("packets", 1000)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    let channels: usize = flags.numeric("channels", 1)?;
    let snapshot: u64 = flags.numeric("snapshot", 1000)?;
    let flight: usize = flags.numeric("flight-recorder", 32)?;
    if snapshot == 0 {
        return Err(CliError::Other("--snapshot must be positive".into()));
    }
    if flight == 0 {
        return Err(CliError::Other("--flight-recorder must be positive".into()));
    }
    let defaults = DetectorConfig::default();
    let detectors = DetectorConfig {
        livelock_multiple: flags.numeric("livelock-multiple", defaults.livelock_multiple)?,
        starvation_streak: flags.numeric("stall-streak", defaults.starvation_streak)?,
        hotspot_watermark: flags.numeric("hotspot-watermark", defaults.hotspot_watermark)?,
        ..defaults
    };
    let mcfg = MonitorConfig {
        detectors,
        flight_capacity: flight,
        max_reports: flags.numeric("max-reports", MonitorConfig::default().max_reports)?,
        snapshot_every: Some(snapshot),
    };

    let mut src = BernoulliSource::new(cfg.n(), pattern, rate, packets, seed);
    let outcome = if channels <= 1 {
        let mut session = SimSession::new(&cfg).with_monitor(mcfg);
        if flags.switch("profile") {
            session = session.with_profile();
        }
        session.run(&mut src).unwrap()
    } else {
        let mut session = SimSession::new(&cfg).channels(channels).with_monitor(mcfg);
        if flags.switch("profile") {
            session = session.with_profile();
        }
        session.run(&mut src).unwrap()
    };
    let report = outcome.report;
    let monitor = outcome
        .monitor
        .expect("session was built with `with_monitor`");

    let mut out = String::new();
    for line in monitor.snapshots() {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&render_report(&report));
    out.push('\n');
    out.push_str(&monitor.summary().render_text());
    if let Some(profile) = &outcome.profile {
        // The profile cells share the monitor's registry, so a
        // `--metrics` exposition below carries the fasttrack_profile_*
        // series as well.
        out.push_str(&profile.render_text());
    }
    if let Some(path) = flags.optional("health") {
        let mut json = monitor.summary().to_json();
        json.push('\n');
        std::fs::write(path, json).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        out.push_str(&format!("  health json -> {path}\n"));
    }
    if let Some(path) = flags.optional("metrics") {
        std::fs::write(path, monitor.registry().to_prometheus())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        out.push_str(&format!("  metrics exposition -> {path}\n"));
    }
    Ok(out)
}

/// Parses `--window <from>:<until>` for the `faults` subcommand.
fn parse_window(s: Option<&str>) -> Result<(u64, u64), CliError> {
    let Some(s) = s else {
        return Ok(FaultSpec::default().window);
    };
    let parsed = s.split_once(':').and_then(|(a, b)| {
        let from: u64 = a.parse().ok()?;
        let until: u64 = b.parse().ok()?;
        Some((from, until))
    });
    match parsed {
        Some((from, until)) if from < until => Ok((from, until)),
        Some((from, until)) => Err(CliError::Other(format!(
            "--window {from}:{until} is empty (need from < until)"
        ))),
        None => Err(CliError::Other(format!(
            "--window expects <from>:<until> in cycles, got {s:?}"
        ))),
    }
}

/// `faults` — one faulted run against a healthy baseline of the same
/// traffic.
///
/// The fault plan is drawn deterministically from `--fault-seed` (dead
/// express links deflect traffic onto the plain ring; transient link
/// windows and fail-stop routers lose packets, exactly accounted;
/// stalled injectors delay without loss). The report contrasts the
/// faulted run with the baseline: packets dropped and rerouted, the
/// degraded throughput ratio, the exact conservation check, and the
/// health verdict from the online monitor. `--health <path>` writes the
/// monitor summary JSON.
pub fn cmd_faults(flags: &Flags) -> Result<String, CliError> {
    let cfg = parse_noc(flags.required("noc")?)?;
    let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
    let rate: f64 = flags.numeric("rate", 0.5)?;
    let packets: u64 = flags.numeric("packets", 1000)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    let fault_seed: u64 = flags.numeric("fault-seed", seed)?;
    let channels: usize = flags.numeric("channels", 1)?;
    let spec = FaultSpec {
        dead_links: flags.numeric("dead-links", 0)?,
        transient_links: flags.numeric("transient-links", 0)?,
        fail_stop_routers: flags.numeric("fail-stop", 0)?,
        stalled_injectors: flags.numeric("stalled-injectors", 0)?,
        down_links: flags.numeric("down-links", 0)?,
        window: parse_window(flags.optional("window"))?,
    };
    let plan = FaultPlan::random(&cfg, fault_seed, &spec);

    let opts = SimOptions::default();
    let mut baseline_src = BernoulliSource::new(cfg.n(), pattern, rate, packets, seed);
    let baseline = if channels <= 1 {
        SimSession::new(&cfg)
            .options(opts)
            .run(&mut baseline_src)
            .unwrap()
            .report
    } else {
        SimSession::new(&cfg)
            .options(opts)
            .channels(channels)
            .run(&mut baseline_src)
            .unwrap()
            .report
    };

    let mut src = BernoulliSource::new(cfg.n(), pattern, rate, packets, seed);
    let mut monitor = HealthMonitor::new(
        MonitorShape::torus(cfg.n()).with_channels(channels.max(1)),
        MonitorConfig::default(),
    );
    // The multi-channel faulted engine has no traced variant, so the
    // health monitor rides along on the single-channel path only.
    let (report, profile) = if channels <= 1 {
        let mut session = SimSession::new(&cfg)
            .options(opts)
            .with_faults(&plan)
            .with_sink(&mut monitor);
        if flags.switch("profile") {
            session = session.with_profile();
        }
        session
            .run(&mut src)
            .map(|o| (o.report, o.profile))
            .map_err(|e| CliError::Other(e.to_string()))?
    } else {
        let mut session = SimSession::new(&cfg)
            .options(opts)
            .channels(channels)
            .with_faults(&plan);
        if flags.switch("profile") {
            session = session.with_profile();
        }
        session
            .run(&mut src)
            .map(|o| (o.report, o.profile))
            .map_err(|e| CliError::Other(e.to_string()))?
    };

    if flags.switch("json") {
        use std::fmt::Write as _;
        let mut json = String::from("{");
        let _ = write!(
            json,
            "\"noc\":\"{}\",\"fault_seed\":{fault_seed}",
            cfg.name()
        );
        json.push_str(",\"faults\":[");
        for (i, f) in plan.faults().iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(json, "\"{f}\"");
        }
        json.push(']');
        let _ = write!(
            json,
            ",\"baseline\":{{\"delivered\":{},\"cycles\":{}}}",
            baseline.stats.delivered, baseline.cycles
        );
        let _ = write!(
            json,
            ",\"faulted\":{{\"injected\":{},\"delivered\":{},\"dropped\":{},\
             \"rerouted\":{},\"fallback_demotions\":{},\"fallback_channel_switches\":{},\
             \"in_flight\":{},\"cycles\":{},\"truncated\":{}}}",
            report.stats.injected,
            report.stats.delivered,
            report.stats.dropped,
            report.stats.rerouted,
            report.stats.fallback_demotions,
            report.stats.fallback_channel_switches,
            report.in_flight,
            report.cycles,
            report.truncated
        );
        let _ = write!(
            json,
            ",\"throughput_ratio\":{:.6},\"conserved\":{}}}",
            report.degraded_throughput_ratio(&baseline),
            report.conserved()
        );
        json.push('\n');
        return if report.conserved() {
            Ok(json)
        } else {
            // Exit nonzero: a conservation violation is an engine bug,
            // and CI keys off the exit code. The JSON still carries the
            // full accounting for the failure report.
            Err(CliError::Other(format!(
                "{json}conservation invariant violated (delivered + in_flight + dropped != injected)"
            )))
        };
    }

    let mut out = String::new();
    if plan.is_empty() {
        out.push_str("fault plan: empty (nothing drawn; the faulted run is the baseline)\n");
    } else {
        out.push_str(&format!(
            "fault plan: {} faults (fault seed {fault_seed})\n",
            plan.len()
        ));
        for f in plan.faults() {
            out.push_str(&format!("  - {f}\n"));
        }
    }
    out.push_str("healthy baseline:\n");
    out.push_str(&render_report(&baseline));
    out.push_str("\nfaulted fabric:\n");
    out.push_str(&render_report(&report));
    out.push_str(&format!(
        "\n  degraded: {} packets dropped, {} rerouted around dead links\n  \
         throughput {:.1}% of baseline\n",
        report.stats.dropped,
        report.stats.rerouted,
        100.0 * report.degraded_throughput_ratio(&baseline),
    ));
    if report.conserved() {
        out.push_str(&format!(
            "  conservation: exact ({} delivered + {} in flight + {} dropped == {} injected)\n",
            report.stats.delivered, report.in_flight, report.stats.dropped, report.stats.injected,
        ));
    } else {
        out.push_str(&format!(
            "  conservation: VIOLATED ({} delivered + {} in flight + {} dropped != {} injected)\n",
            report.stats.delivered, report.in_flight, report.stats.dropped, report.stats.injected,
        ));
    }
    if let Some(profile) = &profile {
        out.push_str(&profile.render_text());
    }
    if channels <= 1 {
        out.push_str(&monitor.summary().render_text());
        if let Some(path) = flags.optional("health") {
            let mut json = monitor.summary().to_json();
            json.push('\n');
            std::fs::write(path, json).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            out.push_str(&format!("  health json -> {path}\n"));
        }
    }
    if report.conserved() {
        Ok(out)
    } else {
        Err(CliError::Other(format!(
            "{out}conservation invariant violated (delivered + in_flight + dropped != injected)"
        )))
    }
}

/// Parses `--heal <lo:hi>` (cycles until a downed link recovers).
fn parse_heal(s: Option<&str>) -> Result<(u64, u64), CliError> {
    let Some(s) = s else {
        return Ok(StormSpec::default().heal_after);
    };
    let parsed = s.split_once(':').and_then(|(a, b)| {
        let lo: u64 = a.parse().ok()?;
        let hi: u64 = b.parse().ok()?;
        Some((lo, hi))
    });
    match parsed {
        Some((lo, hi)) if lo < hi => Ok((lo, hi)),
        Some((lo, hi)) => Err(CliError::Other(format!(
            "--heal {lo}:{hi} is empty (need lo < hi)"
        ))),
        None => Err(CliError::Other(format!(
            "--heal expects <lo>:<hi> in cycles, got {s:?}"
        ))),
    }
}

/// `storm` — availability under a seeded fault storm, with and without
/// the fallback chains.
///
/// Draws a per-point storm (express links dying at `--kills` per
/// thousand cycles and healing after a `--heal` delay, for `--duration`
/// cycles), runs every grid point twice — once with the standard
/// fallback chains armed, once with chains disabled (today's
/// drop-at-dead-link behavior) — and reports each point's delivered
/// fraction, p99 tail latency, and SLO verdict. Exit is nonzero when
/// any chained point misses the SLO thresholds or breaks exact
/// conservation. `--out <path>` writes the machine-readable SLO report;
/// `--json` prints it instead of the table.
pub fn cmd_storm(flags: &Flags) -> Result<String, CliError> {
    let packets: u64 = flags.numeric("packets", 500)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    let threads: usize = flags.numeric("threads", 1)?;
    let storm = StormSpec {
        kills_per_kcycle: flags.numeric("kills", StormSpec::default().kills_per_kcycle)?,
        heal_after: parse_heal(flags.optional("heal"))?,
        duration: flags.numeric("duration", StormSpec::default().duration)?,
    };
    let slo = SloSpec {
        min_delivered_fraction: flags.numeric("min-delivered", 0.95)?,
        max_p99_latency: flags.numeric("max-p99", 0)?,
    };
    // Two channels by default: the chain's alternate-channel step needs
    // a sibling to evict to. In a single channel a post-allocation
    // stranded loser has physically nowhere to go (bufferless router,
    // fewer live outputs than inputs), so only express demotion helps.
    let channels: usize = flags.numeric("channels", 2)?;
    if channels == 0 {
        return Err(CliError::Other("--channels must be positive".into()));
    }
    // Channel replication (and the fallback chains that exploit it) is
    // a torus feature; SHG/mesh points run single-channel with inert
    // chains, so a mixed grid still validates.
    let nut_for = |spec: TopologySpec| match spec {
        TopologySpec::Torus(config) => {
            let mut label = config.name();
            if channels > 1 {
                use std::fmt::Write as _;
                let _ = write!(label, " {channels}x");
            }
            NocUnderTest {
                label,
                topology: TopologySpec::Torus(config),
                channels,
            }
        }
        other => NocUnderTest::from_spec(other),
    };
    let grid = match flags.optional("grid") {
        Some(spec) => {
            let g = parse_grid(spec)?;
            let nuts: Vec<NocUnderTest> = g.nocs.into_iter().map(nut_for).collect();
            SweepGrid::cross(&nuts, &g.patterns, &g.rates, seed)
        }
        None => {
            // FT(64,2,2): the paper's depopulated 8x8 reference point.
            let spec = parse_topology(flags.optional("noc").unwrap_or("ft:8:2:2"))?;
            let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
            let rate: f64 = flags.numeric("rate", 0.3)?;
            SweepGrid::cross(&[nut_for(spec)], &[pattern], &[rate], seed)
        }
    }
    .with_packets_per_pe(packets);

    let all_torus = grid
        .points
        .iter()
        .all(|p| matches!(p.nut.topology, TopologySpec::Torus(_)));
    let chains = if all_torus {
        FallbackConfig::standard()
    } else {
        FallbackConfig::none()
    };
    let (_, verdicts) = grid
        .run_storm(threads, &storm, &chains, &slo)
        .map_err(|e| CliError::Other(e.to_string()))?;
    let (_, bare) = grid
        .run_storm(threads, &storm, &FallbackConfig::none(), &slo)
        .map_err(|e| CliError::Other(e.to_string()))?;

    let report_json = {
        use std::fmt::Write as _;
        let mut json = String::from("{");
        let _ = write!(
            json,
            "\"kills_per_kcycle\":{},\"heal_after\":[{},{}],\"duration\":{},\
             \"min_delivered_fraction\":{:.6},\"max_p99_latency\":{}",
            storm.kills_per_kcycle,
            storm.heal_after.0,
            storm.heal_after.1,
            storm.duration,
            slo.min_delivered_fraction,
            slo.max_p99_latency
        );
        let _ = write!(json, ",\"points\":{}", storm_json(&verdicts));
        let _ = write!(json, ",\"chains_off\":{}", storm_json(&bare));
        json.push('}');
        json.push('\n');
        json
    };
    if let Some(path) = flags.optional("out") {
        std::fs::write(path, &report_json).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    }

    let mut out = String::new();
    if flags.switch("json") {
        out.push_str(&report_json);
    } else {
        out.push_str(&format!(
            "storm: {} kill(s)/kcycle, heal after {}..{} cycles, {} cycles (seed {seed})\n",
            storm.kills_per_kcycle, storm.heal_after.0, storm.heal_after.1, storm.duration,
        ));
        for (v, b) in verdicts.iter().zip(&bare) {
            out.push_str(&format!(
                "  {} {} rate {:.2}: delivered {:.1}% (chains off: {:.1}%), p99 {} cycles, \
                 {} demoted, {} switched, {} rerouted — SLO {}\n",
                v.label,
                v.pattern,
                v.rate,
                100.0 * v.delivered_fraction,
                100.0 * b.delivered_fraction,
                v.p99_latency,
                v.fallback_demotions,
                v.fallback_channel_switches,
                v.rerouted,
                if v.slo_met { "met" } else { "MISSED" },
            ));
        }
        let met = verdicts.iter().filter(|v| v.slo_met).count();
        out.push_str(&format!(
            "SLO: {met}/{} point(s) met (min delivered {:.1}%{})\n",
            verdicts.len(),
            100.0 * slo.min_delivered_fraction,
            if slo.max_p99_latency > 0 {
                format!(", p99 <= {}", slo.max_p99_latency)
            } else {
                String::new()
            },
        ));
        if let Some(path) = flags.optional("out") {
            out.push_str(&format!("  slo report -> {path}\n"));
        }
    }

    let broken = verdicts.iter().any(|v| !v.conserved);
    let missed = verdicts.iter().any(|v| !v.slo_met);
    if broken {
        Err(CliError::Other(format!(
            "{out}conservation invariant violated under the storm"
        )))
    } else if missed {
        Err(CliError::Other(format!("{out}availability SLO missed")))
    } else {
        Ok(out)
    }
}

/// `compare` — iso-resource comparison across topologies.
///
/// Runs the same traffic (pattern, rate, packets-per-PE, seed) on every
/// topology in `--topologies`, prices each with the shared first-order
/// FPGA resource model ([`fasttrack_core::topology::Topology::resource_cost`]),
/// and reports
/// throughput normalized per thousand LUT+FF — the iso-resource figure
/// the paper's cost/performance comparisons turn on. The first
/// topology is the baseline the `vs base` column is relative to.
/// `--out <path>` writes the table as machine-readable CSV.
pub fn cmd_compare(flags: &Flags) -> Result<String, CliError> {
    let spec_list = flags
        .optional("topologies")
        .unwrap_or("ft:8:2:2,shg:8:2,mesh:8:4");
    let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
    let rate: f64 = flags.numeric("rate", 0.5)?;
    let packets: u64 = flags.numeric("packets", 1000)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(CliError::Other(format!(
            "injection rate {rate} out of (0,1]"
        )));
    }
    let specs: Vec<TopologySpec> = spec_list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_topology)
        .collect::<Result<_, _>>()?;
    if specs.len() < 2 {
        return Err(CliError::Other(
            "compare needs at least two comma-separated topologies".into(),
        ));
    }

    struct CompareRow {
        label: String,
        nodes: usize,
        cost: fasttrack_core::topology::ResourceCost,
        report: SimReport,
        rate_per_kcell: f64,
    }
    let mut rows: Vec<CompareRow> = Vec::new();
    for spec in &specs {
        let nut = NocUnderTest::from_spec(spec.clone());
        let cost = topology_of(spec).resource_cost();
        let mut src = BernoulliSource::new(nut.side(), pattern, rate, packets, seed);
        let report = nut.run(&mut src, SimOptions::default());
        let rate_per_kcell =
            report.sustained_rate_per_pe() * nut.num_nodes() as f64 / (cost.total() as f64 / 1e3);
        rows.push(CompareRow {
            label: nut.label.clone(),
            nodes: nut.num_nodes(),
            cost,
            report,
            rate_per_kcell,
        });
    }

    let csv = {
        let mut csv = String::from(
            "label,nodes,luts,ffs,cells,delivered,cycles,rate_per_pe,avg_latency,\
             p99_latency,rate_per_kcell,vs_base\n",
        );
        let base = rows[0].rate_per_kcell;
        for r in &rows {
            use std::fmt::Write as _;
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{:.6},{:.2},{},{:.6},{:.4}",
                r.label,
                r.nodes,
                r.cost.luts,
                r.cost.ffs,
                r.cost.total(),
                r.report.stats.delivered,
                r.report.cycles,
                r.report.sustained_rate_per_pe(),
                r.report.avg_latency(),
                r.report
                    .stats
                    .total_latency
                    .histogram()
                    .percentile(99.0)
                    .unwrap_or(0),
                r.rate_per_kcell,
                if base > 0.0 {
                    r.rate_per_kcell / base
                } else {
                    0.0
                },
            );
        }
        csv
    };
    if let Some(path) = flags.optional("out") {
        std::fs::write(path, &csv).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    }

    let mut out = format!(
        "iso-resource compare: {} topologies, {pattern} rate {rate:.2}, {packets} pkt/PE (seed {seed})\n",
        rows.len()
    );
    let base = rows[0].rate_per_kcell;
    for r in &rows {
        out.push_str(&format!(
            "  {:<22} {:>5} nodes  {:>8} cells ({} LUT + {} FF)  rate/PE {:.4}  \
             p99 {:>4}  rate/kcell {:.4} ({:.2}x base)\n",
            r.label,
            r.nodes,
            r.cost.total(),
            r.cost.luts,
            r.cost.ffs,
            r.report.sustained_rate_per_pe(),
            r.report
                .stats
                .total_latency
                .histogram()
                .percentile(99.0)
                .unwrap_or(0),
            r.rate_per_kcell,
            if base > 0.0 {
                r.rate_per_kcell / base
            } else {
                0.0
            },
        ));
    }
    if let Some(path) = flags.optional("out") {
        out.push_str(&format!("  iso-resource csv -> {path}\n"));
    }
    Ok(out)
}

/// `sweep` — run a grid of simulation points on the deterministic
/// parallel sweep engine.
///
/// The grid is either `--grid <nocs;patterns;rates>` (full cross
/// product) or the legacy `--noc <spec> [--pattern <p>]` form, which
/// expands to the Figure-11 injection-rate ladder. `--threads N` fans
/// the points out over a work-stealing pool; every point's seed is
/// derived from `--seed` and the point index, so output is
/// byte-identical at any thread count (`--threads 1` is the golden
/// serial run). `--out csv` emits machine-readable CSV (and reports
/// the row x column shape on stderr). `--health <path>` additionally
/// runs every point under a [`fasttrack_core::monitor::HealthMonitor`]
/// and writes the per-point summaries as a JSON sidecar; the rows —
/// and hence the CSV bytes — are unchanged by monitoring.
///
/// Hardening: `--retries <n>` re-runs a panicked or over-budget point
/// up to `n` times with fresh derived seeds, `--cycle-budget <c>` turns
/// a point that exceeds `c` cycles into a typed per-point error instead
/// of stalling the grid, and `--resume <journal>` appends each finished
/// point to a crash-safe journal — re-running against an existing
/// journal restores recorded points and produces CSV byte-identical to
/// an uninterrupted run.
pub fn cmd_sweep(flags: &Flags) -> Result<String, CliError> {
    let packets: u64 = flags.numeric("packets", 1000)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    let threads: usize = flags.numeric("threads", 1)?;
    let retries: u32 = flags.numeric("retries", 0)?;
    let cycle_budget = match flags.optional("cycle-budget") {
        Some(_) => Some(flags.numeric("cycle-budget", 0u64)?),
        None => None,
    };
    let resume = flags.optional("resume");
    let out_fmt = flags
        .optional("out")
        .unwrap_or(if resume.is_some() { "csv" } else { "table" });
    let profile = flags.switch("profile");
    if profile
        && (resume.is_some()
            || retries > 0
            || cycle_budget.is_some()
            || flags.optional("health").is_some()
            || flags.optional("attribution").is_some())
    {
        return Err(CliError::Other(
            "--profile times the plain sweep path only (drop \
             --resume/--retries/--cycle-budget/--health/--attribution)"
                .into(),
        ));
    }
    if flags.optional("attribution").is_some() && flags.optional("health").is_some() {
        return Err(CliError::Other(
            "--attribution and --health are separate sidecars; pass one per run".into(),
        ));
    }

    let grid = match flags.optional("grid") {
        Some(spec) => {
            let g = parse_grid(spec)?;
            let nuts: Vec<NocUnderTest> = g.nocs.into_iter().map(NocUnderTest::from_spec).collect();
            SweepGrid::cross(&nuts, &g.patterns, &g.rates, seed)
        }
        None => {
            let nut = NocUnderTest::from_spec(parse_topology(flags.required("noc")?)?);
            let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
            SweepGrid::cross(&[nut], &[pattern], &INJECTION_RATES, seed)
        }
    }
    .with_packets_per_pe(packets);

    if let Some(path) = resume {
        if flags.optional("health").is_some() || flags.optional("attribution").is_some() {
            return Err(CliError::Other(
                "--resume cannot be combined with --health/--attribution \
                 (journals record rows only)"
                    .into(),
            ));
        }
        if out_fmt != "csv" {
            return Err(CliError::Other(format!(
                "--resume emits CSV only (got --out {out_fmt}); drop --out or pass --out csv"
            )));
        }
        let opts = FallibleSweepOptions {
            threads,
            retries,
            cycle_budget,
        };
        let outcome = run_journaled(&grid, &opts, std::path::Path::new(path))
            .map_err(|e| CliError::Other(e.to_string()))?;
        let errors = outcome.errors();
        for (i, e) in &errors {
            eprintln!("sweep point {i} failed: {e}");
        }
        eprintln!(
            "sweep journal: {} points ({} restored, {} failed) -> {path}",
            grid.points.len(),
            outcome.restored,
            errors.len(),
        );
        return Ok(outcome.csv());
    }

    let hardened = retries > 0 || cycle_budget.is_some();
    if hardened && (flags.optional("health").is_some() || flags.optional("attribution").is_some()) {
        return Err(CliError::Other(
            "--health/--attribution cannot be combined with --retries/--cycle-budget".into(),
        ));
    }
    let rows = if hardened {
        let opts = FallibleSweepOptions {
            threads,
            retries,
            cycle_budget,
        };
        let mut rows = Vec::new();
        for (i, res) in grid.run_fallible(&opts).into_iter().enumerate() {
            match res {
                Ok(row) => rows.push(row),
                Err(e) => eprintln!("sweep point {i} failed: {e}"),
            }
        }
        rows
    } else {
        match flags.optional("health") {
            Some(path) => {
                let (rows, points) = grid.run_with_health(threads, MonitorConfig::default());
                let mut json = health_json(&points);
                json.push('\n');
                std::fs::write(path, json).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                let unhealthy = points.iter().filter(|p| !p.health.healthy()).count();
                eprintln!(
                    "sweep health: {} points ({unhealthy} unhealthy) -> {path}",
                    points.len()
                );
                rows
            }
            None if flags.optional("attribution").is_some() => {
                let path = flags.optional("attribution").expect("checked above");
                let (rows, points) =
                    grid.run_with_attribution(threads, AttributionConfig::default());
                let csv = attribution_csv(&points);
                std::fs::write(path, csv).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                let unreconciled = points
                    .iter()
                    .filter(|p| !p.attribution.reconciled())
                    .count();
                eprintln!(
                    "sweep attribution: {} points ({unreconciled} unreconciled) -> {path}",
                    points.len()
                );
                rows
            }
            None if profile => {
                // Timing lives in a stderr sidecar; the rows — and the
                // CSV bytes — are identical to an unprofiled run.
                let (rows, timing) = grid.run_timed(threads);
                eprintln!("{}", timing.render_text());
                rows
            }
            None => grid.run(threads),
        }
    };
    match out_fmt {
        "csv" => {
            let csv = sweep_csv(&rows);
            let columns = csv.lines().next().map_or(0, |h| h.split(',').count());
            eprintln!("sweep csv: {} data rows x {columns} columns", rows.len());
            Ok(csv)
        }
        "table" => {
            let mut out =
                String::from("config         pattern      rate    sustained  avg-lat   worst\n");
            for row in &rows {
                out.push_str(&format!(
                    "{:<14} {:<12} {:<7.2} {:<10.4} {:<9.1} {}\n",
                    row.label,
                    row.pattern.to_string(),
                    row.rate,
                    row.report.sustained_rate_per_pe(),
                    row.report.avg_latency(),
                    row.report.worst_latency()
                ));
            }
            Ok(out)
        }
        other => Err(CliError::Other(format!(
            "unknown --out format {other:?} (expected table or csv)"
        ))),
    }
}

/// `cost` — the FPGA implementation picture.
pub fn cmd_cost(flags: &Flags) -> Result<String, CliError> {
    let cfg = parse_noc(flags.required("noc")?)?;
    let width: u32 = flags.numeric("width", 256)?;
    let channels: u32 = flags.numeric("channels", 1)?;
    let device = Device::virtex7_485t();
    let cost = noc_cost(&cfg, width).replicated(channels);
    let mut out = format!(
        "{} @{width}b x{channels} on {}\n  LUTs {}  FFs {}  wire bundles/cut {}\n",
        cfg.name(),
        device.name,
        cost.luts,
        cost.ffs,
        cost.wire_bundles_per_cut
    );
    match noc_frequency_mhz(&device, &cfg, width, channels) {
        Ok(mhz) => {
            let power = PowerModel::default().dynamic_power_w(&device, &cfg, width, mhz, channels);
            out.push_str(&format!("  frequency {mhz:.0} MHz  power {power:.1} W\n"));
        }
        Err(e) => out.push_str(&format!("  DOES NOT FIT: {e}\n")),
    }
    Ok(out)
}

/// `trace` — replay a text trace file (`--file`), or run synthetic
/// traffic with the observability stack attached, exporting an NDJSON
/// event log, a per-epoch CSV, and a Chrome trace-event JSON.
pub fn cmd_trace(flags: &Flags) -> Result<String, CliError> {
    if flags.optional("file").is_some() {
        cmd_trace_replay(flags)
    } else {
        cmd_trace_export(flags)
    }
}

fn cmd_trace_replay(flags: &Flags) -> Result<String, CliError> {
    let cfg = parse_noc(flags.required("noc")?)?;
    let path = flags.required("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let mut src =
        trace_source_from_text(&text, cfg.n()).map_err(|e| CliError::Other(e.to_string()))?;
    let report = SimSession::new(&cfg).run(&mut src).unwrap().report;
    Ok(render_report(&report))
}

/// Resolves the traced NoC from either `--noc <spec>` or the long-form
/// `--topology/--n/--d/--r` flags.
fn trace_config(flags: &Flags) -> Result<NocConfig, CliError> {
    if let Some(spec) = flags.optional("noc") {
        return Ok(parse_noc(spec)?);
    }
    let topology = flags.optional("topology").unwrap_or("ft");
    let n: u16 = flags.numeric("n", 8)?;
    let cfg = match topology {
        "hoplite" => NocConfig::hoplite(n),
        "ft" | "ftlite" => {
            let d: u16 = flags.numeric("d", 2)?;
            let r: u16 = flags.numeric("r", 1)?;
            let policy = if topology == "ft" {
                FtPolicy::Full
            } else {
                FtPolicy::Inject
            };
            NocConfig::fasttrack(n, d, r, policy)
        }
        other => {
            return Err(CliError::Other(format!(
                "unknown topology {other:?} (expected hoplite, ft, or ftlite)"
            )))
        }
    };
    cfg.map_err(|e| CliError::Spec(e.into()))
}

fn cmd_trace_export(flags: &Flags) -> Result<String, CliError> {
    let cfg = trace_config(flags)?;
    let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
    let rate: f64 = flags.numeric("rate", 0.1)?;
    let packets: u64 = flags.numeric("packets", 200)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    let epoch: u64 = flags.numeric("epoch", 64)?;
    if epoch == 0 {
        return Err(CliError::Other("--epoch must be positive".into()));
    }
    let flight: usize = flags.numeric("flight-recorder", 0)?;
    let prefix = flags.optional("out").unwrap_or("fasttrack_trace");

    let mut src = BernoulliSource::new(cfg.n(), pattern, rate, packets, seed);
    // Sink tuples compose pairwise, so the flight recorder nests beside
    // the three exporters (capacity 1 when unused — the events are
    // dropped on the floor either way).
    let mut sink = (
        (
            NdjsonSink::new(),
            ChromeTraceSink::new(cfg.n()),
            WindowedMetrics::new(cfg.num_nodes(), epoch),
        ),
        FlightRecorder::new(cfg.num_nodes(), flight.max(1)),
    );
    let report = SimSession::new(&cfg)
        .with_sink(&mut sink)
        .run(&mut src)
        .unwrap()
        .report;
    let ((ndjson, chrome, metrics), recorder) = sink;

    let steady = metrics.steady_state_epoch();
    let suggested = metrics.suggested_warmup();
    let epochs = metrics.finish();

    let write = |path: &str, data: &str| {
        std::fs::write(path, data).map_err(|e| CliError::Io(format!("{path}: {e}")))
    };
    let events_path = format!("{prefix}.events.ndjson");
    let csv_path = format!("{prefix}.epochs.csv");
    let chrome_path = format!("{prefix}.chrome.json");
    write(&events_path, ndjson.as_str())?;
    write(&csv_path, &epochs_to_csv(&epochs, cfg.num_nodes()))?;
    write(&chrome_path, &chrome.finish())?;

    let mut out = render_report(&report);
    out.push_str(&format!(
        "\n  events {} -> {events_path}\n  epochs {} x {epoch} cyc -> {csv_path}\n  \
         chrome trace -> {chrome_path}\n",
        ndjson.lines(),
        epochs.len(),
    ));
    match (steady, suggested) {
        (Some(e), Some(w)) => {
            out.push_str(&format!(
                "  steady state from epoch {e} (suggested warmup {w} cycles)\n"
            ));
        }
        _ => out.push_str("  steady state not detected (run longer or shrink --epoch)\n"),
    }
    if flight > 0 {
        // Replay the recorded excerpt (last K events per router, merged
        // in cycle order) through fresh exporters: the same file
        // formats, but bounded to what a post-mortem actually needs.
        let mut replay_nd = NdjsonSink::new();
        let mut replay_chrome = ChromeTraceSink::new(cfg.n());
        let events = recorder.dump_all();
        for e in &events {
            replay_nd.emit(e);
            replay_chrome.emit(e);
        }
        let flight_nd = format!("{prefix}.flight.ndjson");
        let flight_chrome = format!("{prefix}.flight.chrome.json");
        write(&flight_nd, replay_nd.as_str())?;
        write(&flight_chrome, &replay_chrome.finish())?;
        out.push_str(&format!(
            "  flight recorder K={flight}: {} events retained -> {flight_nd}, {flight_chrome}\n",
            events.len(),
        ));
    }
    Ok(out)
}

/// `profile` — one self-profiled run: the session span tree with
/// per-phase self time, plus the hot-path counter summary (cycles/sec,
/// packets/sec, route decisions, pool-slot reuse, deflections).
///
/// Defaults to the paper's FT(64,2,2) fabric. `--out <prefix>` writes
/// `<prefix>.chrome.json` in Chrome trace-event format; `--json` emits
/// the machine-readable summary instead of the text table.
pub fn cmd_profile(flags: &Flags) -> Result<String, CliError> {
    let cfg = parse_noc(flags.optional("noc").unwrap_or("ft:8:2:2"))?;
    let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
    let rate: f64 = flags.numeric("rate", 0.5)?;
    let packets: u64 = flags.numeric("packets", 1000)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    let mut src = BernoulliSource::new(cfg.n(), pattern, rate, packets, seed);
    let outcome = SimSession::new(&cfg).with_profile().run(&mut src).unwrap();
    let profile = outcome
        .profile
        .expect("`with_profile` always attaches a profile");

    let chrome_note = match flags.optional("out") {
        Some(prefix) => {
            let path = format!("{prefix}.chrome.json");
            std::fs::write(&path, profile.chrome_trace())
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            Some(format!("chrome trace -> {path}"))
        }
        None => None,
    };
    if flags.switch("json") {
        // Keep stdout pure JSON; the file note goes to stderr.
        if let Some(note) = chrome_note {
            eprintln!("{note}");
        }
        let mut json = profile.to_json();
        json.push('\n');
        return Ok(json);
    }
    let mut out = render_report(&outcome.report);
    out.push('\n');
    out.push_str(&profile.render_text());
    if let Some(note) = chrome_note {
        out.push_str(&note);
        out.push('\n');
    }
    Ok(out)
}

fn snapshot_err(e: SnapshotError) -> CliError {
    match e {
        SnapshotError::Io { .. } => CliError::Io(e.to_string()),
        _ => CliError::Other(e.to_string()),
    }
}

fn measure_snapshot(packets: u64) -> BenchSnapshot {
    let grid = snapshot::hotpath_grid(packets);
    let m = snapshot::measure_hotpath(&grid);
    snapshot::snapshot_from(&grid, &m)
}

fn bench_snapshot(flags: &Flags) -> Result<String, CliError> {
    let packets: u64 = flags.numeric("packets", 2000)?;
    let snap = measure_snapshot(packets);
    let saved = match flags.optional("out") {
        Some(path) => {
            snap.save(path).map_err(snapshot_err)?;
            Some(path.to_string())
        }
        None => None,
    };
    if flags.switch("json") {
        if let Some(path) = saved {
            eprintln!("snapshot -> {path}");
        }
        return Ok(snap.to_json());
    }
    let mut out = format!(
        "bench snapshot: commit {}, {} points x {} packets/PE\n  serial {:.3}s, \
         parallel({}) {:.3}s, lut {:.3}s, direct {:.3}s\n  {} delivered, {:.0} packets/sec\n",
        snap.commit,
        snap.grid_points,
        snap.packets_per_pe,
        snap.serial_secs,
        snap.threads,
        snap.parallel_secs,
        snap.lut_secs,
        snap.direct_secs,
        snap.delivered_packets,
        snap.packets_per_sec,
    );
    if let Some(path) = saved {
        out.push_str(&format!("  snapshot -> {path}\n"));
    }
    Ok(out)
}

fn bench_diff(flags: &Flags) -> Result<String, CliError> {
    let baseline = BenchSnapshot::load(flags.required("baseline")?).map_err(snapshot_err)?;
    let candidate = BenchSnapshot::load(flags.required("candidate")?).map_err(snapshot_err)?;
    let d = snapshot::diff(&baseline, &candidate).map_err(snapshot_err)?;
    if flags.switch("json") {
        let mut json = d.to_json();
        json.push('\n');
        Ok(json)
    } else {
        Ok(d.render_text())
    }
}

fn bench_gate(flags: &Flags) -> Result<String, CliError> {
    let baseline = BenchSnapshot::load(flags.required("baseline")?).map_err(snapshot_err)?;
    let tolerance: f64 = flags.numeric("tolerance", 10.0)?;
    let candidate = match flags.optional("candidate") {
        Some(path) => BenchSnapshot::load(path).map_err(snapshot_err)?,
        // No candidate file: measure fresh, on the baseline's own grid
        // so the fingerprints agree.
        None => {
            let packets: u64 = flags.numeric("packets", baseline.packets_per_pe)?;
            measure_snapshot(packets)
        }
    };
    let result = snapshot::gate(&baseline, &candidate, tolerance).map_err(snapshot_err)?;
    let verdict = result.render_text();
    if result.pass {
        Ok(format!("{verdict}\n"))
    } else {
        // A regression is a nonzero exit so CI fails the build.
        Err(CliError::Other(verdict))
    }
}

fn bench_migrate(flags: &Flags) -> Result<String, CliError> {
    let path = flags.required("file")?;
    let snap = BenchSnapshot::load(path).map_err(snapshot_err)?;
    snap.save(path).map_err(snapshot_err)?;
    Ok(format!(
        "migrated {path} to schema_version {} ({:.0} packets/sec, grid {})\n",
        snap.schema_version, snap.packets_per_sec, snap.grid_fingerprint
    ))
}

/// `bench` — the tracked bench trajectory: measure a versioned
/// hot-path snapshot, diff two snapshots, gate a candidate against a
/// baseline (nonzero exit on regression), or migrate a pre-versioning
/// snapshot file in place.
pub fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError::Other(
            "bench needs an action: snapshot | diff | gate | migrate".into(),
        ));
    };
    let flags = Flags::parse_with_switches(rest.to_vec(), &["json"])?;
    match action.as_str() {
        "snapshot" => bench_snapshot(&flags),
        "diff" => bench_diff(&flags),
        "gate" => bench_gate(&flags),
        "migrate" => bench_migrate(&flags),
        other => Err(CliError::Other(format!(
            "unknown bench action {other:?} (expected snapshot, diff, gate, or migrate)"
        ))),
    }
}

/// The [`Expectation`] a finished report realizes.
fn expectation_of(report: &SimReport) -> Expectation {
    Expectation {
        delivered: report.stats.delivered,
        cycles: report.cycles,
        dropped: report.stats.dropped,
        truncated: report.truncated,
    }
}

/// `record` — run a generator (workload preset or synthetic) and write
/// the realized injection schedule as a versioned scenario trace.
///
/// `--workload spmv|graph|dataflow|multiproc` selects one of the four
/// paper case studies (the same setups as the integration tests);
/// without it, the usual `--noc/--pattern/--rate/--packets` synthetic
/// flags apply. Fault flags mirror `faults`: the drawn plan is active
/// during recording and embedded in the trace header, so replay
/// reproduces the faulted run. The header also embeds the realized
/// outcome, making the file a self-checking corpus entry.
pub fn cmd_record(flags: &Flags) -> Result<String, CliError> {
    let out_path = flags.required("out")?;
    let workload = flags.optional("workload");
    let noc_spec = match workload {
        // The presets default to the torus the paper's case studies
        // use; --noc still overrides.
        Some("multiproc") => flags.optional("noc").unwrap_or("ft:6:2:1").to_string(),
        Some(_) => flags.optional("noc").unwrap_or("ft:4:2:1").to_string(),
        None => flags.required("noc")?.to_string(),
    };
    let cfg = parse_noc(&noc_spec)?;
    let seed: u64 = flags.numeric("seed", 1)?;
    let channels: usize = flags.numeric("channels", 1)?;
    // The LU dataflow DAG serializes heavily; give it the same budget
    // the integration tests need.
    let default_budget: u64 = if workload == Some("dataflow") {
        5_000_000
    } else {
        2_000_000
    };
    let max_cycles: u64 = flags.numeric("max-cycles", default_budget)?;
    let fault_seed: u64 = flags.numeric("fault-seed", seed)?;
    let fspec = FaultSpec {
        dead_links: flags.numeric("dead-links", 0)?,
        transient_links: flags.numeric("transient-links", 0)?,
        fail_stop_routers: flags.numeric("fail-stop", 0)?,
        stalled_injectors: flags.numeric("stalled-injectors", 0)?,
        down_links: 0,
        window: parse_window(flags.optional("window"))?,
    };
    let plan = FaultPlan::random(&cfg, fault_seed, &fspec);

    let (source, generator): (Box<dyn TrafficSource>, String) = match workload {
        Some("spmv") => (
            Box::new(spmv_source(
                &circuit(1000, 4, 2, 3, seed),
                cfg.n(),
                Partition::Cyclic,
            )),
            "spmv".into(),
        ),
        Some("graph") => (
            Box::new(graph_source(
                &rmat(11, 15_000, 0.57, 0.19, 0.19, seed),
                cfg.n(),
                Partition::Cyclic,
            )),
            "graph".into(),
        ),
        Some("dataflow") => (
            Box::new(DataflowSource::new(lu_dag(1200, 48, 2.0, seed), cfg.n(), 3)),
            "dataflow".into(),
        ),
        Some("multiproc") => {
            let profiles = parsec_benchmarks();
            let label = format!("multiproc:{}", profiles[0].name);
            (Box::new(parsec_trace(&profiles[0], cfg.n(), seed)), label)
        }
        Some(other) => {
            return Err(CliError::Other(format!(
                "unknown workload {other:?} (expected spmv, graph, dataflow, or multiproc)"
            )))
        }
        None => {
            let pattern_spec = flags.optional("pattern").unwrap_or("random");
            let pattern = parse_pattern(pattern_spec)?;
            let rate: f64 = flags.numeric("rate", 0.5)?;
            let packets: u64 = flags.numeric("packets", 1000)?;
            (
                Box::new(BernoulliSource::new(cfg.n(), pattern, rate, packets, seed)),
                format!("bernoulli:{pattern_spec}"),
            )
        }
    };

    let mut rec = RecordingSource::new(cfg.n(), source);
    let mut session = SimSession::new(&cfg)
        .max_cycles(max_cycles)
        .with_faults(&plan);
    if channels > 1 {
        session = session.channels(channels);
    }
    let report = session
        .run(&mut rec)
        .map_err(|e| CliError::Other(e.to_string()))?
        .report;

    let mut header = ScenarioHeader::new(&noc_spec, &generator);
    header.channels = channels.max(1);
    header.max_cycles = max_cycles;
    header.faults = plan.faults().to_vec();
    header.expect = Some(expectation_of(&report));
    let trace = rec.into_trace(header);
    std::fs::write(out_path, trace.encode())
        .map_err(|e| CliError::Io(format!("{out_path}: {e}")))?;

    let mut out = render_report(&report);
    out.push_str(&format!(
        "\n  recorded {} pushes -> {out_path}\n",
        trace.records.len()
    ));
    Ok(out)
}

/// `replay` — decode a scenario trace and feed its schedule back
/// through the engine, reconstructing the NoC, fault plan, channel
/// count, and cycle budget from the header. When the trace embeds an
/// expectation, a divergent outcome is a nonzero exit.
pub fn cmd_replay(flags: &Flags) -> Result<String, CliError> {
    let path = flags.required("file")?;
    let trace = load_trace(path)?;
    let (cfg, plan, mut src) = trace
        .replay_setup()
        .map_err(|e| CliError::Other(format!("{path}: {e}")))?;

    let mut session = SimSession::new(&cfg)
        .max_cycles(trace.header.max_cycles)
        .with_faults(&plan);
    if trace.header.warmup > 0 {
        session = session.warmup_cycles(trace.header.warmup);
    }
    if trace.header.channels > 1 {
        session = session.channels(trace.header.channels);
    }
    let report = session
        .run(&mut src)
        .map_err(|e| CliError::Other(e.to_string()))?
        .report;

    let mut out = render_report(&report);
    out.push_str(&format!(
        "\n  replayed {} pushes from {path} (generator {})\n",
        trace.records.len(),
        trace.header.generator,
    ));
    if let Some(expect) = trace.header.expect {
        let got = expectation_of(&report);
        if got == expect {
            out.push_str("  expectation verified: delivered/cycles/dropped/truncated match\n");
        } else {
            return Err(CliError::Other(format!(
                "replay diverged from recorded expectation:\n  \
                 expected delivered {} cycles {} dropped {} truncated {}\n  \
                 got      delivered {} cycles {} dropped {} truncated {}",
                expect.delivered,
                expect.cycles,
                expect.dropped,
                expect.truncated,
                got.delivered,
                got.cycles,
                got.dropped,
                got.truncated,
            )));
        }
    }
    Ok(out)
}

/// Reads and decodes a scenario trace file.
fn load_trace(path: &str) -> Result<ScenarioTrace, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    ScenarioTrace::decode(&text).map_err(|e| CliError::Other(format!("{path}: {e}")))
}

/// Runs the session `attribute`/`explain` share: a recorded scenario
/// when `--trace` is given (faults, warmup, channels, and cycle cap
/// all come from the trace header), a synthetic Bernoulli run
/// otherwise.
fn attributed_outcome(
    flags: &Flags,
    acfg: AttributionConfig,
    mcfg: Option<MonitorConfig>,
) -> Result<SimOutcome, CliError> {
    match flags.optional("trace") {
        Some(path) => {
            let trace = load_trace(path)?;
            let (cfg, plan, mut src) = trace
                .replay_setup()
                .map_err(|e| CliError::Other(format!("{path}: {e}")))?;
            let mut session = SimSession::new(&cfg)
                .max_cycles(trace.header.max_cycles)
                .with_faults(&plan)
                .with_attribution(acfg);
            if trace.header.warmup > 0 {
                session = session.warmup_cycles(trace.header.warmup);
            }
            if trace.header.channels > 1 {
                session = session.channels(trace.header.channels);
            }
            if let Some(m) = mcfg {
                session = session.with_monitor(m);
            }
            session
                .run(&mut src)
                .map_err(|e| CliError::Other(e.to_string()))
        }
        None => {
            let spec = parse_topology(flags.required("noc").map_err(|_| {
                CliError::Other(
                    "need --trace <path> or --noc <spec> to say which run to attribute".into(),
                )
            })?)?;
            let pattern = parse_pattern(flags.optional("pattern").unwrap_or("random"))?;
            let rate: f64 = flags.numeric("rate", 1.0)?;
            let packets: u64 = flags.numeric("packets", 1000)?;
            let seed: u64 = flags.numeric("seed", 1)?;
            let channels: usize = flags.numeric("channels", 1)?;
            if channels > 1 && !matches!(spec, TopologySpec::Torus(_)) {
                return Err(CliError::Other(
                    "--channels > 1 replicates torus fabrics only".into(),
                ));
            }
            let side = spec
                .monitor_shape()
                .grid_side
                .expect("built-in topologies are square grids");
            let mut src = BernoulliSource::new(side, pattern, rate, packets, seed);
            match spec {
                TopologySpec::Torus(cfg) => {
                    let mut session = SimSession::new(&cfg).with_attribution(acfg);
                    if channels > 1 {
                        session = session.channels(channels);
                    }
                    if let Some(m) = mcfg {
                        session = session.with_monitor(m);
                    }
                    session
                        .run(&mut src)
                        .map_err(|e| CliError::Other(e.to_string()))
                }
                TopologySpec::Shg(cfg) => {
                    let mut session =
                        SimSession::with_backend(ShgBackend::new(cfg)).with_attribution(acfg);
                    if let Some(m) = mcfg {
                        session = session.with_monitor(m);
                    }
                    session
                        .run(&mut src)
                        .map_err(|e| CliError::Other(e.to_string()))
                }
                TopologySpec::Mesh { n, depth } => {
                    let cfg =
                        MeshConfig::new(n, depth).map_err(|e| CliError::Other(e.to_string()))?;
                    let mut session =
                        SimSession::with_backend(MeshBackend::new(&cfg)).with_attribution(acfg);
                    if let Some(m) = mcfg {
                        session = session.with_monitor(m);
                    }
                    session
                        .run(&mut src)
                        .map_err(|e| CliError::Other(e.to_string()))
                }
            }
        }
    }
}

/// `attribute` — where did the cycles go? Runs one simulation (live
/// synthetic traffic or a recorded scenario trace) with the
/// latency-attribution layer attached and prints the per-component
/// cycle accounting: source-queue wait, express-lane transit,
/// shared-ring transit, deflection penalty, fault-reroute penalty, and
/// the final eject cycle, with the exact-sum and wire-class
/// reconciliation verdicts. `--metrics <path>` writes the
/// `fasttrack_attrib_*` cells as a Prometheus exposition; `--json`
/// emits the aggregate report as JSON instead of text.
pub fn cmd_attribute(flags: &Flags) -> Result<String, CliError> {
    let outcome = attributed_outcome(flags, AttributionConfig::default(), None)?;
    let attribution = outcome
        .attribution
        .expect("session was built with `with_attribution`");
    let mut out = if flags.switch("json") {
        let mut json = attribution.to_json();
        json.push('\n');
        json
    } else {
        let mut text = render_report(&outcome.report);
        text.push('\n');
        text.push_str(&attribution.render_text());
        text
    };
    if let Some(path) = flags.optional("metrics") {
        let exposition = attribution.registry().to_prometheus();
        std::fs::write(path, exposition).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        out.push_str(&format!("  attribution metrics -> {path}\n"));
    }
    Ok(out)
}

/// One journey line for `explain`: what happened to the packet at this
/// event.
fn journey_line(event: &SimEvent) -> String {
    match event {
        SimEvent::Inject {
            cycle,
            node,
            out,
            queue_wait,
            ..
        } => format!("cycle {cycle:>6}  node {node:>4}  inject -> {out} (queue wait {queue_wait})"),
        SimEvent::RouteDecision {
            cycle,
            node,
            in_port,
            out,
            hops,
            ..
        } => {
            let from = in_port.map_or_else(|| "PE".to_string(), |p| p.to_string());
            format!("cycle {cycle:>6}  node {node:>4}  route {from} -> {out} (hops so far {hops})")
        }
        SimEvent::Deflect {
            cycle, node, out, ..
        } => {
            format!("cycle {cycle:>6}  node {node:>4}  deflected -> {out}")
        }
        SimEvent::ExpressHop {
            cycle, node, span, ..
        } => format!("cycle {cycle:>6}  node {node:>4}  express hop spanning {span} routers"),
        SimEvent::FaultReroute {
            cycle,
            node,
            avoided,
            ..
        } => format!("cycle {cycle:>6}  node {node:>4}  rerouted around faulty {avoided}"),
        SimEvent::FaultDrop {
            cycle,
            node,
            link,
            corrupted,
            ..
        } => {
            let cause = match (link, corrupted) {
                (Some(l), true) => format!("corrupted on {l}"),
                (Some(l), false) => format!("dropped on {l}"),
                (None, _) => "dropped at a failed router".to_string(),
            };
            format!("cycle {cycle:>6}  node {node:>4}  FAULT: {cause}")
        }
        SimEvent::Eject {
            cycle,
            node,
            delivery,
        } => format!(
            "cycle {cycle:>6}  node {node:>4}  eject (consumed by PE @{})",
            delivery.cycle
        ),
        other => format!("cycle {:>6}  {}", other.cycle(), other.kind()),
    }
}

/// Renders the watched packet's journey plus its attribution verdict.
fn render_journey(journey: &PacketJourney) -> String {
    let mut out = String::new();
    let id = journey.packet.0;
    if let Some(SimEvent::Inject { node, dst, .. }) = journey
        .events
        .iter()
        .find(|e| matches!(e, SimEvent::Inject { .. }))
    {
        out.push_str(&format!(
            "packet {id}: injected at node {node}, destined for {dst}\n"
        ));
    }
    out.push_str("journey:\n");
    for e in &journey.events {
        out.push_str("  ");
        out.push_str(&journey_line(e));
        out.push('\n');
    }
    match (&journey.attribution, journey.dropped) {
        (Some(a), _) => {
            let parts: Vec<String> = LatencyComponent::ALL
                .iter()
                .map(|&c| format!("{} {}", c.label(), a.component(c)))
                .collect();
            out.push_str(&format!(
                "attribution: {} == {} end-to-end [{}]\n",
                parts.join(" | "),
                a.latency(),
                if a.exact() { "exact" } else { "MISMATCH" },
            ));
        }
        (None, true) => {
            out.push_str(&format!(
                "packet {id} was dropped by a fault (see journey)\n"
            ));
        }
        (None, false) => {
            out.push_str(&format!(
                "packet {id} was still in flight when the run ended\n"
            ));
        }
    }
    out
}

/// `explain <packet-id>` — reconstructs one packet's full journey from
/// a live run or a recorded scenario trace: every injection, routing
/// decision, deflection, express hop, fault event, and the final eject,
/// cycle by cycle, with the packet's latency decomposition and a
/// flight-recorder excerpt around its final router for cross-checking.
pub fn cmd_explain(args: &[String]) -> Result<String, CliError> {
    let Some((id_str, rest)) = args.split_first() else {
        return Err(CliError::Other(
            "explain needs a packet id: \
             fasttrack explain <packet-id> (--trace <path> | --noc <spec> ...)"
                .into(),
        ));
    };
    let id: u64 = id_str
        .parse()
        .map_err(|_| CliError::Other(format!("packet id must be a number, got {id_str:?}")))?;
    let flags = Flags::parse(rest.to_vec())?;
    let flight: usize = flags.numeric("flight-recorder", 16)?;
    if flight == 0 {
        return Err(CliError::Other("--flight-recorder must be positive".into()));
    }
    let mcfg = MonitorConfig {
        flight_capacity: flight,
        snapshot_every: None,
        ..MonitorConfig::default()
    };
    let acfg = AttributionConfig::default().watch(PacketId(id));
    let outcome = attributed_outcome(&flags, acfg, Some(mcfg))?;
    let attribution = outcome
        .attribution
        .expect("session was built with `with_attribution`");
    let journey = attribution
        .journey
        .as_ref()
        .expect("session was built with a watched packet");
    if journey.events.is_empty() {
        return Err(CliError::Other(format!(
            "packet {id} never appeared in this run ({} packets were injected; \
             ids are assigned in injection order)",
            outcome.report.stats.injected,
        )));
    }
    let mut out = render_journey(journey);
    let last_node = journey.events.last().and_then(|e| e.node());
    if let (Some(monitor), Some(node)) = (&outcome.monitor, last_node) {
        let excerpt = monitor.recorder().excerpt(node);
        out.push_str(&format!(
            "flight recorder @ node {node} (last {} events, * = packet {id}):\n",
            excerpt.len(),
        ));
        for e in &excerpt {
            let mine = journey.events.contains(e);
            out.push_str(if mine { "  * " } else { "    " });
            out.push_str(&journey_line(e));
            out.push('\n');
        }
    }
    Ok(out)
}

/// `fuzz` — the seeded scenario fuzzer: randomized NoC/traffic/fault
/// scenarios on the work-stealing pool, conservation and health checks
/// on every run, and delta-minimized failures written as replayable
/// trace files. Exit is nonzero only for bug classes (panic or
/// conservation violation); detected livelock/stranded classes are
/// reported and archived but expected under injected faults.
pub fn cmd_fuzz(flags: &Flags) -> Result<String, CliError> {
    let cfg = FuzzConfig {
        iters: flags.numeric("iters", 100)?,
        seed: flags.numeric("seed", 0)?,
        threads: flags.numeric("threads", 1)?,
        max_cycles: flags.numeric("max-cycles", 30_000)?,
    };
    if cfg.iters == 0 {
        return Err(CliError::Other("--iters must be positive".into()));
    }
    let outcome = fuzz(&cfg);
    let mut out = format!(
        "fuzz: {} scenarios (seed {}, {} thread(s)): {} failing, {} minimized class(es)\n",
        outcome.iters,
        cfg.seed,
        cfg.threads.max(1),
        outcome.failing_iters,
        outcome.failures.len(),
    );
    for f in &outcome.failures {
        out.push_str(&format!(
            "  [{}] scenario #{}: {} (minimized {} -> {} records, {} fault(s))\n",
            f.class.tag(),
            f.index,
            f.summary,
            f.original_records,
            f.trace.records.len(),
            f.trace.header.faults.len(),
        ));
    }
    if let Some(dir) = flags.optional("out") {
        std::fs::create_dir_all(dir).map_err(|e| CliError::Io(format!("{dir}: {e}")))?;
        for f in &outcome.failures {
            let path = format!("{dir}/{}_{}.trace", f.class.tag(), cfg.seed);
            std::fs::write(&path, f.trace.encode())
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            out.push_str(&format!("  minimized trace -> {path}\n"));
        }
    }
    if outcome.found_bug() {
        Err(CliError::Other(format!(
            "{out}fuzzing found a bug-class failure (replay the minimized trace to reproduce)"
        )))
    } else {
        out.push_str(if outcome.clean() {
            "  all scenarios ran clean\n"
        } else {
            "  no bug-class failures (detected classes above are expected under faults)\n"
        });
        Ok(out)
    }
}

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the failure; `main` prints it and
/// exits nonzero.
pub fn run(args: Vec<String>) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(USAGE.to_string());
    };
    // `bench` takes an action word before its flags; `explain` takes a
    // positional packet id.
    if command == "bench" {
        return cmd_bench(rest);
    }
    if command == "explain" {
        return cmd_explain(rest);
    }
    let switches: &[&str] = match command.as_str() {
        "monitor" | "sweep" => &["profile"],
        "faults" => &["profile", "json"],
        "profile" | "attribute" | "storm" => &["json"],
        _ => &[],
    };
    let flags = Flags::parse_with_switches(rest.to_vec(), switches)?;
    match command.as_str() {
        "simulate" => cmd_simulate(&flags),
        "monitor" => cmd_monitor(&flags),
        "sweep" => cmd_sweep(&flags),
        "compare" => cmd_compare(&flags),
        "faults" => cmd_faults(&flags),
        "storm" => cmd_storm(&flags),
        "profile" => cmd_profile(&flags),
        "attribute" => cmd_attribute(&flags),
        "cost" => cmd_cost(&flags),
        "trace" => cmd_trace(&flags),
        "record" => cmd_record(&flags),
        "replay" => cmd_replay(&flags),
        "fuzz" => cmd_fuzz(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn simulate_end_to_end() {
        let out = run(argv("simulate --noc ft:4:2:1 --rate 0.5 --packets 50")).unwrap();
        assert!(out.contains("FT(16,2,1)"));
        assert!(out.contains("800 delivered"));
        assert!(out.contains("sustained rate"));
    }

    #[test]
    fn simulate_multichannel() {
        let out = run(argv("simulate --noc hoplite:4 --packets 20 --channels 2")).unwrap();
        assert!(out.contains("2x"));
    }

    #[test]
    fn cost_reports_fit_and_na() {
        let ok = run(argv("cost --noc hoplite:8 --width 256")).unwrap();
        assert!(ok.contains("33664") || ok.contains("LUTs 33664"));
        assert!(ok.contains("MHz"));
        let na = run(argv("cost --noc ft:16:2:1 --width 1024")).unwrap();
        assert!(na.contains("DOES NOT FIT"));
    }

    #[test]
    fn sweep_prints_rate_table() {
        let out = run(argv("sweep --noc hoplite:4 --packets 30")).unwrap();
        assert!(out.contains("0.01"));
        assert!(out.contains("1.00") || out.contains("1.0"));
        assert_eq!(out.lines().count(), 1 + 9);
    }

    #[test]
    fn sweep_grid_csv_golden_run_matches_parallel() {
        let base = "sweep --grid hoplite:4,ft:4:2:1;random,transpose;0.1,0.5 \
                    --packets 25 --seed 9 --out csv";
        let serial = run(argv(&format!("{base} --threads 1"))).unwrap();
        let parallel = run(argv(&format!("{base} --threads 8"))).unwrap();
        assert_eq!(serial, parallel, "parallel sweep diverged from golden run");
        assert!(serial.starts_with("config,channels,pattern,rate,seed,"));
        // 2 NoCs x 2 patterns x 2 rates + header.
        assert_eq!(serial.lines().count(), 1 + 8);
        assert!(serial.contains("FT(16,2,1)"));
    }

    #[test]
    fn sweep_grid_accepts_shg_and_mesh_points() {
        let out = run(argv(
            "sweep --grid ft:4:2:1,shg:4:2,mesh:4:2;random;0.3 --packets 25 --seed 3 --out csv",
        ))
        .unwrap();
        assert!(out.contains("FT(16,2,1)"));
        assert!(out.contains("SHG"), "SHG row missing: {out}");
        assert!(out.contains("Mesh 4x4"), "mesh row missing: {out}");
        // 3 topologies x 1 pattern x 1 rate + header.
        assert_eq!(out.lines().count(), 1 + 3);
    }

    #[test]
    fn compare_reports_iso_resource_table_and_csv() {
        let dir = std::env::temp_dir().join("fasttrack_cli_compare");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("iso.csv").display().to_string();
        let out = run(argv(&format!(
            "compare --topologies ft:4:2:1,shg:4:2,mesh:4:2 --rate 0.3 \
             --packets 25 --seed 3 --out {csv_path}"
        )))
        .unwrap();
        assert!(out.contains("iso-resource compare: 3 topologies"));
        assert!(out.contains("FT(16,2,1)"));
        assert!(out.contains("rate/kcell"));
        assert!(out.contains("1.00x base"), "baseline row is 1.00x: {out}");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("label,nodes,luts,ffs,cells,"));
        assert_eq!(csv.lines().count(), 1 + 3);
        // Every topology prices to a positive cell count.
        for line in csv.lines().skip(1) {
            let cells: u64 = line.split(',').nth(4).unwrap().parse().unwrap();
            assert!(cells > 0, "{line}");
        }
    }

    #[test]
    fn compare_rejects_single_topology() {
        assert!(matches!(
            run(argv("compare --topologies ft:4:2:1 --packets 5")),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn attribute_runs_on_shg() {
        let out = run(argv(
            "attribute --noc shg:4:2 --pattern random --rate 0.3 --packets 30 --seed 2",
        ))
        .unwrap();
        assert!(out.contains("SHG"), "{out}");
        assert!(out.contains("where the cycles went"), "{out}");
    }

    #[test]
    fn attribute_rejects_channels_on_non_torus() {
        assert!(matches!(
            run(argv("attribute --noc shg:4:2 --channels 2 --packets 5")),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn sweep_rejects_unknown_output_format() {
        assert!(matches!(
            run(argv("sweep --noc hoplite:4 --packets 5 --out xml")),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn sweep_rejects_bad_grid() {
        assert!(matches!(
            run(argv("sweep --grid hoplite:4;random")),
            Err(CliError::Spec(_))
        ));
    }

    #[test]
    fn trace_replays_file() {
        let dir = std::env::temp_dir().join("fasttrack_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        std::fs::write(&path, "0 0 5\n3 1 6\n").unwrap();
        let out = run(argv(&format!(
            "trace --noc hoplite:4 --file {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("2 delivered"));
    }

    #[test]
    fn trace_exports_synthetic_run() {
        let dir = std::env::temp_dir().join("fasttrack_cli_trace_export");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("t").display().to_string();
        let out = run(argv(&format!(
            "trace --topology ft --n 8 --d 2 --r 2 --pattern random --rate 0.2 \
             --packets 20 --out {prefix}"
        )))
        .unwrap();
        assert!(out.contains("FT(64,2,2)"));
        assert!(out.contains(".events.ndjson"));
        let nd = std::fs::read_to_string(format!("{prefix}.events.ndjson")).unwrap();
        assert!(!nd.is_empty());
        assert!(nd.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let csv = std::fs::read_to_string(format!("{prefix}.epochs.csv")).unwrap();
        assert!(csv.starts_with("epoch,"));
        assert!(csv.lines().count() >= 2);
        let chrome = std::fs::read_to_string(format!("{prefix}.chrome.json")).unwrap();
        assert!(chrome.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn monitor_detects_hotspot_above_saturation() {
        let dir = std::env::temp_dir().join("fasttrack_cli_monitor");
        std::fs::create_dir_all(&dir).unwrap();
        let health = dir.join("health.json").display().to_string();
        let metrics = dir.join("metrics.prom").display().to_string();
        // FT(64,2,2) RANDOM at rate 1.0 is far above saturation; with
        // starvation muted the retained reports are hot links.
        let out = run(argv(&format!(
            "monitor --noc ft:8:2:2 --pattern random --rate 1.0 --packets 100 \
             --seed 7 --snapshot 200 --stall-streak 1000000 \
             --health {health} --metrics {metrics}"
        )))
        .unwrap();
        assert!(out.contains("[monitor] cycle="), "snapshots missing: {out}");
        assert!(out.contains("FT(64,2,2)"));
        assert!(
            out.contains("hotspot"),
            "saturated run must trip the hotspot detector: {out}"
        );
        let json = std::fs::read_to_string(&health).unwrap();
        assert!(json.contains("\"healthy\":false"));
        assert!(json.ends_with("\n"), "health JSON ends with a newline");
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("fasttrack_injected_total"));
        assert!(prom.contains("fasttrack_delivery_latency_cycles_count"));
    }

    #[test]
    fn monitor_healthy_run_reports_ok() {
        let out = run(argv(
            "monitor --noc hoplite:4 --pattern random --rate 0.05 --packets 20 \
             --snapshot 100000",
        ))
        .unwrap();
        assert!(out.contains("health: OK"), "{out}");
    }

    #[test]
    fn monitor_rejects_degenerate_knobs() {
        assert!(matches!(
            run(argv("monitor --noc hoplite:4 --snapshot 0")),
            Err(CliError::Other(_))
        ));
        assert!(matches!(
            run(argv("monitor --noc hoplite:4 --flight-recorder 0")),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn sweep_health_sidecar_is_deterministic_and_rows_unchanged() {
        let dir = std::env::temp_dir().join("fasttrack_cli_sweep_health");
        std::fs::create_dir_all(&dir).unwrap();
        let h1 = dir.join("h1.json").display().to_string();
        let h8 = dir.join("h8.json").display().to_string();
        let base = "sweep --grid hoplite:4;random;0.1,1.0 --packets 25 --seed 3 --out csv";
        let plain = run(argv(&format!("{base} --threads 1"))).unwrap();
        let with1 = run(argv(&format!("{base} --threads 1 --health {h1}"))).unwrap();
        let with8 = run(argv(&format!("{base} --threads 8 --health {h8}"))).unwrap();
        assert_eq!(plain, with1, "health sidecar changed the CSV");
        assert_eq!(plain, with8, "thread count leaked into the CSV");
        assert!(plain.ends_with('\n') && !plain.ends_with("\n\n"));
        let j1 = std::fs::read_to_string(&h1).unwrap();
        let j8 = std::fs::read_to_string(&h8).unwrap();
        assert_eq!(j1, j8, "health JSON must be thread-count independent");
        assert!(j1.starts_with('[') && j1.ends_with("]\n"));
        assert!(j1.contains("\"health\":"));
    }

    #[test]
    fn trace_flight_recorder_replays_excerpt() {
        let dir = std::env::temp_dir().join("fasttrack_cli_flight");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("f").display().to_string();
        let out = run(argv(&format!(
            "trace --noc hoplite:4 --pattern random --rate 0.3 --packets 30 \
             --flight-recorder 16 --out {prefix}"
        )))
        .unwrap();
        assert!(out.contains("flight recorder K=16"), "{out}");
        let nd = std::fs::read_to_string(format!("{prefix}.flight.ndjson")).unwrap();
        assert!(!nd.is_empty());
        assert!(nd.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        // Every line the flight recorder kept is also in the full log.
        let full = std::fs::read_to_string(format!("{prefix}.events.ndjson")).unwrap();
        let full: std::collections::HashSet<&str> = full.lines().collect();
        assert!(nd.lines().all(|l| full.contains(l)));
        let chrome = std::fs::read_to_string(format!("{prefix}.flight.chrome.json")).unwrap();
        assert!(chrome.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn trace_rejects_unknown_topology() {
        assert!(matches!(
            run(argv("trace --topology ring --n 4")),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            run(argv("bogus")),
            Err(CliError::UnknownCommand(_))
        ));
        assert!(matches!(run(argv("simulate")), Err(CliError::Args(_))));
        assert!(matches!(
            run(argv("simulate --noc mesh:4")),
            Err(CliError::Spec(_))
        ));
        assert!(matches!(
            run(argv("trace --noc hoplite:4 --file /definitely/not/here")),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn faults_dead_links_degrade_gracefully() {
        let out = run(argv(
            "faults --noc ft:8:2:2 --pattern random --rate 0.3 --packets 40 \
             --seed 5 --dead-links 2 --fault-seed 11",
        ))
        .unwrap();
        assert!(out.contains("fault plan: 2 faults"), "{out}");
        assert!(out.contains("dead link"), "{out}");
        assert!(out.contains("healthy baseline:"), "{out}");
        assert!(out.contains("faulted fabric:"), "{out}");
        // Traffic deflects around the dead express links (stranded
        // packets at a full router may still drop — exactly accounted).
        assert!(out.contains("rerouted around dead links"), "{out}");
        assert!(out.contains("conservation: exact"), "{out}");
        assert!(out.contains("throughput"), "{out}");
    }

    #[test]
    fn faults_fail_stop_drops_and_conserves() {
        let dir = std::env::temp_dir().join("fasttrack_cli_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let health = dir.join("health.json").display().to_string();
        let out = run(argv(&format!(
            "faults --noc hoplite:4 --pattern random --rate 0.5 --packets 60 \
             --seed 3 --fail-stop 1 --window 20:200 --health {health}"
        )))
        .unwrap();
        assert!(out.contains("fail-stop router"), "{out}");
        assert!(out.contains("conservation: exact"), "{out}");
        let json = std::fs::read_to_string(&health).unwrap();
        assert!(json.contains("\"dropped\":"), "{json}");
    }

    #[test]
    fn faults_empty_plan_is_the_baseline() {
        let out = run(argv("faults --noc hoplite:4 --rate 0.2 --packets 20")).unwrap();
        assert!(out.contains("fault plan: empty"), "{out}");
        assert!(out.contains("throughput 100.0% of baseline"), "{out}");
        assert!(
            out.contains("degraded: 0 packets dropped, 0 rerouted"),
            "{out}"
        );
    }

    #[test]
    fn faults_rejects_bad_window() {
        assert!(matches!(
            run(argv("faults --noc hoplite:4 --window 50:50")),
            Err(CliError::Other(_))
        ));
        assert!(matches!(
            run(argv("faults --noc hoplite:4 --window nonsense")),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn sweep_resume_restores_and_matches_golden_csv() {
        let dir = std::env::temp_dir().join("fasttrack_cli_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("golden.journal");
        let partial = dir.join("partial.journal");
        let _ = std::fs::remove_file(&golden);
        let base = "sweep --grid hoplite:4,ft:4:2:1;random;0.1,0.5 --packets 25 --seed 9";
        let full = run(argv(&format!("{base} --resume {}", golden.display()))).unwrap();
        assert!(full.starts_with("config,channels,"), "{full}");
        assert_eq!(full.lines().count(), 1 + 4);

        // Kill the run mid-grid: keep the header plus two records, with
        // a torn tail, then resume against the truncated journal.
        let text = std::fs::read_to_string(&golden).unwrap();
        let kept: Vec<&str> = text.lines().take(3).collect();
        std::fs::write(&partial, format!("{}\nok 2 torn", kept.join("\n"))).unwrap();
        let resumed = run(argv(&format!("{base} --resume {}", partial.display()))).unwrap();
        assert_eq!(resumed, full, "resumed CSV must be byte-identical");

        // A different grid is refused outright.
        let other = format!(
            "sweep --grid hoplite:4,ft:4:2:1;random;0.1,0.5 --packets 25 --seed 10 \
             --resume {}",
            partial.display()
        );
        let err = run(argv(&other)).unwrap_err();
        assert!(err.to_string().contains("refusing to resume"), "{err}");

        // Resume output is CSV; a table cannot be reconstructed.
        assert!(matches!(
            run(argv(&format!(
                "{base} --resume {} --out table",
                golden.display()
            ))),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn sweep_cycle_budget_turns_slow_points_into_errors() {
        // A 5-cycle budget truncates every point: the CSV is just the
        // header, and each point failed with a typed error (on stderr).
        let out = run(argv(
            "sweep --grid hoplite:4;random;0.5 --packets 50 --cycle-budget 5 --out csv",
        ))
        .unwrap();
        assert_eq!(out.lines().count(), 1, "{out}");
        // With a generous budget the rows come back.
        let ok = run(argv(
            "sweep --grid hoplite:4;random;0.5 --packets 50 --cycle-budget 2000000 \
             --retries 1 --out csv",
        ))
        .unwrap();
        assert_eq!(ok.lines().count(), 2, "{ok}");
        let plain = run(argv(
            "sweep --grid hoplite:4;random;0.5 --packets 50 --out csv",
        ))
        .unwrap();
        assert_eq!(ok, plain, "hardened run must not perturb healthy rows");
    }

    #[test]
    fn help_and_empty_print_usage() {
        assert!(run(vec![]).unwrap().contains("USAGE"));
        assert!(run(argv("help")).unwrap().contains("EXAMPLES"));
    }

    #[test]
    fn profile_emits_span_tree_and_chrome_trace() {
        let dir = std::env::temp_dir().join("fasttrack_cli_profile");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("p").display().to_string();
        // The acceptance workload: an FT(64,2,2) run.
        let out = run(argv(&format!(
            "profile --noc ft:8:2:2 --rate 0.3 --packets 50 --out {prefix}"
        )))
        .unwrap();
        assert!(out.contains("FT(64,2,2)"), "{out}");
        assert!(out.contains("session.drive"), "{out}");
        assert!(out.contains("cycles/s"), "{out}");
        assert!(out.contains("route decisions"), "{out}");
        let chrome = std::fs::read_to_string(format!("{prefix}.chrome.json")).unwrap();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"name\":\"session.drive\""));
        // --json keeps stdout machine-readable.
        let json = run(argv("profile --noc hoplite:4 --packets 20 --json")).unwrap();
        assert!(json.starts_with('{') && json.ends_with('\n'), "{json}");
        assert!(json.contains("\"schema\":\"fasttrack-profile-v1\""));
        assert!(json.contains("\"phases\":["));
    }

    #[test]
    fn profile_defaults_to_the_paper_fabric() {
        let out = run(argv("profile --packets 10")).unwrap();
        assert!(out.contains("FT(64,2,2)"), "{out}");
    }

    #[test]
    fn sweep_profile_leaves_csv_byte_identical() {
        let base = "sweep --grid hoplite:4;random;0.1,0.5 --packets 25 --seed 9 --out csv";
        let plain = run(argv(base)).unwrap();
        let profiled = run(argv(&format!("{base} --profile"))).unwrap();
        assert_eq!(plain, profiled, "--profile must not perturb the CSV");
        // Timing requires the plain path.
        assert!(matches!(
            run(argv(&format!("{base} --profile --retries 1"))),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn monitor_profile_series_ride_the_metrics_exposition() {
        let dir = std::env::temp_dir().join("fasttrack_cli_monitor_profile");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.prom").display().to_string();
        let out = run(argv(&format!(
            "monitor --noc hoplite:4 --rate 0.1 --packets 20 --snapshot 100000 \
             --profile --metrics {metrics}"
        )))
        .unwrap();
        assert!(out.contains("session.drive"), "{out}");
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("fasttrack_profile_cycles_per_sec"), "{prom}");
        assert!(prom.contains("fasttrack_profile_route_decisions_total"));
        assert!(prom.contains("fasttrack_injected_total"));
    }

    #[test]
    fn faults_profile_appends_phase_summary() {
        let out = run(argv(
            "faults --noc hoplite:4 --rate 0.2 --packets 20 --dead-links 1 \
             --fault-seed 3 --profile",
        ))
        .unwrap();
        assert!(out.contains("session.build.fault_validate"), "{out}");
        assert!(out.contains("conservation: exact"), "{out}");
    }

    fn snapshot_fixture(pps_scale: f64) -> BenchSnapshot {
        let grid = snapshot::hotpath_grid(2000);
        let m = snapshot::HotpathMeasurement {
            serial_secs: 0.8 / pps_scale,
            parallel_secs: 0.2,
            lut_secs: 0.9,
            direct_secs: 1.1,
            delivered: 1_024_000,
        };
        snapshot::snapshot_from(&grid, &m)
    }

    #[test]
    fn bench_diff_and_gate_round_trip() {
        let dir = std::env::temp_dir().join("fasttrack_cli_bench");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json").display().to_string();
        let fast = dir.join("fast.json").display().to_string();
        let slow = dir.join("slow.json").display().to_string();
        snapshot_fixture(1.0).save(&base).unwrap();
        snapshot_fixture(1.05).save(&fast).unwrap();
        snapshot_fixture(0.85).save(&slow).unwrap();

        let diff = run(argv(&format!(
            "bench diff --baseline {base} --candidate {fast}"
        )))
        .unwrap();
        assert!(diff.contains("packets_per_sec"), "{diff}");
        let json = run(argv(&format!(
            "bench diff --baseline {base} --candidate {fast} --json"
        )))
        .unwrap();
        assert!(json.contains("\"delta_pct\""), "{json}");

        let pass = run(argv(&format!(
            "bench gate --baseline {base} --candidate {fast} --tolerance 10"
        )))
        .unwrap();
        assert!(pass.contains("PASS"), "{pass}");
        // An injected 15% slowdown fails the 10% gate with a nonzero
        // exit (Err -> exit 1 in main).
        let err = run(argv(&format!(
            "bench gate --baseline {base} --candidate {slow} --tolerance 10"
        )))
        .unwrap_err();
        assert!(err.to_string().contains("FAIL"), "{err}");
    }

    #[test]
    fn bench_migrate_rewrites_legacy_snapshot() {
        let dir = std::env::temp_dir().join("fasttrack_cli_bench_migrate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json").display().to_string();
        std::fs::write(
            &path,
            "{\n  \"bench\": \"sweep_scaling\",\n  \"grid_points\": 8,\n  \
             \"packets_per_pe\": 2000,\n  \"pre_kernel_serial_secs\": 1.240,\n  \
             \"serial_secs\": 0.855,\n  \"improvement_vs_pre_kernel\": 1.45,\n  \
             \"lut_secs\": 0.972,\n  \"direct_secs\": 1.210,\n  \
             \"lut_vs_direct_speedup\": 1.25,\n  \"parallel8_secs\": 0.946,\n  \
             \"cores\": 1\n}\n",
        )
        .unwrap();
        let out = run(argv(&format!("bench migrate --file {path}"))).unwrap();
        assert!(out.contains("schema_version 2"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema_version\": 2"), "{text}");
        assert!(text.contains("\"commit\": \"unknown\""));
        assert!(text.contains("\"grid_fingerprint\""));
        // Migration is idempotent.
        run(argv(&format!("bench migrate --file {path}"))).unwrap();
        assert_eq!(text, std::fs::read_to_string(&path).unwrap());
        // The migrated baseline gates against a current-format snapshot.
        let cand = dir.join("cand.json").display().to_string();
        snapshot_fixture(1.0).save(&cand).unwrap();
        let pass = run(argv(&format!(
            "bench gate --baseline {path} --candidate {cand} --tolerance 10"
        )))
        .unwrap();
        assert!(pass.contains("PASS"), "{pass}");
    }

    #[test]
    fn bench_rejects_bad_invocations() {
        assert!(matches!(run(argv("bench")), Err(CliError::Other(_))));
        assert!(matches!(run(argv("bench bogus")), Err(CliError::Other(_))));
        assert!(matches!(
            run(argv(
                "bench diff --baseline /not/here --candidate /not/here"
            )),
            Err(CliError::Io(_))
        ));
        assert!(matches!(
            run(argv("bench gate")),
            Err(CliError::Args(ArgError::MissingFlag("baseline")))
        ));
    }

    #[test]
    fn record_then_replay_verifies_expectation() {
        let dir = std::env::temp_dir().join("fasttrack_cli_record");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synthetic.trace").display().to_string();
        let out = run(argv(&format!(
            "record --noc ft:4:2:1 --pattern hotspot:60 --rate 0.5 --packets 30 --seed 9 --out {path}"
        )))
        .unwrap();
        assert!(out.contains("recorded"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(fasttrack_traffic::scenario::SCENARIO_MAGIC));
        assert!(text.contains("\"generator\":\"bernoulli:hotspot:60\""));
        let replayed = run(argv(&format!("replay --file {path}"))).unwrap();
        assert!(replayed.contains("expectation verified"), "{replayed}");
    }

    #[test]
    fn record_faulted_workload_replays_identically() {
        let dir = std::env::temp_dir().join("fasttrack_cli_record_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spmv.trace").display().to_string();
        let out = run(argv(&format!(
            "record --workload spmv --dead-links 2 --fault-seed 5 --out {path}"
        )))
        .unwrap();
        assert!(out.contains("recorded"), "{out}");
        let trace = ScenarioTrace::decode(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(trace.header.faults.len(), 2);
        assert_eq!(trace.header.generator, "spmv");
        let replayed = run(argv(&format!("replay --file {path}"))).unwrap();
        assert!(replayed.contains("expectation verified"), "{replayed}");
    }

    #[test]
    fn replay_rejects_corrupt_and_missing_files() {
        let dir = std::env::temp_dir().join("fasttrack_cli_replay_bad");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            run(argv("replay --file /not/here.trace")),
            Err(CliError::Io(_))
        ));
        let path = dir.join("bad.trace");
        std::fs::write(&path, "not a scenario trace\n").unwrap();
        let err = run(argv(&format!("replay --file {}", path.display()))).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn record_rejects_unknown_workload() {
        let err = run(argv("record --workload lapack --out /tmp/x.trace")).unwrap_err();
        assert!(err.to_string().contains("unknown workload"), "{err}");
    }

    #[test]
    fn storm_end_to_end_reports_both_runs() {
        let out = run(argv(
            "storm --noc ft:4:2:1 --channels 2 --rate 0.3 --packets 60 \
             --kills 20 --duration 1500 --threads 2 --min-delivered 0.0",
        ))
        .unwrap();
        assert!(out.contains("storm: 20 kill(s)/kcycle"), "{out}");
        assert!(out.contains("chains off:"), "{out}");
        assert!(out.contains("SLO: 1/1 point(s) met"), "{out}");
    }

    #[test]
    fn storm_json_writes_slo_report() {
        let path = std::env::temp_dir().join("fasttrack_cli_storm_slo.json");
        let _ = std::fs::remove_file(&path);
        let out = run(argv(&format!(
            "storm --noc ft:4:2:1 --rate 0.3 --packets 60 --kills 20 \
             --duration 1500 --min-delivered 0.0 --json --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("\"points\":["), "{out}");
        assert!(out.contains("\"chains_off\":["), "{out}");
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, out, "--out must write exactly the --json report");
        assert!(written.contains("\"delivered_fraction\":"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn storm_mixed_grid_runs_non_torus_points_chainless() {
        // A grid containing SHG and mesh points still validates: the
        // torus-only fallback chains are dropped for the whole grid.
        let out = run(argv(
            "storm --grid ft:4:2:1,shg:4:2,mesh:4:2;random;0.3 --packets 40 \
             --kills 20 --duration 1500 --channels 1 --min-delivered 0.0",
        ))
        .unwrap();
        assert!(out.contains("SHG(16,2)"), "{out}");
        assert!(out.contains("Mesh 4x4"), "{out}");
        assert!(out.contains("SLO: 3/3 point(s) met"), "{out}");
    }

    #[test]
    fn storm_gate_exits_nonzero_when_slo_missed() {
        let err = run(argv(
            "storm --noc ft:4:2:1 --rate 0.3 --packets 60 --kills 20 \
             --duration 1500 --min-delivered 1.01",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("availability SLO missed"), "{err}");
    }

    #[test]
    fn faults_json_reports_conservation_and_fallback_counters() {
        let out = run(argv(
            "faults --noc ftlite:8:4:1 --rate 0.5 --packets 100 \
             --dead-links 4 --down-links 2 --json",
        ))
        .unwrap();
        assert!(out.starts_with('{') && out.ends_with("}\n"), "{out}");
        assert!(out.contains("\"conserved\":true"), "{out}");
        assert!(out.contains("\"fallback_demotions\":"), "{out}");
        assert!(out.contains("\"baseline\":"), "{out}");
    }

    #[test]
    fn fuzz_smoke_runs_clean_and_writes_no_bug_traces() {
        let dir = std::env::temp_dir().join("fasttrack_cli_fuzz");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(argv(&format!(
            "fuzz --iters 20 --seed 11 --threads 2 --out {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("20 scenarios"), "{out}");
        assert!(
            out.contains("no bug-class") || out.contains("ran clean"),
            "{out}"
        );
        // Every archived trace decodes and replays through the library.
        for entry in std::fs::read_dir(&dir).into_iter().flatten().flatten() {
            let text = std::fs::read_to_string(entry.path()).unwrap();
            let trace = ScenarioTrace::decode(&text).unwrap();
            assert!(trace.header.noc_config().is_ok());
        }
    }

    #[test]
    fn attribute_synthetic_reports_exact_accounting() {
        let out = run(argv(
            "attribute --noc ft:4:2:1 --pattern random --rate 0.8 --packets 40 --seed 3",
        ))
        .unwrap();
        assert!(out.contains("where the cycles went"), "{out}");
        assert!(out.contains("queue-wait"), "{out}");
        assert!(out.contains("express traffic fraction"), "{out}");
        assert!(out.contains("route decisions [ok]"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
    }

    #[test]
    fn attribute_json_and_metrics_outputs() {
        let dir = std::env::temp_dir().join("fasttrack_cli_attribute");
        std::fs::create_dir_all(&dir).unwrap();
        let prom = dir.join("attrib.prom");
        let out = run(argv(&format!(
            "attribute --noc hoplite:4 --rate 0.5 --packets 30 --seed 5 --json --metrics {}",
            prom.display()
        )))
        .unwrap();
        assert!(
            out.contains("\"schema\":\"fasttrack-attribution-v1\""),
            "{out}"
        );
        let exposition = std::fs::read_to_string(&prom).unwrap();
        assert!(
            exposition.contains("fasttrack_attrib_packets_total"),
            "{exposition}"
        );
        assert!(
            exposition.contains("fasttrack_attrib_queue_wait_cycles{quantile=\"0.99\"}"),
            "{exposition}"
        );
        // Hoplite has no express wires: every transit cycle is ring-class.
        assert!(
            exposition.contains("fasttrack_attrib_express_cycles_total 0"),
            "{exposition}"
        );
    }

    #[test]
    fn attribute_and_explain_round_trip_a_recorded_trace() {
        let dir = std::env::temp_dir().join("fasttrack_cli_attribute_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("run.trace");
        run(argv(&format!(
            "record --noc ft:4:2:1 --pattern transpose --rate 0.6 --packets 25 --seed 8 --out {}",
            trace.display()
        )))
        .unwrap();
        let out = run(argv(&format!("attribute --trace {}", trace.display()))).unwrap();
        assert!(out.contains("route decisions [ok]"), "{out}");
        let explained = run(argv(&format!("explain 0 --trace {}", trace.display()))).unwrap();
        assert!(explained.contains("journey:"), "{explained}");
        assert!(explained.contains("inject ->"), "{explained}");
        assert!(explained.contains("flight recorder @"), "{explained}");
        // Packet 0's accounting is exact, or the packet never delivered —
        // either way the journey is rendered without a mismatch.
        assert!(!explained.contains("MISMATCH"), "{explained}");
    }

    #[test]
    fn explain_argument_errors() {
        let err = run(argv("explain")).unwrap_err();
        assert!(err.to_string().contains("packet id"), "{err}");
        let err = run(argv("explain banana --noc ft:4:2:1")).unwrap_err();
        assert!(err.to_string().contains("must be a number"), "{err}");
        let err = run(argv("explain 999999 --noc ft:4:2:1 --packets 5 --seed 1")).unwrap_err();
        assert!(err.to_string().contains("never appeared"), "{err}");
        let err = run(argv("explain 0")).unwrap_err();
        assert!(err.to_string().contains("--trace <path> or --noc"), "{err}");
    }

    #[test]
    fn sweep_attribution_sidecar_keeps_rows_identical() {
        let dir = std::env::temp_dir().join("fasttrack_cli_sweep_attrib");
        std::fs::create_dir_all(&dir).unwrap();
        let sidecar = dir.join("attrib.csv");
        let plain = run(argv(
            "sweep --grid hoplite:4,ft:4:2:1;random;0.5 --packets 60 --seed 4 --out csv",
        ))
        .unwrap();
        let with = run(argv(&format!(
            "sweep --grid hoplite:4,ft:4:2:1;random;0.5 --packets 60 --seed 4 --out csv --attribution {}",
            sidecar.display()
        )))
        .unwrap();
        assert_eq!(plain, with, "sweep CSV must not change with --attribution");
        let csv = std::fs::read_to_string(&sidecar).unwrap();
        let mut lines = csv.lines();
        assert!(
            lines.next().unwrap().starts_with("index,config,pattern"),
            "{csv}"
        );
        assert_eq!(lines.count(), 2, "one sidecar row per sweep point: {csv}");
        assert!(!csv.contains(",false"), "all points reconcile: {csv}");
    }

    #[test]
    fn sweep_attribution_rejects_conflicting_flags() {
        let err = run(argv(
            "sweep --noc ft:4:2:1 --attribution /tmp/a.csv --health /tmp/h.json",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("separate sidecars"), "{err}");
        let err = run(argv(
            "sweep --noc ft:4:2:1 --attribution /tmp/a.csv --retries 2",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("cannot be combined"), "{err}");
        let err = run(argv(
            "sweep --noc ft:4:2:1 --attribution /tmp/a.csv --resume /tmp/j",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
    }
}
