//! # fasttrack-cli
//!
//! Command-line interface for the FastTrack NoC simulator. The binary is
//! `fasttrack`; all logic lives in this library so it is unit-testable:
//!
//! * [`spec`] — textual NoC/pattern specifications (`ft:8:2:1`,
//!   `local:2`),
//! * [`args`] — dependency-free `--flag value` parsing,
//! * [`commands`] — the `simulate` / `sweep` / `cost` / `trace`
//!   subcommands.
//!
//! ```sh
//! fasttrack simulate --noc ft:8:2:1 --pattern random --rate 0.5
//! fasttrack cost --noc ft:8:2:1 --width 256
//! fasttrack sweep --noc hoplite:8 --pattern bitcompl
//! fasttrack trace --noc hoplite:8 --file my.trace
//! ```

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod spec;

pub use commands::{run, CliError, USAGE};
