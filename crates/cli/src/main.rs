//! The `fasttrack` binary: parse argv, dispatch, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fasttrack_cli::run(args) {
        // Commands that produce machine-readable output (CSV) already
        // end with exactly one newline; don't append a second.
        Ok(output) if output.ends_with('\n') => print!("{output}"),
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            // Usage helps with malformed invocations; runtime failures
            // (a failed regression gate, an I/O error) keep stderr to
            // the verdict itself.
            if matches!(
                e,
                fasttrack_cli::CliError::Args(_) | fasttrack_cli::CliError::UnknownCommand(_)
            ) {
                eprintln!("{}", fasttrack_cli::USAGE);
            }
            std::process::exit(1);
        }
    }
}
