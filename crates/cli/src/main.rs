//! The `fasttrack` binary: parse argv, dispatch, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fasttrack_cli::run(args) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", fasttrack_cli::USAGE);
            std::process::exit(1);
        }
    }
}
