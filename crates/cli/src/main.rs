//! The `fasttrack` binary: parse argv, dispatch, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fasttrack_cli::run(args) {
        // Commands that produce machine-readable output (CSV) already
        // end with exactly one newline; don't append a second.
        Ok(output) if output.ends_with('\n') => print!("{output}"),
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", fasttrack_cli::USAGE);
            std::process::exit(1);
        }
    }
}
