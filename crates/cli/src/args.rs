//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;
use std::fmt;

/// Errors raised while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no following value.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A required flag was absent.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending text.
        value: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgError::UnexpectedPositional(s) => write!(f, "unexpected argument {s:?}"),
            ArgError::MissingFlag(flag) => write!(f, "required flag --{flag} missing"),
            ArgError::BadValue { flag, value } => {
                write!(f, "flag {flag}: invalid value {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--flag value` pairs plus valueless `--switch` flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses a flat list of `--flag value` arguments.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] for dangling flags or stray positionals.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Flags, ArgError> {
        Self::parse_with_switches(args, &[])
    }

    /// Parses `--flag value` pairs where any flag named in `switches`
    /// is valueless (a boolean switch). Without the declaration a
    /// switch would swallow the next `--flag` as its value.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] for dangling flags or stray positionals.
    pub fn parse_with_switches<I: IntoIterator<Item = String>>(
        args: I,
        switches: &[&str],
    ) -> Result<Flags, ArgError> {
        let mut values = HashMap::new();
        let mut seen_switches = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError::UnexpectedPositional(arg));
            };
            if switches.contains(&name) {
                seen_switches.push(name.to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgError::MissingValue(arg.clone()))?;
            values.insert(name.to_string(), value);
        }
        Ok(Flags {
            values,
            switches: seen_switches,
        })
    }

    /// Whether a valueless switch (declared in
    /// [`Flags::parse_with_switches`]) was present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingFlag`] when absent.
    pub fn required(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.values
            .get(flag)
            .map(String::as_str)
            .ok_or(ArgError::MissingFlag(flag))
    }

    /// An optional string flag.
    pub fn optional(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// An optional numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparsable.
    pub fn numeric<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: format!("--{flag}"),
                value: v.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let f = Flags::parse(argv("--noc ft:8:2:1 --rate 0.5")).unwrap();
        assert_eq!(f.required("noc").unwrap(), "ft:8:2:1");
        assert_eq!(f.numeric("rate", 1.0).unwrap(), 0.5);
        assert_eq!(f.numeric("seed", 7u64).unwrap(), 7);
        assert_eq!(f.optional("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            Flags::parse(argv("--noc")),
            Err(ArgError::MissingValue(_))
        ));
        assert!(matches!(
            Flags::parse(argv("simulate --noc x")),
            Err(ArgError::UnexpectedPositional(_))
        ));
        let f = Flags::parse(argv("--rate abc")).unwrap();
        assert!(matches!(
            f.numeric::<f64>("rate", 1.0),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(
            f.required("noc"),
            Err(ArgError::MissingFlag("noc"))
        ));
    }

    #[test]
    fn switches_take_no_value() {
        let f = Flags::parse_with_switches(
            argv("--profile --noc ft:8:2:1 --json"),
            &["profile", "json"],
        )
        .unwrap();
        assert!(f.switch("profile"));
        assert!(f.switch("json"));
        assert!(!f.switch("verbose"));
        assert_eq!(f.required("noc").unwrap(), "ft:8:2:1");
        // Undeclared, --profile would swallow --noc as its value.
        let naive = Flags::parse(argv("--profile --noc ft:8:2:1")).unwrap_err();
        assert!(matches!(naive, ArgError::UnexpectedPositional(_)));
    }

    #[test]
    fn error_messages() {
        assert!(ArgError::MissingFlag("noc").to_string().contains("--noc"));
        assert!(ArgError::MissingValue("--x".into())
            .to_string()
            .contains("needs a value"));
    }
}
