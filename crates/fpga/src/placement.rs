//! Ring placement analysis: linear vs folded torus layouts.
//!
//! The paper locks routers to rectangular tiles and "adopts a folded
//! layout to balance wire lengths" (§V). This module computes the
//! physical span of every short and express link under both layouts,
//! quantifying why folding matters: a linear layout leaves one
//! full-chip wraparound wire per ring, while folding bounds every
//! neighbor link at two tile spans and every express link of length `D`
//! at about `2D` spans — the geometry that lets the FastTrack NoC keep
//! near-Hoplite clock rates (Table II).

/// How a ring of `n` routers is placed along a line of `n` tile slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingLayout {
    /// Ring order = physical order; the wrap link spans the whole ring.
    Linear,
    /// Classic folded (interleaved) order `0, n-1, 1, n-2, …`: all
    /// neighbor links span at most two slots.
    Folded,
}

impl RingLayout {
    /// Physical slot (0-based) of ring position `i` in a ring of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn slot_of(self, i: u16, n: u16) -> u16 {
        assert!(i < n);
        match self {
            RingLayout::Linear => i,
            RingLayout::Folded => {
                if i < n / 2 {
                    2 * i
                } else {
                    2 * (n - 1 - i) + 1
                }
            }
        }
    }

    /// Physical span, in tile slots, of the ring link from position `i`
    /// to position `(i + hop) % n`.
    pub fn link_span(self, i: u16, hop: u16, n: u16) -> u16 {
        let a = self.slot_of(i, n);
        let b = self.slot_of((i + hop) % n, n);
        a.abs_diff(b)
    }

    /// Spans of all `n` links of length `hop` in the ring.
    pub fn link_spans(self, hop: u16, n: u16) -> Vec<u16> {
        (0..n).map(|i| self.link_span(i, hop, n)).collect()
    }

    /// The longest link of length `hop` (the timing-critical one).
    pub fn max_link_span(self, hop: u16, n: u16) -> u16 {
        self.link_spans(hop, n).into_iter().max().unwrap_or(0)
    }
}

/// Summary of a layout's wire-length profile for an `FT(N², D, ·)` ring,
/// in SLICEs (slot spans × tile width).
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutReport {
    /// Layout analyzed.
    pub layout: RingLayout,
    /// Longest short-link span, SLICEs.
    pub max_short_slices: f64,
    /// Longest express-link span, SLICEs (0 when `d == 0`).
    pub max_express_slices: f64,
    /// Total wire length across all short links, SLICEs.
    pub total_short_slices: f64,
    /// Total wire length across all express links, SLICEs.
    pub total_express_slices: f64,
}

/// Analyzes a layout for a ring of `n` routers with tile width
/// `tile_slices` and express length `d` (0 = Hoplite).
pub fn analyze_layout(layout: RingLayout, n: u16, d: u16, tile_slices: f64) -> LayoutReport {
    let short = layout.link_spans(1, n);
    let express = if d > 0 {
        layout.link_spans(d, n)
    } else {
        Vec::new()
    };
    let to_slices = |spans: &[u16]| -> (f64, f64) {
        let max = spans.iter().copied().max().unwrap_or(0) as f64 * tile_slices;
        let total = spans.iter().map(|&s| s as f64).sum::<f64>() * tile_slices;
        (max, total)
    };
    let (max_short, total_short) = to_slices(&short);
    let (max_express, total_express) = to_slices(&express);
    LayoutReport {
        layout,
        max_short_slices: max_short,
        max_express_slices: max_express,
        total_short_slices: total_short,
        total_express_slices: total_express,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_slots_are_a_permutation() {
        for n in [4u16, 8, 16] {
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let s = RingLayout::Folded.slot_of(i, n);
                assert!(!seen[s as usize], "slot collision at {i}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn folded_order_matches_classic_interleave() {
        // n = 8: slots hold routers 0,7,1,6,2,5,3,4.
        let order: Vec<u16> = (0..8)
            .map(|s| {
                (0..8)
                    .find(|&i| RingLayout::Folded.slot_of(i, 8) == s)
                    .unwrap()
            })
            .collect();
        assert_eq!(order, vec![0, 7, 1, 6, 2, 5, 3, 4]);
    }

    #[test]
    fn linear_wrap_link_spans_whole_ring() {
        assert_eq!(RingLayout::Linear.max_link_span(1, 8), 7);
        // Folding bounds every neighbor link at 2 slots.
        assert_eq!(RingLayout::Folded.max_link_span(1, 8), 2);
    }

    #[test]
    fn folded_express_links_bounded_by_2d() {
        for n in [8u16, 16] {
            for d in [2u16, 4] {
                let max = RingLayout::Folded.max_link_span(d, n);
                assert!(max <= 2 * d, "n={n} d={d}: span {max} > 2D");
                // Linear layout's wrap express link spans nearly the ring.
                let lin = RingLayout::Linear.max_link_span(d, n);
                assert_eq!(lin, n - d);
            }
        }
    }

    #[test]
    fn folded_beats_linear_for_both_link_kinds() {
        for n in [8u16, 16] {
            for d in [1u16, 2, 4] {
                let lin = analyze_layout(RingLayout::Linear, n, d, 27.0);
                let fold = analyze_layout(RingLayout::Folded, n, d, 27.0);
                assert!(
                    fold.max_short_slices < lin.max_short_slices,
                    "folded must kill the wrap link (n={n})"
                );
                // Diametric express links (D == N/2) connect the two
                // ends of the fold and are the one case where folding
                // loses; the paper's D=2..3 sweet spot is unaffected.
                if d < n / 2 {
                    assert!(
                        fold.max_express_slices <= lin.max_express_slices,
                        "n={n} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn report_totals_positive_and_consistent() {
        let r = analyze_layout(RingLayout::Folded, 8, 2, 27.0);
        assert_eq!(r.layout, RingLayout::Folded);
        assert!(r.total_short_slices > 0.0);
        assert!(r.total_express_slices > 0.0);
        assert!(r.max_short_slices <= r.total_short_slices);
        // Hoplite case: no express wires.
        let h = analyze_layout(RingLayout::Folded, 8, 0, 27.0);
        assert_eq!(h.max_express_slices, 0.0);
        assert_eq!(h.total_express_slices, 0.0);
    }

    #[test]
    #[should_panic]
    fn slot_of_bounds_checked() {
        RingLayout::Folded.slot_of(8, 8);
    }
}
