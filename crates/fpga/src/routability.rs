//! NoC frequency estimation and routability analysis (paper Table II and
//! Figure 10).
//!
//! A NoC configuration at a given datawidth either **fits** the device or
//! not (wiring capacity across router-tile boundaries, plus LUT/FF
//! budget), and if it fits it closes timing at a frequency limited by the
//! slowest of:
//!
//! * the short link (one tile span, one router LUT stage),
//! * the express link (a `D`-tile physical bypass wire), and
//! * a fabric/congestion cap that degrades with system size and
//!   datawidth (calibrated to Table II: Hoplite 8×8 @256 b ≈ 344 MHz,
//!   FT(64,2,·) ≈ 320 MHz, and to Figure 10's width/size trends).

use fasttrack_core::config::NocConfig;

use crate::device::Device;
use crate::resources::noc_cost;
use crate::wire::{physical_express_mhz, virtual_express_mhz};

/// Why a configuration does not fit the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Channel wiring demand exceeds the tile-boundary wiring capacity.
    WiringOverflow,
    /// Router logic exceeds the device LUT budget.
    LutOverflow,
    /// Router registers exceed the device FF budget.
    FfOverflow,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::WiringOverflow => f.write_str("wiring capacity exceeded"),
            FitError::LutOverflow => f.write_str("device LUT capacity exceeded"),
            FitError::FfOverflow => f.write_str("device FF capacity exceeded"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fabric/congestion frequency cap, MHz (calibrated; see module docs).
fn fabric_cap_mhz(n: u16, width: u32) -> f64 {
    640.0 - 72.0 * (n as f64).log2() - 10.0 * (width.max(8) as f64).log2()
}

/// Checks whether `channels` copies of the NoC at `width` bits fit the
/// device.
///
/// # Errors
///
/// Returns the binding [`FitError`] when the configuration does not fit.
pub fn check_fit(
    device: &Device,
    cfg: &NocConfig,
    width: u32,
    channels: u32,
) -> Result<(), FitError> {
    let cost = noc_cost(cfg, width).replicated(channels);
    if cost.wire_bits_per_cut as f64 > device.channel_capacity(cfg.n()) {
        return Err(FitError::WiringOverflow);
    }
    if cost.luts > device.luts {
        return Err(FitError::LutOverflow);
    }
    if cost.ffs > device.ffs {
        return Err(FitError::FfOverflow);
    }
    Ok(())
}

/// Estimated post-route frequency, MHz, of a fitting configuration.
///
/// # Errors
///
/// Returns the binding [`FitError`] when the configuration does not fit
/// (Figure 10's "NA" cells).
pub fn noc_frequency_mhz(
    device: &Device,
    cfg: &NocConfig,
    width: u32,
    channels: u32,
) -> Result<f64, FitError> {
    check_fit(device, cfg, width, channels)?;
    let tile = device.tile_width_slices(cfg.n()).max(1.0);
    let pipeline = cfg.link_pipeline();

    // Short link: register → router LUT stage → register, one tile span;
    // extra pipeline registers (paper §V) split the wire into shorter
    // timing segments (the segment containing the router mux binds).
    let short_seg = (tile / pipeline.short_cycles() as f64).ceil().max(1.0) as u32;
    let short = virtual_express_mhz(device, short_seg, 1);

    // Express link: physical bypass wire over D tiles, skipping D
    // stages, likewise segmented by its pipeline registers.
    let express = if cfg.has_express() {
        let len = (cfg.d() as f64 * tile / pipeline.express_cycles() as f64)
            .ceil()
            .max(1.0) as u32;
        physical_express_mhz(device, len, cfg.d() as u32)
    } else {
        f64::INFINITY
    };

    let fabric = fabric_cap_mhz(cfg.n(), width);
    // Extra channels add placement pressure around the shared PE.
    let channel_derate = 1.0 - 0.03 * (channels.saturating_sub(1)) as f64;

    Ok(short.min(express).min(fabric).max(50.0) * channel_derate)
}

/// Largest datawidth (from the paper's sweep set) that fits, if any.
pub fn peak_datawidth(device: &Device, cfg: &NocConfig, channels: u32) -> Option<u32> {
    FIG10_WIDTHS
        .iter()
        .rev()
        .copied()
        .find(|&w| check_fit(device, cfg, w, channels).is_ok())
}

/// The datawidth sweep of Figure 10.
pub const FIG10_WIDTHS: [u32; 12] = [8, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024];

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::FtPolicy;

    fn dev() -> Device {
        Device::virtex7_485t()
    }

    fn ft(n: u16, d: u16, r: u16) -> NocConfig {
        NocConfig::fasttrack(n, d, r, FtPolicy::Full).unwrap()
    }

    #[test]
    fn table2_frequencies() {
        let d = dev();
        // Paper Table II: Hoplite 344 MHz, FT(64,2,1) 320, FT(64,2,2) 323.
        let hoplite = noc_frequency_mhz(&d, &NocConfig::hoplite(8).unwrap(), 256, 1).unwrap();
        assert!((330.0..=360.0).contains(&hoplite), "Hoplite {hoplite}");
        let ft1 = noc_frequency_mhz(&d, &ft(8, 2, 1), 256, 1).unwrap();
        assert!((305.0..=340.0).contains(&ft1), "FT(64,2,1) {ft1}");
        // "operates at almost the same clock frequency" (0.93×).
        let ratio = ft1 / hoplite;
        assert!((0.85..=1.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn paper_anchor_4x4_d2_supports_512() {
        let d = dev();
        assert!(check_fit(&d, &ft(4, 2, 1), 512, 1).is_ok());
        assert_eq!(
            check_fit(&d, &ft(4, 2, 1), 1024, 1),
            Err(FitError::WiringOverflow)
        );
    }

    #[test]
    fn peak_width_shrinks_with_size_and_express() {
        let d = dev();
        let h4 = peak_datawidth(&d, &NocConfig::hoplite(4).unwrap(), 1).unwrap();
        let h8 = peak_datawidth(&d, &NocConfig::hoplite(8).unwrap(), 1).unwrap();
        let h16 = peak_datawidth(&d, &NocConfig::hoplite(16).unwrap(), 1).unwrap();
        assert!(h4 >= h8 && h8 >= h16, "{h4} {h8} {h16}");
        let f8 = peak_datawidth(&d, &ft(8, 2, 1), 1).unwrap();
        assert!(f8 < h8, "express wiring must reduce peak width");
    }

    #[test]
    fn frequency_declines_with_width_and_size() {
        let d = dev();
        let cfg = NocConfig::hoplite(8).unwrap();
        let f32b = noc_frequency_mhz(&d, &cfg, 32, 1).unwrap();
        let f256b = noc_frequency_mhz(&d, &cfg, 256, 1).unwrap();
        assert!(f32b > f256b);
        let cfg4 = NocConfig::hoplite(4).unwrap();
        let f4 = noc_frequency_mhz(&d, &cfg4, 256, 1).unwrap();
        assert!(f4 > f256b, "smaller systems close timing faster");
    }

    #[test]
    fn multichannel_derates_frequency() {
        let d = dev();
        let cfg = NocConfig::hoplite(8).unwrap();
        let f1 = noc_frequency_mhz(&d, &cfg, 64, 1).unwrap();
        let f3 = noc_frequency_mhz(&d, &cfg, 64, 3).unwrap();
        assert!(f3 < f1);
    }

    #[test]
    fn lut_overflow_detected() {
        let d = Device {
            luts: 10_000,
            ..dev()
        };
        assert_eq!(
            check_fit(&d, &ft(8, 2, 1), 64, 1),
            Err(FitError::LutOverflow)
        );
    }

    #[test]
    fn fit_error_display() {
        assert!(FitError::WiringOverflow.to_string().contains("wiring"));
    }
}
