//! FPGA wire-delay characterization (paper §III, Figures 4 and 6).
//!
//! The paper runs two placement experiments on the Virtex-7 485T:
//!
//! * **Virtual express links** (Fig 4): two registers `Distance` SLICEs
//!   apart with `Hops` LUT stages between them — the SMART-style model
//!   where a packet tunnels through routers combinationally. On an FPGA
//!   this collapses to ≈200 MHz with two or more LUT hops because every
//!   hop pays the fabric's entry/exit penalty.
//! * **Physical express links** (Fig 6): a pipelined LUT-FF chain with a
//!   dedicated bypass wire skipping `Hops` stages. Frequency degrades
//!   *gracefully* (roughly linearly) with distance, sustaining 250 MHz
//!   over 32–64 SLICEs — the evidence that motivates FastTrack.
//!
//! We reproduce both as calibrated empirical models: digitized anchor
//! points from the paper's figures with log-distance interpolation
//! (virtual) and a fitted linear decline (physical). Absolute numbers are
//! reconstructions; the shapes and the headline anchors (710 MHz ceiling,
//! 250 MHz full-chip traversal, 450 MHz at 128 SLICEs with one hop,
//! ≈200 MHz with ≥2 hops) match the paper's text.

use crate::device::Device;

/// Raw (uncapped) frequency anchors for the virtual-express experiment:
/// `(distance_slices, mhz)` per hop count. Values above the clock ceiling
/// are "purely theoretical" (paper's words) and get capped on query.
const VIRTUAL_ANCHORS_H0: &[(f64, f64)] = &[
    (1.0, 1400.0),
    (4.0, 1000.0),
    (16.0, 700.0),
    (64.0, 550.0),
    (128.0, 480.0),
    (256.0, 250.0),
];
const VIRTUAL_ANCHORS_H1: &[(f64, f64)] = &[
    (1.0, 600.0),
    (8.0, 550.0),
    (32.0, 500.0),
    (128.0, 450.0),
    (256.0, 248.0),
];
const VIRTUAL_ANCHORS_H2: &[(f64, f64)] =
    &[(1.0, 260.0), (16.0, 235.0), (64.0, 220.0), (256.0, 205.0)];
const VIRTUAL_ANCHORS_H3: &[(f64, f64)] = &[(1.0, 215.0), (64.0, 200.0), (256.0, 185.0)];

/// Frequency of the virtual-express experiment circuit (Fig 4): two
/// registers `distance` SLICEs apart with `hops` combinational LUT stages
/// between them, capped at the device clock ceiling.
///
/// # Panics
///
/// Panics if `distance == 0`.
pub fn virtual_express_mhz(device: &Device, distance: u32, hops: u32) -> f64 {
    assert!(distance > 0, "distance must be at least 1 SLICE");
    let d = distance as f64;
    let raw = match hops {
        0 => interp_log(VIRTUAL_ANCHORS_H0, d),
        1 => interp_log(VIRTUAL_ANCHORS_H1, d),
        2 => interp_log(VIRTUAL_ANCHORS_H2, d),
        _ => {
            // Each additional serial LUT hop past 3 shaves a little more;
            // the curve is essentially flat ≈200 MHz (paper's text).
            let base = interp_log(VIRTUAL_ANCHORS_H3, d);
            (base * (1.0 - 0.02 * (hops - 3) as f64)).max(140.0)
        }
    };
    raw.min(device.clock_ceiling_mhz)
}

/// Frequency of the physical-express experiment circuit (Fig 6): a
/// registered bypass wire of `distance` SLICEs skipping `bypassed_hops`
/// LUT-FF stages. Degrades roughly linearly with distance — 250 MHz at
/// ≈64 SLICEs — with a small penalty per bypassed stage (the bypass
/// multiplexing at the endpoints).
///
/// # Panics
///
/// Panics if `distance == 0`.
pub fn physical_express_mhz(device: &Device, distance: u32, bypassed_hops: u32) -> f64 {
    assert!(distance > 0, "distance must be at least 1 SLICE");
    let d = distance as f64;
    // Piecewise: linear decline to 250 MHz at ~64 SLICEs (the paper's
    // anchor), then a gentler tail — long wires chain the fastest
    // routing tracks, so the marginal slice costs less out there.
    let raw = if d <= 64.0 {
        770.0 - 8.1 * d
    } else {
        251.6 - 0.4 * (d - 64.0)
    };
    let hop_penalty = 1.0 - 0.015 * bypassed_hops as f64;
    (raw * hop_penalty.max(0.5)).clamp(150.0, device.clock_ceiling_mhz)
}

/// Piecewise-linear interpolation in log-distance space; clamps outside
/// the anchor range.
fn interp_log(anchors: &[(f64, f64)], d: f64) -> f64 {
    let x = d.ln();
    if d <= anchors[0].0 {
        return anchors[0].1;
    }
    if d >= anchors[anchors.len() - 1].0 {
        return anchors[anchors.len() - 1].1;
    }
    for w in anchors.windows(2) {
        let (d0, f0) = w[0];
        let (d1, f1) = w[1];
        if d <= d1 {
            let t = (x - d0.ln()) / (d1.ln() - d0.ln());
            return f0 + t * (f1 - f0);
        }
    }
    unreachable!("anchor scan covers the clamped range")
}

/// One sampled point of a wire characterization sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePoint {
    /// Register-to-register distance in SLICEs.
    pub distance: u32,
    /// LUT stages along (virtual) or bypassed by (physical) the wire.
    pub hops: u32,
    /// Achieved frequency, MHz.
    pub mhz: f64,
}

/// The distances the paper sweeps (powers of two, 2..=256).
pub const SWEEP_DISTANCES: [u32; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

/// The hop counts the paper sweeps (0..=8).
pub const SWEEP_HOPS: [u32; 9] = [0, 1, 2, 3, 4, 5, 6, 7, 8];

/// Regenerates the full Figure 4 sweep.
pub fn figure4_sweep(device: &Device) -> Vec<WirePoint> {
    let mut points = Vec::new();
    for &hops in &SWEEP_HOPS {
        for &distance in &SWEEP_DISTANCES {
            points.push(WirePoint {
                distance,
                hops,
                mhz: virtual_express_mhz(device, distance, hops),
            });
        }
    }
    points
}

/// Regenerates the full Figure 6 sweep.
pub fn figure6_sweep(device: &Device) -> Vec<WirePoint> {
    let mut points = Vec::new();
    for &hops in &SWEEP_HOPS {
        for &distance in &SWEEP_DISTANCES {
            points.push(WirePoint {
                distance,
                hops,
                mhz: physical_express_mhz(device, distance, hops),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::virtex7_485t()
    }

    #[test]
    fn ceiling_applies_at_short_distance() {
        assert_eq!(virtual_express_mhz(&dev(), 1, 0), 710.0);
        assert_eq!(physical_express_mhz(&dev(), 1, 0), 710.0);
    }

    #[test]
    fn paper_anchor_points() {
        let d = dev();
        // Full-chip traversal at 250 MHz with no hops (paper §III-1).
        assert!((virtual_express_mhz(&d, 256, 0) - 250.0).abs() < 1.0);
        // One hop: 450 MHz at 128 SLICEs.
        assert!((virtual_express_mhz(&d, 128, 1) - 450.0).abs() < 1.0);
        // Two or more hops: ≈200 MHz regardless of distance.
        for dist in [4, 16, 64, 256] {
            let f = virtual_express_mhz(&d, dist, 3);
            assert!((170.0..=230.0).contains(&f), "got {f} at {dist}");
        }
        // Physical express: ≈250 MHz at 64 SLICEs (paper §III-2).
        let f64s = physical_express_mhz(&d, 64, 2);
        assert!((230.0..=260.0).contains(&f64s), "got {f64s}");
    }

    #[test]
    fn virtual_monotone_in_distance_and_hops() {
        let d = dev();
        for hops in 0..4 {
            let mut prev = f64::INFINITY;
            for dist in SWEEP_DISTANCES {
                let f = virtual_express_mhz(&d, dist, hops);
                assert!(f <= prev + 1e-9, "non-monotone at h={hops} d={dist}");
                prev = f;
            }
        }
        // More serial hops never increases frequency (below the ceiling).
        for dist in [64, 128, 256] {
            let mut prev = f64::INFINITY;
            for hops in SWEEP_HOPS {
                let f = virtual_express_mhz(&d, dist, hops);
                assert!(f <= prev + 1e-9);
                prev = f;
            }
        }
    }

    #[test]
    fn physical_degrades_gracefully_vs_virtual() {
        // The headline claim: with ≥2 LUT stages in play, a physical
        // bypass wire at moderate distance beats the virtual (serial)
        // path dramatically.
        let d = dev();
        for dist in [16, 32, 64] {
            let physical = physical_express_mhz(&d, dist, 4);
            let virt = virtual_express_mhz(&d, dist, 4);
            assert!(
                physical > virt * 1.2,
                "physical {physical} should beat virtual {virt} at {dist}"
            );
        }
    }

    #[test]
    fn physical_floor_and_linearity() {
        let d = dev();
        // The long-wire tail declines gently past 64 SLICEs.
        let f256 = physical_express_mhz(&d, 256, 0);
        assert!((160.0..=200.0).contains(&f256), "got {f256}");
        let f128 = physical_express_mhz(&d, 128, 0);
        assert!(f128 > f256 && f128 < 250.0);
        // Linear region: equal distance increments, equal frequency drops.
        let f32s = physical_express_mhz(&d, 32, 0);
        let f40 = physical_express_mhz(&d, 40, 0);
        let f48 = physical_express_mhz(&d, 48, 0);
        assert!(((f32s - f40) - (f40 - f48)).abs() < 1e-6);
    }

    #[test]
    fn sweeps_have_full_grid() {
        let d = dev();
        assert_eq!(figure4_sweep(&d).len(), 72);
        assert_eq!(figure6_sweep(&d).len(), 72);
    }

    #[test]
    #[should_panic(expected = "at least 1 SLICE")]
    fn zero_distance_rejected() {
        virtual_express_mhz(&dev(), 0, 0);
    }
}
