//! Power and energy model (paper Table II and Figure 19).
//!
//! Dynamic power is modeled per resource class and calibrated against
//! Table II's Vivado power numbers for the three 8×8 256-bit designs:
//! Hoplite 9.8 W @344 MHz, FT(64,2,1) 25.1 W @320 MHz, FT(64,2,2)
//! 19.9 W @323 MHz. The long express wires carry a higher per-slice
//! energy (they are driven across faster, higher-capacitance routing
//! tracks), which is what makes FastTrack "2–2.5× more power hungry"
//! despite being only ~2–3× the logic.
//!
//! Workload energy splits the same coefficients into a static/clocking
//! share (paid per cycle) and a per-hop share (paid per link traversal),
//! so a NoC that finishes the workload in fewer cycles with fewer
//! deflections — FastTrack's whole value proposition — wins on energy
//! even at higher peak power (Figure 19).

use fasttrack_core::config::NocConfig;
use fasttrack_core::stats::SimStats;

use crate::device::Device;
use crate::resources::{noc_cost, wire_slice_bits};

/// Calibrated power coefficients. Units: picojoules per cycle per unit
/// (equivalently µW/MHz per unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Energy per flip-flop per cycle at full activity, pJ.
    pub pj_per_ff: f64,
    /// Energy per LUT per cycle at full activity, pJ.
    pub pj_per_lut: f64,
    /// Energy per slice·bit of short wire per cycle at full activity, pJ.
    pub pj_per_short_slice_bit: f64,
    /// Express-wire energy multiplier over short wire (faster tracks,
    /// higher capacitance per slice spanned).
    pub express_wire_factor: f64,
    /// Fraction of full-activity power burned regardless of traffic
    /// (clock network, control toggling).
    pub static_fraction: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            pj_per_ff: 0.10,
            pj_per_lut: 0.10,
            pj_per_short_slice_bit: 0.019,
            express_wire_factor: 1.25,
            static_fraction: 0.25,
        }
    }
}

impl PowerModel {
    /// Full-activity dynamic power in watts of `channels` copies of the
    /// NoC at `width` bits running at `freq_mhz` (the Table II metric).
    pub fn dynamic_power_w(
        &self,
        device: &Device,
        cfg: &NocConfig,
        width: u32,
        freq_mhz: f64,
        channels: u32,
    ) -> f64 {
        let cost = noc_cost(cfg, width).replicated(channels);
        let (short, express) = wire_slice_bits(device, cfg, width);
        let pj_per_cycle = self.pj_per_ff * cost.ffs as f64
            + self.pj_per_lut * cost.luts as f64
            + self.pj_per_short_slice_bit
                * channels as f64
                * (short + self.express_wire_factor * express);
        // pJ/cycle × MHz = µW.
        pj_per_cycle * freq_mhz * 1e-6
    }

    /// Energy in joules to run a workload: `cycles` at `freq_mhz` with
    /// the given measured link-traversal counts.
    #[allow(clippy::too_many_arguments)]
    pub fn workload_energy_j(
        &self,
        device: &Device,
        cfg: &NocConfig,
        width: u32,
        freq_mhz: f64,
        channels: u32,
        cycles: u64,
        stats: &SimStats,
    ) -> f64 {
        let p_full = self.dynamic_power_w(device, cfg, width, freq_mhz, channels);
        let seconds = cycles as f64 / (freq_mhz * 1e6);
        let static_energy = self.static_fraction * p_full * seconds;

        let tile = device.tile_width_slices(cfg.n());
        let w = width as f64;
        let e_short = self.pj_per_short_slice_bit * tile * w * 1e-12;
        let e_express = self.express_wire_factor
            * self.pj_per_short_slice_bit
            * (cfg.d().max(1) as f64 * tile)
            * w
            * 1e-12;
        // Register/logic toggling along each hop (input+output registers
        // plus the switch mux column).
        let e_logic = (2.0 * self.pj_per_ff + self.pj_per_lut) * w * 1e-12;

        let hop_energy = stats.link_usage.short_hops as f64 * (e_short + e_logic)
            + stats.link_usage.express_hops as f64 * (e_express + e_logic);
        static_energy + hop_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::FtPolicy;
    use fasttrack_core::stats::LinkUsage;

    fn dev() -> Device {
        Device::virtex7_485t()
    }

    fn ft(d: u16, r: u16) -> NocConfig {
        NocConfig::fasttrack(8, d, r, FtPolicy::Full).unwrap()
    }

    #[test]
    fn table2_power_calibration() {
        let m = PowerModel::default();
        let d = dev();
        // Hoplite 8×8 256 b @344 MHz → 9.8 W.
        let p_h = m.dynamic_power_w(&d, &NocConfig::hoplite(8).unwrap(), 256, 344.0, 1);
        assert!((p_h - 9.8).abs() < 0.5, "Hoplite power {p_h}");
        // FT(64,2,1) @320 → 25.1 W (model within ~10%).
        let p_f1 = m.dynamic_power_w(&d, &ft(2, 1), 256, 320.0, 1);
        assert!((p_f1 - 25.1).abs() < 3.0, "FT(64,2,1) power {p_f1}");
        // FT(64,2,2) @323 → 19.9 W (model within ~10%).
        let p_f2 = m.dynamic_power_w(&d, &ft(2, 2), 256, 323.0, 1);
        assert!((p_f2 - 19.9).abs() < 2.5, "FT(64,2,2) power {p_f2}");
        // Paper: FastTrack is 2–2.5× more power hungry.
        let ratio = p_f1 / p_h;
        assert!((2.0..=3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn power_scales_with_frequency_and_channels() {
        let m = PowerModel::default();
        let d = dev();
        let cfg = NocConfig::hoplite(8).unwrap();
        let p1 = m.dynamic_power_w(&d, &cfg, 256, 300.0, 1);
        let p2 = m.dynamic_power_w(&d, &cfg, 256, 600.0, 1);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
        let p3 = m.dynamic_power_w(&d, &cfg, 256, 300.0, 3);
        assert!((p3 / p1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn workload_energy_rewards_fewer_cycles() {
        let m = PowerModel::default();
        let d = dev();
        let cfg = NocConfig::hoplite(8).unwrap();
        let mut stats = SimStats {
            link_usage: LinkUsage {
                short_hops: 1_000_000,
                express_hops: 0,
            },
            ..Default::default()
        };
        let slow = m.workload_energy_j(&d, &cfg, 256, 344.0, 1, 100_000, &stats);
        let fast = m.workload_energy_j(&d, &cfg, 256, 344.0, 1, 40_000, &stats);
        assert!(fast < slow);
        // Same cycles, fewer hops -> less energy.
        stats.link_usage.short_hops = 200_000;
        let fewer_hops = m.workload_energy_j(&d, &cfg, 256, 344.0, 1, 100_000, &stats);
        assert!(fewer_hops < slow);
    }

    #[test]
    fn express_hops_cost_more_than_short() {
        let m = PowerModel::default();
        let d = dev();
        let cfg = ft(2, 1);
        let short_only = SimStats {
            link_usage: LinkUsage {
                short_hops: 1_000_000,
                express_hops: 0,
            },
            ..Default::default()
        };
        let express_only = SimStats {
            link_usage: LinkUsage {
                short_hops: 0,
                express_hops: 1_000_000,
            },
            ..Default::default()
        };
        let e_s = m.workload_energy_j(&d, &cfg, 256, 320.0, 1, 50_000, &short_only);
        let e_x = m.workload_energy_j(&d, &cfg, 256, 320.0, 1, 50_000, &express_only);
        assert!(e_x > e_s);
        // ...but an express hop covers D routers, so per-distance it is
        // cheaper than D short hops.
        let d_short = SimStats {
            link_usage: LinkUsage {
                short_hops: 2_000_000,
                express_hops: 0,
            },
            ..Default::default()
        };
        let e_2s = m.workload_energy_j(&d, &cfg, 256, 320.0, 1, 50_000, &d_short);
        assert!(e_x < e_2s);
    }
}
