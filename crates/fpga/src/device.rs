//! FPGA device descriptors.
//!
//! The paper maps everything onto a Xilinx Virtex-7 XC7VX485T (-2 speed
//! grade). We model the device by the handful of parameters the NoC cost
//! and timing analysis actually consumes: logic capacity, slice-grid
//! geometry (for wire lengths), wiring capacity per slice column, and the
//! clock-network ceiling.

/// An FPGA device model.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing name, e.g. `Virtex-7 485T (-2)`.
    pub name: &'static str,
    /// Total 6-input LUTs.
    pub luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// Slice-grid columns (X extent in SLICEs).
    pub slice_cols: u32,
    /// Slice-grid rows (Y extent in SLICEs).
    pub slice_rows: u32,
    /// Peak frequency of the global clock network, MHz (the paper
    /// measures ≈710 MHz on the 485T).
    pub clock_ceiling_mhz: f64,
    /// Routable general-interconnect signals per slice column — the
    /// wiring budget the routability analysis charges NoC channels
    /// against (calibrated so a 4×4 D=2 NoC supports 512 b datawidths,
    /// paper §VI-B).
    pub wires_per_slice_col: u32,
}

impl Device {
    /// The Xilinx Virtex-7 XC7VX485T (-2) used throughout the paper.
    pub fn virtex7_485t() -> Self {
        Device {
            name: "Virtex-7 485T (-2)",
            luts: 303_600,
            ffs: 607_200,
            slice_cols: 216,
            slice_rows: 350,
            clock_ceiling_mhz: 710.0,
            wires_per_slice_col: 30,
        }
    }

    /// Width in SLICEs of one router tile when an `n × n` NoC uniformly
    /// tiles the device (the paper locks routers to rectangular regions).
    pub fn tile_width_slices(&self, n: u16) -> f64 {
        self.slice_cols as f64 / n as f64
    }

    /// Wiring capacity available to NoC channels crossing one tile
    /// boundary (one tile's column budget, derated for user logic).
    pub fn channel_capacity(&self, n: u16) -> f64 {
        self.tile_width_slices(n) * self.wires_per_slice_col as f64
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::virtex7_485t()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex7_parameters() {
        let d = Device::virtex7_485t();
        assert_eq!(d.luts, 303_600);
        assert_eq!(d.ffs, 2 * d.luts);
        assert!(d.clock_ceiling_mhz > 700.0);
    }

    #[test]
    fn tile_width_scales_inversely_with_n() {
        let d = Device::virtex7_485t();
        assert!(d.tile_width_slices(4) > d.tile_width_slices(8));
        assert!((d.tile_width_slices(8) - 27.0).abs() < 0.01);
    }

    #[test]
    fn channel_capacity_anchor_4x4_512b() {
        // Paper §VI-B: a 4×4 NoC with D=2 supports 512-bit datawidths.
        // D=2, R=1 needs 3 wires per bit per channel cut.
        let d = Device::virtex7_485t();
        assert!(d.channel_capacity(4) >= 512.0 * 3.0);
        // ...but not 1024 bits.
        assert!(d.channel_capacity(4) < 1024.0 * 3.0);
    }

    #[test]
    fn default_is_virtex7() {
        assert_eq!(Device::default(), Device::virtex7_485t());
    }
}
