//! Published FPGA implementation data for competing NoC routers
//! (paper Table I and Figure 1).
//!
//! These are the literature numbers the paper tabulates for 32-bit
//! routers: OpenSMART, BLESS, CONNECT, Split-Merge, Altera Qsys, Hoplite,
//! and FastTrack itself. They parameterize the Table I regeneration and
//! the Figure 1 area-bandwidth scatter.

/// One row of Table I: a 32-bit router implementation from the
/// literature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedRouter {
    /// Router family name.
    pub name: &'static str,
    /// FPGA device the number was reported on.
    pub device: &'static str,
    /// LUT cost per router.
    pub luts: u32,
    /// FF cost per router (0 = not reported).
    pub ffs: u32,
    /// Clock period, ns.
    pub period_ns: f64,
    /// Output ports contributing to peak switch bandwidth.
    pub ports: u32,
    /// True for bufferless deflection routers.
    pub bufferless: bool,
}

impl PublishedRouter {
    /// Peak switch bandwidth in packets per nanosecond
    /// (`ports / period`), the paper's Figure 1 y-axis.
    pub fn peak_bandwidth_pkts_per_ns(&self) -> f64 {
        self.ports as f64 / self.period_ns
    }

    /// `max(LUTs, FFs)`, the Figure 1 x-axis.
    pub fn cost_per_switch(&self) -> u32 {
        self.luts.max(self.ffs)
    }
}

/// Table I, as printed in the paper (32-bit routers).
pub const TABLE1: [PublishedRouter; 7] = [
    PublishedRouter {
        name: "OpenSMART 4VC 1-deep",
        device: "Virtex-7 VX690T",
        luts: 3700,
        ffs: 1700,
        period_ns: 5.0,
        ports: 5,
        bufferless: false,
    },
    PublishedRouter {
        name: "BLESS (no buffers)",
        device: "Virtex-2 Pro",
        luts: 1090,
        ffs: 335,
        period_ns: 13.2,
        ports: 4,
        bufferless: true,
    },
    PublishedRouter {
        name: "CONNECT 2VC 16-deep",
        device: "Virtex-6 LX240T",
        luts: 1562,
        ffs: 635,
        period_ns: 9.6,
        ports: 5,
        bufferless: false,
    },
    PublishedRouter {
        name: "Split-Merge DOR",
        device: "Virtex-6 LX240T",
        luts: 1785,
        ffs: 541,
        period_ns: 4.5,
        ports: 5,
        bufferless: false,
    },
    PublishedRouter {
        name: "Altera Qsys",
        device: "Stratix IV C2",
        luts: 1673,
        ffs: 165,
        period_ns: 3.1,
        ports: 5,
        bufferless: false,
    },
    PublishedRouter {
        name: "Hoplite",
        device: "Virtex-7 485T",
        luts: 78,
        ffs: 0,
        period_ns: 1.2,
        ports: 2,
        bufferless: true,
    },
    PublishedRouter {
        name: "FastTrack (this work)",
        device: "Virtex-7 485T",
        luts: 290,
        ffs: 290,
        period_ns: 2.0,
        ports: 5,
        bufferless: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_rows() {
        assert_eq!(TABLE1.len(), 7);
        assert!(TABLE1.iter().any(|r| r.name.contains("Hoplite")));
        assert!(TABLE1.iter().any(|r| r.name.contains("FastTrack")));
    }

    #[test]
    fn hoplite_is_order_of_magnitude_smaller() {
        let hoplite = TABLE1.iter().find(|r| r.name == "Hoplite").unwrap();
        for r in TABLE1.iter().filter(|r| !r.device.contains("485T")) {
            assert!(
                r.luts as f64 / hoplite.luts as f64 > 10.0,
                "{} is not 10x Hoplite",
                r.name
            );
        }
    }

    #[test]
    fn fasttrack_dominates_figure1() {
        // FastTrack sits top-left of Figure 1: highest bandwidth of all,
        // cost within 4x of Hoplite and far below the buffered routers.
        let ft = TABLE1
            .iter()
            .find(|r| r.name.contains("FastTrack"))
            .unwrap();
        for r in TABLE1.iter().filter(|r| !r.name.contains("FastTrack")) {
            assert!(ft.peak_bandwidth_pkts_per_ns() > r.peak_bandwidth_pkts_per_ns());
        }
        let buffered_min = TABLE1
            .iter()
            .filter(|r| !r.bufferless)
            .map(PublishedRouter::cost_per_switch)
            .min()
            .unwrap();
        assert!(ft.cost_per_switch() < buffered_min / 4);
    }

    #[test]
    fn bandwidth_math() {
        let hoplite = TABLE1.iter().find(|r| r.name == "Hoplite").unwrap();
        assert!((hoplite.peak_bandwidth_pkts_per_ns() - 2.0 / 1.2).abs() < 1e-9);
    }
}
