//! # fasttrack-fpga
//!
//! FPGA device, wire-delay, resource, routability, and power models for
//! FastTrack NoC cost analysis, calibrated against everything the paper
//! measured on the Xilinx Virtex-7 485T:
//!
//! * [`wire`] — the §III wire characterization (Figures 4 and 6): how far
//!   a signal travels in one clock, with and without LUT stages in the
//!   path, and how physical express bypass wires keep frequency high.
//! * [`resources`] — structural LUT/FF/wire cost per router class and per
//!   NoC (Tables I and II, Figures 1 and 14).
//! * [`routability`] — does a configuration fit the device, and at what
//!   frequency (Table II, Figure 10).
//! * [`power`] — dynamic power and workload energy (Table II, Figure 19).
//! * [`published`] — literature numbers for competing routers (Table I).
//! * [`placement`] — linear vs folded torus layout wire-length analysis
//!   (the §V layout choice).
//! * [`hyperflex`] — the §VII pipelined-interconnect (Stratix 10
//!   HyperFlex) trade-off model.
//! * [`smart`] — SMART-style virtual express links on FPGA wires, the
//!   §III comparison FastTrack's physical links win.
//!
//! The Vivado toolchain and silicon are obviously not reproducible in a
//! library; these are *calibrated analytic models* that return the
//! paper's reported values at the paper's design points and extrapolate
//! with the physically-motivated trends described in each module.
//!
//! ```
//! use fasttrack_core::config::{NocConfig, FtPolicy};
//! use fasttrack_fpga::{device::Device, resources::noc_cost, routability::noc_frequency_mhz};
//!
//! let device = Device::virtex7_485t();
//! let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full)?;
//! let cost = noc_cost(&cfg, 256);
//! assert_eq!(cost.luts, 104_064); // paper Table II: 104 K
//! let mhz = noc_frequency_mhz(&device, &cfg, 256, 1).expect("fits");
//! assert!(mhz > 300.0);
//! # Ok::<(), fasttrack_core::config::ConfigError>(())
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod hyperflex;
pub mod placement;
pub mod power;
pub mod published;
pub mod resources;
pub mod routability;
pub mod smart;
pub mod wire;

pub use device::Device;
pub use power::PowerModel;
