//! FPGA resource cost model: LUTs, flip-flops, and wires per router and
//! per NoC (paper Table I, Table II, Figures 1 and 14).
//!
//! The model is structural — it counts the switch multiplexers each router
//! class actually instantiates — and is calibrated against every absolute
//! number the paper reports:
//!
//! | Config (8×8, 256 b)  | paper LUTs | model | paper FFs | model |
//! |----------------------|-----------|-------|-----------|-------|
//! | Hoplite              | 34 K      | 33.7K | 83 K      | 83.0K |
//! | FT(64,2,1)           | 104 K     | 104.1K| 150 K     | 150.0K|
//! | FT(64,2,2)           | 69 K      | 69.1K | 117 K     | 116.6K|
//!
//! and Hoplite @32 b = 78 LUTs (Table I), FT @32 b in 191–290 LUTs.
//!
//! Mux costs on a 6-input-LUT fabric: a 2:1–4:1 mux fits one LUT per bit,
//! a 5:1–8:1 mux needs two. A Hoplite router is two 3:1 muxes (2 LUT/bit);
//! a full FT router is four 4:1 muxes plus the 5:1 exit mux (6 LUT/bit);
//! a depopulated (grey) router drops one express dimension (4 LUT/bit).

use fasttrack_core::config::{FtPolicy, NocConfig};
use fasttrack_core::geom::Coord;
use fasttrack_core::router::RouterClass;

use crate::device::Device;

/// LUT/FF cost of one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterCost {
    /// 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
}

impl RouterCost {
    /// Component-wise sum.
    pub fn plus(self, other: RouterCost) -> RouterCost {
        RouterCost {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
        }
    }

    /// `max(LUTs, FFs)` — the paper's Figure 1 cost metric.
    pub fn max_resource(self) -> u64 {
        self.luts.max(self.ffs)
    }
}

/// LUTs per bit for a mux with `inputs` data inputs on a 6-LUT fabric.
///
/// # Panics
///
/// Panics if `inputs` is 0 or greater than 8.
pub fn mux_luts_per_bit(inputs: u32) -> u64 {
    match inputs {
        1 => 0,
        2..=4 => 1,
        5..=8 => 2,
        _ => panic!("mux with {inputs} inputs not supported"),
    }
}

/// Control/decode overhead (DOR compare, valid bits, priority logic) in
/// LUTs per router, by class complexity.
fn decode_overhead(class: RouterClass, policy: FtPolicy) -> u64 {
    let base = match (class.x_express, class.y_express) {
        (true, true) => 90,
        (true, false) | (false, true) => 60,
        (false, false) => 14,
    };
    match policy {
        FtPolicy::Full => base,
        // The Inject variant's routing function is decided once at the
        // PE, so the per-router decode logic is roughly halved.
        FtPolicy::Inject => (base / 2).max(14),
    }
}

/// Cost of one router of the given class at `width` bits.
///
/// `policy` is `None` for a baseline Hoplite NoC (and forced for routers
/// with no express ports, which are plain Hoplite switches).
pub fn router_cost(class: RouterClass, policy: Option<FtPolicy>, width: u32) -> RouterCost {
    let w = width as u64;
    match (class.x_express, class.y_express) {
        // Plain Hoplite: two 3:1 muxes (E, shared S/exit) + decode;
        // registers on 2 inputs + 2 outputs + PE interface.
        (false, false) => RouterCost {
            luts: 2 * w + 14,
            ffs: 5 * w + 17,
        },
        // Full FT: E_ex/E_sh/S_ex/S_sh 4:1 muxes + 5:1 exit mux.
        (true, true) => {
            let policy = policy.unwrap_or_default();
            RouterCost {
                luts: (4 * mux_luts_per_bit(4) + mux_luts_per_bit(5)) * w
                    + decode_overhead(class, policy),
                ffs: 9 * w + 40,
            }
        }
        // Grey (one express dimension): drop one pair of express muxes
        // and shrink the exit mux to 4:1.
        _ => {
            let policy = policy.unwrap_or_default();
            RouterCost {
                luts: (3 * mux_luts_per_bit(4) + mux_luts_per_bit(4)) * w
                    + decode_overhead(class, policy),
                ffs: 7 * w + 30,
            }
        }
    }
}

/// Aggregate cost of one NoC channel.
#[derive(Debug, Clone, PartialEq)]
pub struct NocCost {
    /// Total LUTs across all routers.
    pub luts: u64,
    /// Total FFs across all routers.
    pub ffs: u64,
    /// Wire bundles crossing each channel cut (`1 + D/R`; 1 for Hoplite).
    pub wire_bundles_per_cut: u32,
    /// Total wire bits crossing one ring cut (`width × bundles`).
    pub wire_bits_per_cut: u64,
    /// Router count.
    pub routers: usize,
}

impl NocCost {
    /// `max(LUTs, FFs)` for the whole NoC.
    pub fn max_resource(&self) -> u64 {
        self.luts.max(self.ffs)
    }

    /// Cost of `channels` replicated copies (multi-channel Hoplite).
    pub fn replicated(&self, channels: u32) -> NocCost {
        NocCost {
            luts: self.luts * channels as u64,
            ffs: self.ffs * channels as u64,
            wire_bundles_per_cut: self.wire_bundles_per_cut * channels,
            wire_bits_per_cut: self.wire_bits_per_cut * channels as u64,
            routers: self.routers * channels as usize,
        }
    }
}

/// Computes the aggregate cost of the NoC described by `cfg` at `width`
/// bits, summing per-position router classes (full / grey / white).
pub fn noc_cost(cfg: &NocConfig, width: u32) -> NocCost {
    let n = cfg.n();
    let mut total = RouterCost::default();
    for id in 0..cfg.num_nodes() {
        let class = RouterClass::of(cfg, Coord::from_node_id(id, n));
        total = total.plus(router_cost(class, cfg.ft_policy(), width));
    }
    let mult = cfg.wire_multiplier() as u32;
    NocCost {
        luts: total.luts,
        ffs: total.ffs,
        wire_bundles_per_cut: mult,
        wire_bits_per_cut: width as u64 * mult as u64,
        routers: cfg.num_nodes(),
    }
}

/// Total wire length in slice·bits for one NoC channel, split into
/// (short, express). Used by the power model: short links span one router
/// tile, express links span `D` tiles; each ring has `N` short links and
/// `N/R` express links, and there are `2N` rings (N rows + N columns).
pub fn wire_slice_bits(device: &Device, cfg: &NocConfig, width: u32) -> (f64, f64) {
    let n = cfg.n() as f64;
    let tile = device.tile_width_slices(cfg.n());
    let rings = 2.0 * n;
    let short = rings * n * tile * width as f64;
    let express = if cfg.has_express() {
        let links_per_ring = n / cfg.r() as f64;
        rings * links_per_ring * (cfg.d() as f64 * tile) * width as f64
    } else {
        0.0
    };
    (short, express)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasttrack_core::config::NocConfig;

    fn ft(n: u16, d: u16, r: u16) -> NocConfig {
        NocConfig::fasttrack(n, d, r, FtPolicy::Full).unwrap()
    }

    #[test]
    fn table1_hoplite_32b() {
        let c = router_cost(RouterClass::HOPLITE, None, 32);
        assert_eq!(c.luts, 78); // paper Table I: Hoplite = 78 LUTs
    }

    #[test]
    fn table1_fasttrack_32b_range() {
        let full = router_cost(RouterClass::FULL, Some(FtPolicy::Full), 32);
        let inject = router_cost(RouterClass::FULL, Some(FtPolicy::Inject), 32);
        let grey = router_cost(
            RouterClass {
                x_express: true,
                y_express: false,
            },
            Some(FtPolicy::Full),
            32,
        );
        // Paper Table I: FastTrack 191–290 LUTs at 32 b.
        for c in [full, inject, grey] {
            assert!(
                (180..=295).contains(&c.luts),
                "32b FT router cost {} outside the paper's range",
                c.luts
            );
        }
        assert!(inject.luts < full.luts);
    }

    #[test]
    fn table2_hoplite_8x8_256b() {
        let cost = noc_cost(&NocConfig::hoplite(8).unwrap(), 256);
        assert_eq!(cost.luts, 33_664); // paper: 34 K
        assert_eq!(cost.ffs, 83_008); // paper: 83 K
        assert_eq!(cost.wire_bundles_per_cut, 1);
    }

    #[test]
    fn table2_ft_64_2_1_256b() {
        let cost = noc_cost(&ft(8, 2, 1), 256);
        assert_eq!(cost.luts, 104_064); // paper: 104 K (2.6×? 1.7–2.6× range)
        assert_eq!(cost.ffs, 150_016); // paper: 150 K (1.8×)
        assert_eq!(cost.wire_bundles_per_cut, 3);
    }

    #[test]
    fn table2_ft_64_2_2_256b() {
        let cost = noc_cost(&ft(8, 2, 2), 256);
        assert_eq!(cost.luts, 69_120); // paper: 69 K (1.7×)
        assert_eq!(cost.ffs, 116_560); // paper: 117 K (1.4×)
        assert_eq!(cost.wire_bundles_per_cut, 2);
    }

    #[test]
    fn paper_size_ratios_hold() {
        // Paper abstract: an 8×8 FastTrack NoC is 1.7–2.5× larger than
        // base Hoplite.
        let hoplite = noc_cost(&NocConfig::hoplite(8).unwrap(), 256);
        for cfg in [ft(8, 2, 1), ft(8, 2, 2)] {
            let c = noc_cost(&cfg, 256);
            let ratio = c.luts as f64 / hoplite.luts as f64;
            assert!(
                (1.6..=3.2).contains(&ratio),
                "{}: ratio {ratio}",
                cfg.name()
            );
        }
    }

    #[test]
    fn mux_costs() {
        assert_eq!(mux_luts_per_bit(1), 0);
        assert_eq!(mux_luts_per_bit(3), 1);
        assert_eq!(mux_luts_per_bit(4), 1);
        assert_eq!(mux_luts_per_bit(5), 2);
        assert_eq!(mux_luts_per_bit(8), 2);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn mux_too_wide_panics() {
        mux_luts_per_bit(9);
    }

    #[test]
    fn replication_scales_linearly() {
        let base = noc_cost(&NocConfig::hoplite(8).unwrap(), 256);
        let tripled = base.replicated(3);
        assert_eq!(tripled.luts, 3 * base.luts);
        assert_eq!(tripled.wire_bundles_per_cut, 3);
        assert_eq!(tripled.routers, 3 * base.routers);
    }

    #[test]
    fn iso_wiring_equivalence() {
        // FT(·,2,1) uses the same wire bundles as Hoplite-3x, and
        // FT(·,2,2) the same as Hoplite-2x (the paper's comparison).
        let hoplite = noc_cost(&NocConfig::hoplite(8).unwrap(), 256);
        assert_eq!(
            noc_cost(&ft(8, 2, 1), 256).wire_bundles_per_cut,
            hoplite.replicated(3).wire_bundles_per_cut
        );
        assert_eq!(
            noc_cost(&ft(8, 2, 2), 256).wire_bundles_per_cut,
            hoplite.replicated(2).wire_bundles_per_cut
        );
        // ...while needing fewer LUTs than the 3-channel replica? The
        // paper: "costs the designer 1.5× more LUTs than FastTrack".
        assert!(hoplite.replicated(3).luts as f64 > 0.9 * noc_cost(&ft(8, 2, 1), 256).luts as f64);
    }

    #[test]
    fn wire_slice_totals() {
        let dev = Device::virtex7_485t();
        let (short_h, express_h) = wire_slice_bits(&dev, &NocConfig::hoplite(8).unwrap(), 256);
        assert_eq!(express_h, 0.0);
        // 16 rings × 8 links × 27 slices × 256 bits = 884736.
        assert!((short_h - 884_736.0).abs() < 1.0);
        let (short_f, express_f) = wire_slice_bits(&dev, &ft(8, 2, 1), 256);
        assert_eq!(short_f, short_h);
        assert!((express_f - 2.0 * short_h).abs() < 1.0);
        // Depopulation halves express wiring.
        let (_, express_d) = wire_slice_bits(&dev, &ft(8, 2, 2), 256);
        assert!((express_d - short_h).abs() < 1.0);
    }

    #[test]
    fn max_resource_metric() {
        let c = RouterCost {
            luts: 100,
            ffs: 250,
        };
        assert_eq!(c.max_resource(), 250);
    }
}
