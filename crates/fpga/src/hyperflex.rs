//! HyperFlex-style pipelined interconnect (paper §VII discussion).
//!
//! Intel's Stratix 10 HyperFlex fabric offers registers *inside* the
//! routing network, so a long wire can be pipelined without spending
//! ALM/CLB registers. The paper argues this changes the express-link
//! trade-off: a HyperFlex-pipelined link runs at a very high clock but
//! pays one cycle per pipeline stage, so the *end-to-end latency* of a
//! long link may not improve even as frequency soars.
//!
//! This module models that trade-off: given a link of `distance` SLICEs
//! and `stages` interconnect registers, it reports the achievable
//! frequency and the end-to-end link latency in nanoseconds, and finds
//! the stage count minimizing latency under a frequency floor — the
//! quantitative version of §VII's argument.

use crate::device::Device;
use crate::wire::physical_express_mhz;

/// Peak frequency of a HyperFlex-style pipelined fabric (the Stratix 10
/// generation was marketed up to ~1 GHz).
pub const HYPERFLEX_CEILING_MHZ: f64 = 1000.0;

/// One pipelined-link design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinedLink {
    /// Physical span, SLICEs.
    pub distance: u32,
    /// Interconnect pipeline registers along the wire.
    pub stages: u32,
    /// Achievable clock, MHz.
    pub mhz: f64,
    /// End-to-end traversal latency, ns (`(stages + 1) / f`).
    pub latency_ns: f64,
}

/// Evaluates a link of `distance` SLICEs with `stages` pipeline
/// registers: each of the `stages + 1` segments must close timing on its
/// own, and the clock is capped by the HyperFlex ceiling.
///
/// # Panics
///
/// Panics if `distance == 0`.
pub fn pipelined_link(device: &Device, distance: u32, stages: u32) -> PipelinedLink {
    assert!(distance > 0);
    let segments = stages + 1;
    let seg_len = (distance as f64 / segments as f64).ceil().max(1.0) as u32;
    // Each segment is a registered wire with no logic in it; HyperFlex
    // registers avoid the fabric exit/entry penalty, so the per-segment
    // speed follows the physical-express curve with no bypass penalty,
    // capped by the HyperFlex clock network.
    let mhz = physical_express_mhz(device, seg_len, 0).clamp(1.0, HYPERFLEX_CEILING_MHZ);
    PipelinedLink {
        distance,
        stages,
        mhz,
        latency_ns: segments as f64 * 1000.0 / mhz,
    }
}

/// Sweeps stage counts `0..=max_stages` and returns the design point
/// with the lowest end-to-end latency whose clock meets `min_mhz`
/// (falling back to the fastest-clock point if none qualifies).
pub fn best_pipelining(
    device: &Device,
    distance: u32,
    max_stages: u32,
    min_mhz: f64,
) -> PipelinedLink {
    let mut best: Option<PipelinedLink> = None;
    let mut fastest: Option<PipelinedLink> = None;
    for stages in 0..=max_stages {
        let p = pipelined_link(device, distance, stages);
        if fastest.is_none_or(|f| p.mhz > f.mhz) {
            fastest = Some(p);
        }
        if p.mhz >= min_mhz && best.is_none_or(|b| p.latency_ns < b.latency_ns) {
            best = Some(p);
        }
    }
    best.or(fastest).expect("at least one design point")
}

/// §VII's headline comparison: an unpipelined FastTrack express link vs
/// a HyperFlex-pipelined one over the same span. Returns
/// `(fasttrack, hyperflex_best)`; the paper's expectation — encoded in
/// the tests — is that pipelining wins clock rate but not end-to-end
/// wire latency on spans FastTrack actually uses.
pub fn fasttrack_vs_hyperflex(
    device: &Device,
    distance: u32,
    bypassed: u32,
) -> (PipelinedLink, PipelinedLink) {
    let ft_mhz = physical_express_mhz(device, distance, bypassed);
    let ft = PipelinedLink {
        distance,
        stages: 0,
        mhz: ft_mhz,
        latency_ns: 1000.0 / ft_mhz,
    };
    let hf = best_pipelining(device, distance, 8, 600.0);
    (ft, hf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::virtex7_485t()
    }

    #[test]
    fn more_stages_raise_frequency() {
        let d = dev();
        let p0 = pipelined_link(&d, 128, 0);
        let p3 = pipelined_link(&d, 128, 3);
        assert!(p3.mhz > p0.mhz, "{} vs {}", p3.mhz, p0.mhz);
    }

    #[test]
    fn frequency_capped_by_hyperflex_ceiling() {
        let d = dev();
        let p = pipelined_link(&d, 16, 15);
        assert!(p.mhz <= HYPERFLEX_CEILING_MHZ);
    }

    #[test]
    fn latency_is_stages_over_frequency() {
        let d = dev();
        let p = pipelined_link(&d, 64, 1);
        assert!((p.latency_ns - 2.0 * 1000.0 / p.mhz).abs() < 1e-9);
    }

    #[test]
    fn deep_pipelining_stops_paying() {
        // Once each segment is short enough to hit the clock ceiling,
        // extra stages only add latency — §VII's point.
        let d = dev();
        let shallow = pipelined_link(&d, 32, 1);
        let deep = pipelined_link(&d, 32, 7);
        assert!(deep.latency_ns > shallow.latency_ns);
    }

    #[test]
    fn best_pipelining_respects_frequency_floor() {
        let d = dev();
        let p = best_pipelining(&d, 200, 8, 500.0);
        assert!(p.mhz >= 500.0, "got {} MHz", p.mhz);
        // And it should not over-pipeline: a 200-SLICE wire at 600 MHz
        // needs only a handful of stages.
        assert!(p.stages <= 8);
    }

    #[test]
    fn fasttrack_wins_wire_latency_on_its_spans() {
        // On the spans FastTrack uses (one express link ~ 2 tiles),
        // a single fast wire beats a pipelined one end-to-end even
        // though the pipelined link clocks higher.
        let d = dev();
        let (ft, hf) = fasttrack_vs_hyperflex(&d, 54, 2);
        assert!(hf.mhz > ft.mhz);
        assert!(
            ft.latency_ns <= hf.latency_ns + 1e-9,
            "FastTrack {:.2} ns vs HyperFlex {:.2} ns",
            ft.latency_ns,
            hf.latency_ns
        );
    }
}
