//! SMART-style virtual express links on an FPGA (paper §II-A1, §III).
//!
//! SMART NoCs let a packet tunnel through up to `HPC_max` routers
//! *combinationally* in one cycle when nothing contends — long-range
//! bypass paths are virtual, assembled from shared link segments. On an
//! ASIC this scales; on an FPGA every tunneled router adds a LUT to the
//! cycle's combinational path, and Figure 4 shows that collapses the
//! clock to ≈200 MHz past two hops. This module turns that
//! characterization into the §III conclusion: the *effective velocity*
//! (router positions per nanosecond) of a SMART bypass peaks at a very
//! small `HPC_max`, while a FastTrack physical express link keeps
//! scaling with `D`.

use crate::device::Device;
use crate::wire::{physical_express_mhz, virtual_express_mhz};

/// One SMART design point: bypassing `hpc` routers per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartPoint {
    /// Routers traversed per cycle (`HPC_max`).
    pub hpc: u32,
    /// Achievable clock, MHz (the tunneled path must close timing).
    pub mhz: f64,
    /// Effective best-case velocity, router positions per nanosecond.
    pub velocity: f64,
}

/// Evaluates SMART with `HPC_max = hpc` on router tiles of
/// `tile_slices` SLICEs: the cycle's critical path crosses `hpc` tile
/// spans and `hpc` router LUT stages.
///
/// # Panics
///
/// Panics if `hpc == 0`.
pub fn smart_point(device: &Device, tile_slices: f64, hpc: u32) -> SmartPoint {
    assert!(hpc > 0);
    let distance = (tile_slices * hpc as f64).round().max(1.0) as u32;
    let mhz = virtual_express_mhz(device, distance, hpc);
    SmartPoint {
        hpc,
        mhz,
        velocity: hpc as f64 * mhz / 1000.0,
    }
}

/// Evaluates a FastTrack express link of length `d` on the same tiles:
/// one registered physical wire covering `d` positions per cycle.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn fasttrack_point(device: &Device, tile_slices: f64, d: u32) -> SmartPoint {
    assert!(d > 0);
    let distance = (tile_slices * d as f64).round().max(1.0) as u32;
    let mhz = physical_express_mhz(device, distance, d);
    SmartPoint {
        hpc: d,
        mhz,
        velocity: d as f64 * mhz / 1000.0,
    }
}

/// Sweeps `HPC_max`/`D` from 1 to `max` and returns
/// `(smart, fasttrack)` point vectors for the §III comparison.
pub fn velocity_sweep(
    device: &Device,
    tile_slices: f64,
    max: u32,
) -> (Vec<SmartPoint>, Vec<SmartPoint>) {
    let smart = (1..=max)
        .map(|h| smart_point(device, tile_slices, h))
        .collect();
    let ft = (1..=max)
        .map(|d| fasttrack_point(device, tile_slices, d))
        .collect();
    (smart, ft)
}

/// The `HPC_max` maximizing SMART's effective velocity.
pub fn best_smart_hpc(device: &Device, tile_slices: f64, max: u32) -> u32 {
    (1..=max)
        .map(|h| smart_point(device, tile_slices, h))
        .max_by(|a, b| a.velocity.total_cmp(&b.velocity))
        .map(|p| p.hpc)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::virtex7_485t()
    }

    const TILE: f64 = 27.0; // 8x8 NoC on the 485T

    #[test]
    fn smart_clock_collapses_with_hpc() {
        let d = dev();
        let h1 = smart_point(&d, TILE, 1);
        let h4 = smart_point(&d, TILE, 4);
        assert!(
            h1.mhz > 400.0,
            "single-hop SMART should be fast: {}",
            h1.mhz
        );
        assert!(h4.mhz < 250.0, "4-hop tunneling must collapse: {}", h4.mhz);
    }

    #[test]
    fn smart_velocity_has_diminishing_returns_and_collapsed_clock() {
        // Doubling HPC from 1 to 2 loses clock rapidly; past the
        // collapse the extra reach comes at a ~200 MHz NoC clock that
        // every single-hop packet must also suffer — the §III trap.
        let d = dev();
        let (smart, _) = velocity_sweep(&d, TILE, 8);
        let gain_12 = smart[1].velocity / smart[0].velocity;
        assert!(
            gain_12 < 1.05,
            "tunneling a second router must not pay on an FPGA, gain {gain_12:.2}"
        );
        for p in &smart[3..] {
            assert!(
                p.mhz < 250.0,
                "HPC={} should run a collapsed clock, got {}",
                p.hpc,
                p.mhz
            );
        }
        // best_smart_hpc is well-defined even on the flat tail.
        assert!(best_smart_hpc(&d, TILE, 8) >= 1);
    }

    #[test]
    fn fasttrack_velocity_beats_smart_at_distance() {
        // The §III conclusion: physical express wires scale where
        // virtual bypasses cannot.
        let d = dev();
        for span in [2u32, 3, 4] {
            let ft = fasttrack_point(&d, TILE, span);
            let smart = smart_point(&d, TILE, span);
            assert!(
                ft.velocity > smart.velocity,
                "D={span}: FastTrack {:.2} vs SMART {:.2} positions/ns",
                ft.velocity,
                smart.velocity
            );
        }
    }

    #[test]
    fn velocity_math() {
        let p = SmartPoint {
            hpc: 2,
            mhz: 400.0,
            velocity: 0.8,
        };
        assert!((p.hpc as f64 * p.mhz / 1000.0 - p.velocity).abs() < 1e-12);
        let d = dev();
        let q = smart_point(&d, TILE, 2);
        assert!((q.velocity - q.hpc as f64 * q.mhz / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_lengths() {
        let (s, f) = velocity_sweep(&dev(), TILE, 6);
        assert_eq!(s.len(), 6);
        assert_eq!(f.len(), 6);
    }
}
