//! Property tests for the fault-injection subsystem: an empty
//! [`FaultPlan`] must be invisible (bit-identical reports to the plain
//! engine), the same seed must always draw the same fault schedule, and
//! exact packet conservation — `delivered + in_flight + dropped ==
//! injected` — must survive every fault mix the generator can produce.

use fasttrack_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Arbitrary FastTrack configuration with the paper's validity rules
/// (`D % R == 0`, `R` tiles the ring) enforced by construction.
fn arb_ft_config() -> impl Strategy<Value = NocConfig> {
    (2u16..=3, any::<u8>(), any::<bool>()).prop_map(|(n_exp, sel, full)| {
        let n = 1u16 << n_exp; // 4 or 8
        let policy = if full {
            FtPolicy::Full
        } else {
            FtPolicy::Inject
        };
        let mut variants = Vec::new();
        for d in 1..=n / 2 {
            for r in 1..=d {
                if d % r == 0 && n.is_multiple_of(r) {
                    variants.push((d, r));
                }
            }
        }
        let (d, r) = variants[sel as usize % variants.len()];
        NocConfig::fasttrack(n, d, r, policy).unwrap()
    })
}

/// A one-shot batch of random packets driven through the simulator's
/// [`TrafficSource`] interface.
struct BatchSource {
    items: Vec<(usize, Coord)>,
    pushed: bool,
}

impl BatchSource {
    fn random(n: u16, per_pe: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = n as usize * n as usize;
        let mut items = Vec::new();
        for node in 0..nodes {
            for _ in 0..per_pe {
                let dst = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                items.push((node, dst));
            }
        }
        BatchSource {
            items,
            pushed: false,
        }
    }
}

impl TrafficSource for BatchSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        if !self.pushed {
            for &(src, dst) in &self.items {
                queues.push(src, dst, cycle, 0);
            }
            self.pushed = true;
        }
    }
    fn exhausted(&self) -> bool {
        self.pushed
    }
}

/// Regression: under the INJECT policy the express lanes have no turn
/// onto the shared ring, so a dead express link used to trap a
/// lane-locked express packet orbiting the express ring forever (the
/// run hit the cycle cap with one packet eternally in flight). Such
/// packets are now dropped as stranded at the first dead router, so the
/// run terminates and conserves.
#[test]
fn inject_policy_dead_express_link_terminates() {
    let cfg = NocConfig::fasttrack(8, 4, 1, FtPolicy::Inject).unwrap();
    let spec = FaultSpec {
        dead_links: 2,
        transient_links: 2,
        fail_stop_routers: 1,
        stalled_injectors: 1,
        down_links: 0,
        window: (0, 400),
    };
    let plan = FaultPlan::random(&cfg, 4 ^ 0xFA17, &spec);
    assert!(!plan.is_empty(), "the regression scenario needs dead links");
    let report = SimSession::new(&cfg)
        .options(SimOptions::with_max_cycles(100_000))
        .with_faults(&plan)
        .run(&mut BatchSource::random(cfg.n(), 2, 4))
        .map(|o| o.report)
        .expect("drawn plans always validate");
    assert!(
        !report.truncated,
        "stranded express packets must be dropped, not orbit forever \
         (in_flight {} at the cycle cap)",
        report.in_flight,
    );
    assert!(report.conserved());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An empty fault plan is structurally invisible: the report of the
    /// faulted engine is bit-identical to the plain engine on the same
    /// traffic, and nothing is dropped or rerouted.
    #[test]
    fn empty_plan_is_bit_identical(cfg in arb_ft_config(), seed in 0u64..1_000) {
        let opts = SimOptions::default();
        let plain = SimSession::new(&cfg).options(opts).run(&mut BatchSource::random(cfg.n(), 2, seed)).unwrap().report;
        let faulted = SimSession::new(&cfg).options(opts).with_faults(&FaultPlan::new()).run(&mut BatchSource::random(cfg.n(), 2, seed)).map(|o| o.report)
        .expect("empty plan always validates");
        prop_assert_eq!(&plain, &faulted);
        prop_assert_eq!(faulted.stats.dropped, 0);
        prop_assert_eq!(faulted.stats.rerouted, 0);
    }

    /// [`FaultPlan::random`] is a pure function of `(cfg, seed, spec)`:
    /// the same seed draws the same schedule, and nearby seeds diverge
    /// (the schedule actually depends on the seed).
    #[test]
    fn same_seed_same_fault_schedule(cfg in arb_ft_config(), seed in any::<u64>()) {
        let spec = FaultSpec {
            dead_links: 2,
            transient_links: 2,
            fail_stop_routers: 1,
            stalled_injectors: 1,
            down_links: 0,
            window: (0, 500),
        };
        let a = FaultPlan::random(&cfg, seed, &spec);
        let b = FaultPlan::random(&cfg, seed, &spec);
        prop_assert_eq!(&a, &b, "same seed must draw the same plan");
        prop_assert!(a.validate(&cfg).is_ok(), "drawn plans always validate");
        // Different seeds eventually differ; check a small neighborhood
        // rather than asserting on any single draw.
        let diverges = (1..=8u64)
            .any(|k| FaultPlan::random(&cfg, seed.wrapping_add(k), &spec) != a);
        prop_assert!(a.is_empty() || diverges, "schedule must depend on the seed");
    }

    /// Exact conservation under arbitrary fault mixes: every injected
    /// packet is delivered, still in flight at the cycle cap, or was
    /// dropped by a fault — nothing duplicated, nothing unaccounted.
    #[test]
    fn conservation_holds_under_faults(
        cfg in arb_ft_config(),
        seed in 0u64..1_000,
        dead in 0usize..3,
        transient in 0usize..3,
        fail_stop in 0usize..2,
        stalls in 0usize..2,
        corrupt_bias in any::<bool>(),
    ) {
        let spec = FaultSpec {
            dead_links: dead,
            transient_links: transient,
            fail_stop_routers: fail_stop,
            stalled_injectors: stalls,
            down_links: 0,
            // Early, tight window so the faults overlap the traffic; the
            // corrupt_bias seed bit varies drop vs corrupt draws.
            window: (0, if corrupt_bias { 200 } else { 400 }),
        };
        let plan = FaultPlan::random(&cfg, seed ^ 0xFA17, &spec);
        // Conservation holds truncated or not (in-flight packets are
        // counted), so a tight cycle cap keeps the suite fast even when
        // a fault mix degrades the fabric badly.
        let report = SimSession::new(&cfg).options(SimOptions::with_max_cycles(20_000)).with_faults(&plan).run(&mut BatchSource::random(cfg.n(), 2, seed)).map(|o| o.report)
        .expect("drawn plans always validate");
        prop_assert!(
            report.conserved(),
            "delivered {} + in_flight {} + dropped {} != injected {} (plan: {})",
            report.stats.delivered,
            report.in_flight,
            report.stats.dropped,
            report.stats.injected,
            plan,
        );
        // Fail-stop and transient faults may lose packets; dead links
        // and stalls alone may also strand packets at full routers, but
        // never invent them.
        prop_assert!(report.stats.delivered + report.stats.dropped <= report.stats.injected);
    }

    /// The multi-channel engine keeps the same conservation invariant
    /// with the plan replicated into every channel.
    #[test]
    fn multichannel_conservation_holds_under_faults(
        seed in 0u64..500,
        channels in 1usize..3,
        dead in 0usize..2,
        fail_stop in 0usize..2,
    ) {
        let cfg = NocConfig::fasttrack(4, 2, 1, FtPolicy::Full).unwrap();
        let spec = FaultSpec {
            dead_links: dead,
            transient_links: 1,
            fail_stop_routers: fail_stop,
            stalled_injectors: 0,
            down_links: 0,
            window: (0, 300),
        };
        let plan = FaultPlan::random(&cfg, seed, &spec);
        let report = SimSession::new(&cfg).channels(channels).with_faults(&plan).run(&mut BatchSource::random(cfg.n(), 2, seed)).map(|o| o.report)
        .expect("drawn plans always validate");
        prop_assert!(
            report.conserved(),
            "delivered {} + in_flight {} + dropped {} != injected {}",
            report.stats.delivered,
            report.in_flight,
            report.stats.dropped,
            report.stats.injected,
        );
    }
}
