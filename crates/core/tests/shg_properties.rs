//! Property-based tests of the Sparse Hamming Graph backend: exact
//! conservation (healthy and under storm fault plans), loss-free
//! delivery on healthy fabrics, and bit-exact determinism of the
//! report *and* the event stream — the same guarantees the torus
//! engines carry, asserted for the first [`Topology`]-trait backend
//! that is not a torus.

use fasttrack_core::fault::{FaultPlan, StormSpec};
use fasttrack_core::geom::Coord;
use fasttrack_core::queue::InjectQueues;
use fasttrack_core::shg::ShgBackend;
use fasttrack_core::sim::{SimSession, TrafficSource};
use fasttrack_core::topology::{ShgConfig, ShgTopology, Topology};
use fasttrack_core::trace::VecSink;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Valid `(q, delta)` pairs: `2^(delta-1) < q`, kept small enough that
/// 32 cases stay fast.
fn arb_shg_config() -> impl Strategy<Value = ShgConfig> {
    (3u16..=9, any::<u8>()).prop_map(|(q, sel)| {
        let max_delta = (1u16..=3)
            .rev()
            .find(|d| (1u32 << (d - 1)) < u32::from(q))
            .unwrap();
        let delta = 1 + u16::from(sel) % max_delta;
        ShgConfig::new(q, delta).expect("pair is valid by construction")
    })
}

/// One randomized batch of packets, all pushed at cycle 0.
struct RandomBatch {
    items: Vec<(usize, Coord)>,
    pushed: bool,
}

impl RandomBatch {
    fn new(q: u16, per_pe: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = q as usize * q as usize;
        let mut items = Vec::new();
        for node in 0..nodes {
            for _ in 0..per_pe {
                items.push((node, Coord::new(rng.gen_range(0..q), rng.gen_range(0..q))));
            }
        }
        RandomBatch {
            items,
            pushed: false,
        }
    }
}

impl TrafficSource for RandomBatch {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        if !self.pushed {
            for &(s, d) in &self.items {
                queues.push(s, d, cycle, 0);
            }
            self.pushed = true;
        }
    }
    fn exhausted(&self) -> bool {
        self.pushed
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A healthy SHG delivers every packet: no drops, no truncation,
    /// exact conservation — distance-descent deflection never livelocks
    /// an all-at-once random batch.
    #[test]
    fn healthy_runs_deliver_everything(
        cfg in arb_shg_config(),
        per_pe in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut src = RandomBatch::new(cfg.q(), per_pe, seed);
        let injected = src.items.len() as u64;
        let report = SimSession::with_backend(ShgBackend::new(cfg))
            .run(&mut src)
            .unwrap()
            .report;
        prop_assert!(!report.truncated);
        prop_assert!(report.conserved(), "{:?}", report.stats);
        prop_assert_eq!(report.stats.injected, injected);
        prop_assert_eq!(report.stats.delivered, injected);
        prop_assert_eq!(report.stats.dropped, 0);
    }

    /// Identical inputs produce bit-identical reports *and* event
    /// streams — the determinism contract sweeps, scenario replay, and
    /// the journaled-resume machinery all rely on.
    #[test]
    fn runs_are_bit_deterministic(cfg in arb_shg_config(), seed in 0u64..500) {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut sink = VecSink::new();
            let report = SimSession::with_backend(ShgBackend::new(cfg))
                .with_sink(&mut sink)
                .run(&mut RandomBatch::new(cfg.q(), 3, seed))
                .unwrap()
                .report;
            runs.push((report, sink.events));
        }
        let (a, b) = (runs.remove(0), runs.remove(0));
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// Seeded storm plans (links dying and healing on a timeline,
    /// fail-stop routers, stalled injectors) never break conservation:
    /// `delivered + in_flight + dropped == injected`, exactly.
    #[test]
    fn storm_plans_conserve_exactly(
        cfg in arb_shg_config(),
        storm_seed in 0u64..500,
        traffic_seed in 0u64..500,
    ) {
        let topo = ShgTopology::new(cfg);
        let storm = FaultPlan::storm_topo(&topo, storm_seed, &StormSpec::default());
        let mut src = RandomBatch::new(cfg.q(), 3, traffic_seed);
        let report = SimSession::with_backend(ShgBackend::new(cfg))
            .with_faults(&storm)
            .run(&mut src)
            .unwrap()
            .report;
        prop_assert!(report.conserved(), "{:?}", report.stats);
    }

    /// The trait-built route LUT always steers along a live productive
    /// slot on a healthy fabric: following `route_slot` greedily from
    /// any source reaches the destination within the BFS hop bound
    /// (strides are a radix decomposition, so greedy is minimal).
    #[test]
    fn greedy_lut_routes_terminate(cfg in arb_shg_config(), seed in 0u64..500) {
        let topo = ShgTopology::new(cfg);
        let nodes = topo.num_nodes();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..8 {
            let (mut at, dst) = (rng.gen_range(0..nodes), rng.gen_range(0..nodes));
            let mut hops = 0usize;
            while at != dst {
                let slot = topo.route_slot(at, dst);
                let links = topo.out_links(at);
                at = links[slot].dst;
                hops += 1;
                prop_assert!(hops <= 4 * usize::from(cfg.q()), "greedy route must not orbit");
            }
        }
    }
}
