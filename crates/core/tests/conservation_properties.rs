//! Conservation invariants over random FastTrack configurations: every
//! injected packet is ejected exactly once (no duplication, no loss), at
//! its destination, having covered at least the DOR distance. The
//! configuration generator only emits valid `FT(N², D, R)` shapes — `R`
//! divides `D` and tiles the ring — so every case exercises express
//! datapaths rather than erroring in the constructor.

use fasttrack_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Arbitrary FastTrack configuration with the paper's validity rules
/// (`D % R == 0`, `R` tiles the ring) enforced by construction.
fn arb_ft_config() -> impl Strategy<Value = NocConfig> {
    (2u16..=3, any::<u8>(), any::<bool>()).prop_map(|(n_exp, sel, full)| {
        let n = 1u16 << n_exp; // 4 or 8
        let policy = if full {
            FtPolicy::Full
        } else {
            FtPolicy::Inject
        };
        let mut variants = Vec::new();
        for d in 1..=n / 2 {
            for r in 1..=d {
                if d % r == 0 && n.is_multiple_of(r) {
                    variants.push((d, r));
                }
            }
        }
        let (d, r) = variants[sel as usize % variants.len()];
        NocConfig::fasttrack(n, d, r, policy).unwrap()
    })
}

/// A batch of random packets for the given torus size.
fn random_batch(n: u16, per_pe: usize, seed: u64) -> Vec<(usize, Coord)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes = n as usize * n as usize;
    let mut batch = Vec::new();
    for node in 0..nodes {
        for _ in 0..per_pe {
            let dst = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
            batch.push((node, dst));
        }
    }
    batch
}

/// Drains a batch through a NoC, returning the deliveries.
fn drain(cfg: &NocConfig, batch: &[(usize, Coord)]) -> Vec<Delivery> {
    let mut noc = Noc::new(cfg.clone());
    let mut queues = InjectQueues::new(cfg.num_nodes());
    for &(src, dst) in batch {
        queues.push(src, dst, 0, 0);
    }
    let mut deliveries = Vec::new();
    let mut cycle = 0u64;
    while cycle < 300_000 {
        noc.step(&mut queues, &mut deliveries, None);
        cycle += 1;
        if queues.is_empty() && noc.in_flight() == 0 {
            break;
        }
    }
    deliveries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator only produces valid FastTrack shapes.
    #[test]
    fn generator_respects_divisibility(cfg in arb_ft_config()) {
        let (d, r) = (cfg.d(), cfg.r());
        prop_assert!(d >= 1);
        prop_assert!(r >= 1);
        prop_assert_eq!(d % r, 0, "R must divide D in {}", cfg.name());
        prop_assert_eq!(cfg.n() % r, 0, "R must tile the ring in {}", cfg.name());
    }

    /// Exactly-once ejection: every injected packet shows up once in the
    /// delivery stream (by `PacketId`), and nothing else does.
    #[test]
    fn every_injection_ejected_exactly_once(
        cfg in arb_ft_config(),
        per_pe in 1usize..10,
        seed in any::<u64>(),
    ) {
        let batch = random_batch(cfg.n(), per_pe, seed);
        let deliveries = drain(&cfg, &batch);
        prop_assert_eq!(deliveries.len(), batch.len(),
            "lost or phantom packets on {}", cfg.name());
        let mut ids = std::collections::HashSet::new();
        for del in &deliveries {
            prop_assert!(ids.insert(del.packet.id),
                "packet {:?} ejected twice on {}", del.packet.id, cfg.name());
        }
    }

    /// Packets land where they were addressed, and their displacement
    /// (short hops + D x express hops) is at least the DOR distance —
    /// express links can overshoot and wrap, never undershoot.
    #[test]
    fn hops_cover_dor_distance(
        cfg in arb_ft_config(),
        seed in any::<u64>(),
    ) {
        let n = cfg.n();
        let batch = random_batch(n, 4, seed);
        let deliveries = drain(&cfg, &batch);
        prop_assert_eq!(deliveries.len(), batch.len());
        let d_len = cfg.d() as u64;
        for del in &deliveries {
            let p = &del.packet;
            let dor = (p.src.dx_to(p.dst, n) + p.src.dy_to(p.dst, n)) as u64;
            let moved = p.short_hops as u64 + d_len * p.express_hops as u64;
            prop_assert!(moved >= dor,
                "packet covered {moved} < DOR distance {dor} on {}", cfg.name());
            prop_assert!(del.network_latency() >= p.total_hops() as u64,
                "latency below hop count on {}", cfg.name());
        }
    }
}
