//! Property tests for the fallback-chain routing subsystem: an empty
//! chain config must be structurally invisible (bit-identical reports
//! *and* event streams to the no-fallback engine), exact conservation —
//! `delivered + in_flight + dropped == injected` — must survive links
//! dying with packets in flight and healing mid-run, and the whole
//! machinery must stay a pure function of its seeds (byte-determinism
//! across repeated runs).

use fasttrack_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Arbitrary FastTrack configuration with the paper's validity rules
/// (`D % R == 0`, `R` tiles the ring) enforced by construction.
fn arb_ft_config() -> impl Strategy<Value = NocConfig> {
    (2u16..=3, any::<u8>(), any::<bool>()).prop_map(|(n_exp, sel, full)| {
        let n = 1u16 << n_exp; // 4 or 8
        let policy = if full {
            FtPolicy::Full
        } else {
            FtPolicy::Inject
        };
        let mut variants = Vec::new();
        for d in 1..=n / 2 {
            for r in 1..=d {
                if d % r == 0 && n.is_multiple_of(r) {
                    variants.push((d, r));
                }
            }
        }
        let (d, r) = variants[sel as usize % variants.len()];
        NocConfig::fasttrack(n, d, r, policy).unwrap()
    })
}

/// A one-shot batch of random packets driven through the simulator's
/// [`TrafficSource`] interface.
struct BatchSource {
    items: Vec<(usize, Coord)>,
    pushed: bool,
}

impl BatchSource {
    fn random(n: u16, per_pe: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = n as usize * n as usize;
        let mut items = Vec::new();
        for node in 0..nodes {
            for _ in 0..per_pe {
                let dst = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                items.push((node, dst));
            }
        }
        BatchSource {
            items,
            pushed: false,
        }
    }
}

impl TrafficSource for BatchSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        if !self.pushed {
            for &(src, dst) in &self.items {
                queues.push(src, dst, cycle, 0);
            }
            self.pushed = true;
        }
    }
    fn exhausted(&self) -> bool {
        self.pushed
    }
}

/// A storm-flavored fault spec: links die *and recover* inside the
/// given window, with a few permanent dead links mixed in.
fn storm_spec(down: usize, dead: usize, window: u64) -> FaultSpec {
    FaultSpec {
        dead_links: dead,
        transient_links: 0,
        fail_stop_routers: 0,
        stalled_injectors: 0,
        down_links: down,
        window: (0, window),
    }
}

/// Directed regression: an express link dies while packets are in
/// flight, then heals while the run is still draining. Conservation
/// must hold through both epoch transitions and traffic injected after
/// the heal must still deliver.
#[test]
fn link_dies_with_packets_in_flight_then_heals() {
    let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
    // Every express link at row 0 goes down early and recovers mid-run.
    let plan = FaultPlan::random(&cfg, 0x5702, &storm_spec(6, 0, 120));
    assert!(!plan.is_empty(), "the scenario needs dynamic outages");
    let report = SimSession::new(&cfg)
        .options(SimOptions::with_max_cycles(100_000))
        .with_fallback(&FallbackConfig::standard())
        .expect("standard chains validate")
        .with_faults(&plan)
        .run(&mut BatchSource::random(cfg.n(), 3, 0x5702))
        .map(|o| o.report)
        .expect("drawn plans always validate");
    assert!(!report.truncated, "the run must drain after the heal");
    assert!(report.conserved());
    assert_eq!(
        report.stats.delivered + report.stats.dropped,
        report.stats.injected,
        "a drained run accounts for every packet"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An empty chain config is structurally invisible: with the same
    /// faults and traffic, `with_fallback(none)` produces a report and
    /// an event stream bit-identical to a session that never called
    /// `with_fallback` — i.e. exactly today's drop behavior.
    #[test]
    fn empty_chains_are_bit_identical_to_drop_behavior(
        cfg in arb_ft_config(),
        seed in 0u64..1_000,
        down in 0usize..4,
        dead in 0usize..3,
    ) {
        use fasttrack_core::trace::VecSink;
        let plan = FaultPlan::random(&cfg, seed ^ 0xFA11, &storm_spec(down, dead, 300));
        let opts = SimOptions::with_max_cycles(50_000);

        let mut plain_events = VecSink::new();
        let plain = SimSession::new(&cfg)
            .options(opts)
            .with_faults(&plan)
            .with_sink(&mut plain_events)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .map(|o| o.report)
            .expect("drawn plans always validate");

        let mut none_events = VecSink::new();
        let none = SimSession::new(&cfg)
            .options(opts)
            .with_fallback(&FallbackConfig::none())
            .expect("empty chains validate")
            .with_faults(&plan)
            .with_sink(&mut none_events)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .map(|o| o.report)
            .expect("drawn plans always validate");

        prop_assert_eq!(&plain, &none, "empty chains must not perturb the report");
        prop_assert_eq!(&plain_events.events, &none_events.events,
            "empty chains must not perturb the event stream");
    }

    /// Exact conservation across recovery windows: links die with
    /// packets in flight and heal mid-run, with the standard chains
    /// demoting and rerouting — nothing duplicated, nothing
    /// unaccounted, at one or several channels.
    #[test]
    fn conservation_holds_across_recovery_windows(
        cfg in arb_ft_config(),
        seed in 0u64..1_000,
        down in 1usize..5,
        dead in 0usize..2,
        channels in 1usize..3,
    ) {
        let plan = FaultPlan::random(&cfg, seed ^ 0x5702, &storm_spec(down, dead, 400));
        let report = SimSession::new(&cfg)
            .options(SimOptions::with_max_cycles(30_000))
            .channels(channels)
            .with_fallback(&FallbackConfig::standard())
            .expect("standard chains validate")
            .with_faults(&plan)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .map(|o| o.report)
            .expect("drawn plans always validate");
        prop_assert!(
            report.conserved(),
            "delivered {} + in_flight {} + dropped {} != injected {} (plan: {})",
            report.stats.delivered,
            report.in_flight,
            report.stats.dropped,
            report.stats.injected,
            plan,
        );
        prop_assert!(report.stats.delivered + report.stats.dropped <= report.stats.injected);
        // Demotions and channel switches are reroutes by definition.
        prop_assert!(
            report.stats.fallback_demotions + report.stats.fallback_channel_switches
                <= report.stats.rerouted
        );
    }

    /// Byte-determinism over recovery windows: the same seeds produce
    /// the same report and the same event stream, run after run, with
    /// the full chain machinery (demotion, eviction, epoch patching)
    /// engaged.
    #[test]
    fn recovery_windows_are_byte_deterministic(
        cfg in arb_ft_config(),
        seed in 0u64..1_000,
        down in 1usize..5,
    ) {
        use fasttrack_core::trace::VecSink;
        let plan = FaultPlan::random(&cfg, seed ^ 0x5702, &storm_spec(down, 1, 400));
        let run = || {
            let mut events = VecSink::new();
            let report = SimSession::new(&cfg)
                .options(SimOptions::with_max_cycles(30_000))
                .with_fallback(&FallbackConfig::standard())
                .expect("standard chains validate")
                .with_faults(&plan)
                .with_sink(&mut events)
                .run(&mut BatchSource::random(cfg.n(), 2, seed))
                .map(|o| o.report)
                .expect("drawn plans always validate");
            (report, events.events)
        };
        let (report_a, events_a) = run();
        let (report_b, events_b) = run();
        prop_assert_eq!(&report_a, &report_b);
        prop_assert_eq!(&events_a, &events_b);
    }
}
