//! Differential properties for the `SimSession` redesign and the
//! hot-path routing kernel:
//!
//! * every legacy `simulate_*` entry point must produce a report
//!   bit-identical to the equivalent `SimSession` composition (the shims
//!   are one-liners over the session, so this pins the session semantics
//!   to the pre-redesign behavior);
//! * LUT-based route resolution ([`RouteMode::Lut`], the default) must
//!   be bit-identical to recomputing `compute_prefs` per decision
//!   ([`RouteMode::Direct`]) over random `FT(N², D, R)` grids, traffic,
//!   faults, and channel counts;
//! * the batched driver must reproduce fresh-engine runs exactly.

#![cfg(feature = "legacy-api")]
#![allow(deprecated)]

use fasttrack_core::prelude::*;
use fasttrack_core::sim::simulate_multichannel_monitored;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Arbitrary FastTrack configuration with the paper's validity rules
/// (`D % R == 0`, `R` tiles the ring) enforced by construction.
fn arb_ft_config() -> impl Strategy<Value = NocConfig> {
    (2u16..=3, any::<u8>(), any::<bool>()).prop_map(|(n_exp, sel, full)| {
        let n = 1u16 << n_exp; // 4 or 8
        let policy = if full {
            FtPolicy::Full
        } else {
            FtPolicy::Inject
        };
        let mut variants = Vec::new();
        for d in 1..=n / 2 {
            for r in 1..=d {
                if d % r == 0 && n.is_multiple_of(r) {
                    variants.push((d, r));
                }
            }
        }
        let (d, r) = variants[sel as usize % variants.len()];
        NocConfig::fasttrack(n, d, r, policy).unwrap()
    })
}

/// A one-shot batch of random packets.
struct BatchSource {
    items: Vec<(usize, Coord)>,
    pushed: bool,
}

impl BatchSource {
    fn random(n: u16, per_pe: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = n as usize * n as usize;
        let mut items = Vec::new();
        for node in 0..nodes {
            for _ in 0..per_pe {
                let dst = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                items.push((node, dst));
            }
        }
        BatchSource {
            items,
            pushed: false,
        }
    }
}

impl TrafficSource for BatchSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        if !self.pushed {
            for &(src, dst) in &self.items {
                queues.push(src, dst, cycle, 0);
            }
            self.pushed = true;
        }
    }
    fn exhausted(&self) -> bool {
        self.pushed
    }
}

/// A fault plan exercising every supported fault kind, drawn
/// deterministically from a seed (always torus-safe by construction).
fn small_plan(cfg: &NocConfig, seed: u64) -> FaultPlan {
    let spec = FaultSpec {
        dead_links: 1,
        transient_links: 1,
        fail_stop_routers: 1,
        stalled_injectors: 1,
        down_links: 0,
        window: (0, 200),
    };
    FaultPlan::random(cfg, seed ^ 0xFA17, &spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Route-LUT dispatch is bit-identical to direct computation for
    /// whole simulations over random FT grids (reports carry every
    /// counter, histogram, and the cycle count, so equality here is
    /// cycle-exactness).
    #[test]
    fn lut_routing_is_bit_identical_to_direct(cfg in arb_ft_config(), seed in 0u64..500) {
        let lut = SimSession::new(&cfg)
            .route_mode(RouteMode::Lut)
            .run(&mut BatchSource::random(cfg.n(), 3, seed))
            .unwrap()
            .report;
        let direct = SimSession::new(&cfg)
            .route_mode(RouteMode::Direct)
            .run(&mut BatchSource::random(cfg.n(), 3, seed))
            .unwrap()
            .report;
        prop_assert_eq!(lut, direct);
    }

    /// Same bit-identity through the multi-channel bank (the LUT is
    /// shared across channels there) and under faults.
    #[test]
    fn lut_matches_direct_multichannel_faulted(
        cfg in arb_ft_config(),
        channels in 1usize..=3,
        seed in 0u64..500,
    ) {
        let plan = small_plan(&cfg, seed);
        let run = |mode: RouteMode| {
            SimSession::new(&cfg)
                .channels(channels)
                .route_mode(mode)
                .with_faults(&plan)
                .run(&mut BatchSource::random(cfg.n(), 2, seed))
                .map(|o| o.report)
                .unwrap()
        };
        prop_assert_eq!(run(RouteMode::Lut), run(RouteMode::Direct));
    }

    /// `simulate` == `SimSession::new(cfg).run(..)`.
    #[test]
    fn shim_simulate_matches_session(cfg in arb_ft_config(), seed in 0u64..500) {
        let opts = SimOptions::default();
        let legacy = simulate(&cfg, &mut BatchSource::random(cfg.n(), 2, seed), opts);
        let session = SimSession::new(&cfg)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .unwrap()
            .report;
        prop_assert_eq!(legacy, session);
    }

    /// `simulate_traced` == session + sink, and the event streams match.
    #[test]
    fn shim_traced_matches_session(cfg in arb_ft_config(), seed in 0u64..500) {
        let opts = SimOptions::default();
        let mut legacy_sink = VecSink::new();
        let legacy = simulate_traced(
            &cfg,
            &mut BatchSource::random(cfg.n(), 2, seed),
            opts,
            &mut legacy_sink,
        );
        let mut session_sink = VecSink::new();
        let session = SimSession::new(&cfg)
            .with_sink(&mut session_sink)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .unwrap()
            .report;
        prop_assert_eq!(legacy, session);
        prop_assert_eq!(&legacy_sink.events, &session_sink.events);
    }

    /// `simulate_faulted` == session + faults (both the Ok reports and
    /// the error cases line up via the shim being a one-liner).
    #[test]
    fn shim_faulted_matches_session(cfg in arb_ft_config(), seed in 0u64..500) {
        let plan = small_plan(&cfg, seed);
        let opts = SimOptions::default();
        let legacy = simulate_faulted(
            &cfg,
            &plan,
            &mut BatchSource::random(cfg.n(), 2, seed),
            opts,
        )
        .unwrap();
        let session = SimSession::new(&cfg)
            .with_faults(&plan)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .unwrap()
            .report;
        prop_assert_eq!(legacy, session);
    }

    /// `simulate_multichannel` (+ traced) == session + channels.
    #[test]
    fn shim_multichannel_matches_session(
        cfg in arb_ft_config(),
        channels in 1usize..=3,
        seed in 0u64..500,
    ) {
        let opts = SimOptions::default();
        let legacy = simulate_multichannel(
            &cfg,
            channels,
            &mut BatchSource::random(cfg.n(), 2, seed),
            opts,
        );
        let mut sink = VecSink::new();
        let traced = simulate_multichannel_traced(
            &cfg,
            channels,
            &mut BatchSource::random(cfg.n(), 2, seed),
            opts,
            &mut sink,
        );
        let session = SimSession::new(&cfg)
            .channels(channels)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .unwrap()
            .report;
        prop_assert_eq!(&legacy, &session);
        prop_assert_eq!(&traced, &session);
        // The `-{k}x` naming (including `-1x`) is part of the contract.
        prop_assert!(session.config_name.ends_with(&format!("-{channels}x")));
    }

    /// Monitored shims == session + monitor, with identical health
    /// summaries, for both the single and multi-channel paths.
    #[test]
    fn shim_monitored_matches_session(
        cfg in arb_ft_config(),
        channels in 1usize..=2,
        seed in 0u64..500,
    ) {
        let opts = SimOptions::default();
        let mcfg = MonitorConfig::default();
        let (legacy, legacy_mon) = simulate_multichannel_monitored(
            &cfg,
            channels,
            &mut BatchSource::random(cfg.n(), 2, seed),
            opts,
            mcfg,
        );
        let (session, session_mon) = SimSession::new(&cfg)
            .channels(channels)
            .with_monitor(mcfg)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .unwrap()
            .into_monitored();
        prop_assert_eq!(legacy, session);
        prop_assert_eq!(
            legacy_mon.summary().to_json(),
            session_mon.summary().to_json()
        );
    }

    /// The batched driver (one engine, reset between seeds) reproduces
    /// fresh-engine runs exactly — LUTs, SoA pool recycling, and fault
    /// tables all survive the reset.
    #[test]
    fn run_batch_matches_fresh_runs(
        cfg in arb_ft_config(),
        channels in 1usize..=2,
        base in 0u64..200,
    ) {
        let plan = small_plan(&cfg, base);
        let seeds = [base, base + 1, base];
        let batch = SimSession::new(&cfg)
            .channels(channels)
            .with_faults(&plan)
            .run_batch(&seeds, |seed| BatchSource::random(cfg.n(), 2, seed))
            .unwrap();
        prop_assert_eq!(batch.len(), seeds.len());
        for (outcome, &seed) in batch.iter().zip(&seeds) {
            let fresh = SimSession::new(&cfg)
                .channels(channels)
                .with_faults(&plan)
                .run(&mut BatchSource::random(cfg.n(), 2, seed))
                .unwrap();
            prop_assert_eq!(&outcome.report, &fresh.report);
        }
        // Identical seeds at positions 0 and 2 must yield identical
        // reports (the reset leaves no residue).
        prop_assert_eq!(&batch[0].report, &batch[2].report);
    }

    /// Composing everything at once — channels, faults, monitor, sink —
    /// still matches the plain run's report (observation never perturbs)
    /// and the legacy faulted+traced shim.
    #[test]
    fn fully_composed_session_matches_legacy(cfg in arb_ft_config(), seed in 0u64..500) {
        let plan = small_plan(&cfg, seed);
        let opts = SimOptions::default();
        let mut legacy_sink = VecSink::new();
        let legacy = simulate_faulted_traced(
            &cfg,
            &plan,
            &mut BatchSource::random(cfg.n(), 2, seed),
            opts,
            &mut legacy_sink,
        )
        .unwrap();
        let mut sink = VecSink::new();
        let (report, monitor) = SimSession::new(&cfg)
            .with_faults(&plan)
            .with_monitor(MonitorConfig::default())
            .with_sink(&mut sink)
            .run(&mut BatchSource::random(cfg.n(), 2, seed))
            .unwrap()
            .into_monitored();
        prop_assert_eq!(legacy, report);
        prop_assert_eq!(&legacy_sink.events, &sink.events);
        prop_assert!(monitor.summary().injected > 0);
    }
}
