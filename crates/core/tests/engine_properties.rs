//! Property-based tests of the simulation engine: livelock freedom,
//! packet conservation, hop accounting, and deterministic replay across
//! randomized configurations and traffic.

use fasttrack_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Arbitrary valid NoC configuration on a small torus.
fn arb_config() -> impl Strategy<Value = NocConfig> {
    (2u16..=3, any::<u8>(), any::<bool>(), any::<bool>()).prop_map(
        |(n_exp, sel, full, dedicated)| {
            let n = 1u16 << n_exp; // 4 or 8
            let policy = if full {
                FtPolicy::Full
            } else {
                FtPolicy::Inject
            };
            // Enumerate valid (d, r) pairs for this n and pick one.
            let mut variants = vec![None]; // Hoplite
            for d in 1..=n / 2 {
                for r in 1..=d {
                    if d % r == 0 && n.is_multiple_of(r) {
                        variants.push(Some((d, r)));
                    }
                }
            }
            let choice = variants[sel as usize % variants.len()];
            let cfg = match choice {
                None => NocConfig::hoplite(n).unwrap(),
                Some((d, r)) => NocConfig::fasttrack(n, d, r, policy).unwrap(),
            };
            if dedicated {
                cfg.with_exit_policy(ExitPolicy::Dedicated)
            } else {
                cfg.with_exit_policy(ExitPolicy::SharedWithSouth)
            }
        },
    )
}

/// A batch of random packets for the given torus size.
fn random_batch(n: u16, per_pe: usize, seed: u64) -> Vec<(usize, Coord)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes = n as usize * n as usize;
    let mut batch = Vec::new();
    for node in 0..nodes {
        for _ in 0..per_pe {
            let dst = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
            batch.push((node, dst));
        }
    }
    batch
}

/// Drains a batch through a NoC, returning (deliveries, cycles).
fn drain(cfg: &NocConfig, batch: &[(usize, Coord)], max_cycles: u64) -> (Vec<Delivery>, u64) {
    let mut noc = Noc::new(cfg.clone());
    let mut queues = InjectQueues::new(cfg.num_nodes());
    for &(src, dst) in batch {
        queues.push(src, dst, 0, 0);
    }
    let mut deliveries = Vec::new();
    let mut cycle = 0;
    while cycle < max_cycles {
        noc.step(&mut queues, &mut deliveries, None);
        cycle += 1;
        if queues.is_empty() && noc.in_flight() == 0 {
            break;
        }
    }
    (deliveries, cycle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Livelock freedom + conservation: every enqueued packet is
    /// delivered, exactly once, to the right place.
    #[test]
    fn all_packets_delivered_exactly_once(
        cfg in arb_config(),
        per_pe in 1usize..12,
        seed in any::<u64>(),
    ) {
        let n = cfg.n();
        let batch = random_batch(n, per_pe, seed);
        let (deliveries, _) = drain(&cfg, &batch, 300_000);
        prop_assert_eq!(deliveries.len(), batch.len(), "lost packets on {}", cfg.name());
        let mut seen = std::collections::HashSet::new();
        for d in &deliveries {
            prop_assert!(seen.insert(d.packet.id), "duplicate delivery");
        }
        // Delivered to the correct destination.
        let mut expected = batch.clone();
        expected.sort_by_key(|&(s, d)| (s, d));
        let mut got: Vec<(usize, Coord)> = deliveries
            .iter()
            .map(|d| (d.packet.src.to_node_id(n), d.packet.dst))
            .collect();
        got.sort_by_key(|&(s, d)| (s, d));
        prop_assert_eq!(got, expected);
    }

    /// Hop accounting: every packet's total displacement (short hops +
    /// D x express hops) equals its source-destination offset modulo the
    /// ring size in each... summed over both dimensions: the total is
    /// congruent to dx + dy (every deflection adds a full ring lap or a
    /// compensated detour).
    #[test]
    fn hop_displacement_congruence(
        cfg in arb_config(),
        seed in any::<u64>(),
    ) {
        let n = cfg.n();
        let batch = random_batch(n, 4, seed);
        let (deliveries, _) = drain(&cfg, &batch, 300_000);
        let d_len = cfg.d().max(1) as u64;
        for del in &deliveries {
            let p = &del.packet;
            let dist = (p.src.dx_to(p.dst, n) + p.src.dy_to(p.dst, n)) as u64;
            let moved = p.short_hops as u64 + d_len * p.express_hops as u64;
            prop_assert!(moved >= dist || (dist - moved).is_multiple_of(n as u64),
                "impossible displacement: moved {moved}, dist {dist}");
            // Deflection-free packets take no detours at all (their
            // displacement may still wrap on express rings when D does
            // not divide the offset evenly).
            if p.deflections == 0 {
                prop_assert_eq!((moved as i64 - dist as i64).rem_euclid(n as i64), 0,
                    "deflection-free packet with non-congruent path: {:?}", p);
            }
        }
    }

    /// Determinism: identical configuration + identical batch produce
    /// identical makespans and delivery sets.
    #[test]
    fn deterministic_replay(cfg in arb_config(), seed in any::<u64>()) {
        let batch = random_batch(cfg.n(), 5, seed);
        let (d1, c1) = drain(&cfg, &batch, 300_000);
        let (d2, c2) = drain(&cfg, &batch, 300_000);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(d1, d2);
    }

    /// Latency sanity: no packet is delivered before it could possibly
    /// arrive (injection + at least the express-optimal hop count).
    #[test]
    fn latency_lower_bound(cfg in arb_config(), seed in any::<u64>()) {
        let n = cfg.n();
        let batch = random_batch(n, 3, seed);
        let (deliveries, _) = drain(&cfg, &batch, 300_000);
        for del in &deliveries {
            let p = &del.packet;
            prop_assert!(del.cycle > p.injected_at);
            let net = del.network_latency();
            prop_assert!(net >= p.total_hops() as u64,
                "latency {net} below hop count {}", p.total_hops());
        }
    }

    /// Multi-channel NoCs obey the same conservation law and never beat
    /// the single-injection bound (one packet per PE per cycle).
    #[test]
    fn multichannel_conservation(
        channels in 1usize..4,
        per_pe in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = NocConfig::hoplite(4).unwrap();
        let batch = random_batch(4, per_pe, seed);
        let mut mnoc = MultiNoc::new(cfg, channels);
        let mut queues = InjectQueues::new(16);
        for &(src, dst) in &batch {
            queues.push(src, dst, 0, 0);
        }
        let mut deliveries = Vec::new();
        let mut cycles = 0u64;
        while cycles < 200_000 {
            mnoc.step(&mut queues, &mut deliveries);
            cycles += 1;
            if queues.is_empty() && mnoc.in_flight() == 0 {
                break;
            }
        }
        prop_assert_eq!(deliveries.len(), batch.len());
        // Injection bound: per_pe packets per PE need at least per_pe
        // injection cycles.
        prop_assert!(cycles >= per_pe as u64);
    }
}
