//! Property-based tests of the routing function and port allocator:
//! legality of every preference, allocation totality, and priority
//! soundness, across randomized router states.

use fasttrack_core::alloc::{allocate, try_inject};
use fasttrack_core::config::{ExitPolicy, FtPolicy, NocConfig};
use fasttrack_core::geom::Coord;
use fasttrack_core::port::{InPort, OutPort};
use fasttrack_core::router::{allowed_outputs, RouterClass};
use fasttrack_core::routing::compute_prefs;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = NocConfig> {
    (any::<u8>(), any::<bool>()).prop_map(|(sel, full)| {
        let n = 8u16;
        let policy = if full {
            FtPolicy::Full
        } else {
            FtPolicy::Inject
        };
        let variants = [
            None,
            Some((1u16, 1u16)),
            Some((2, 1)),
            Some((2, 2)),
            Some((4, 1)),
            Some((4, 2)),
            Some((4, 4)),
            Some((3, 1)),
        ];
        match variants[sel as usize % variants.len()] {
            None => NocConfig::hoplite(n).unwrap(),
            Some((d, r)) => NocConfig::fasttrack(n, d, r, policy).unwrap(),
        }
    })
}

fn arb_coord(n: u16) -> impl Strategy<Value = Coord> {
    (0..n, 0..n).prop_map(|(x, y)| Coord::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every port in every preference list is physically connected from
    /// that input (the connectivity matrix is the hardware truth).
    #[test]
    fn prefs_are_always_legal(
        cfg in arb_config(),
        at in arb_coord(8),
        dst in arb_coord(8),
    ) {
        let class = RouterClass::of(&cfg, at);
        for port in InPort::ALL {
            if !class.has_input(port) || (cfg.ft_policy().is_none() && port.is_express()) {
                continue;
            }
            let prefs = compute_prefs(&cfg, class, port, at, dst);
            prop_assert!(!prefs.ports().is_empty());
            let allowed = allowed_outputs(cfg.ft_policy(), class, port);
            for &p in prefs.ports() {
                prop_assert!(allowed.contains(p),
                    "illegal pref {p} from {port} at {at} in {}", cfg.name());
            }
            // No duplicates.
            let mut seen = std::collections::HashSet::new();
            for &p in prefs.ports() {
                prop_assert!(seen.insert(p));
            }
            // Exit appears iff the packet is at its destination.
            let at_dest = at == dst;
            prop_assert_eq!(prefs.ports().contains(&OutPort::Exit), at_dest);
            if at_dest {
                prop_assert_eq!(prefs.primary(), OutPort::Exit);
            }
        }
    }

    /// The allocator assigns every in-flight input a distinct slot, and
    /// the highest-priority input always receives its first *available*
    /// preference when doing so leaves the rest feasible — in
    /// particular W_ex is never denied its primary choice when alone.
    #[test]
    fn allocator_total_and_distinct(
        cfg in arb_config(),
        at in arb_coord(8),
        dsts in proptest::array::uniform4(arb_coord(8)),
        occupancy in 1u8..16,
        exit_blocked in any::<bool>(),
    ) {
        let class = RouterClass::of(&cfg, at);
        let mut inputs = Vec::new();
        for (i, port) in InPort::IN_FLIGHT.iter().enumerate() {
            if occupancy & (1 << i) == 0 {
                continue;
            }
            if !class.has_input(*port) || (cfg.ft_policy().is_none() && port.is_express()) {
                continue;
            }
            inputs.push(compute_prefs(&cfg, class, *port, at, dsts[i]));
        }
        if inputs.is_empty() {
            return Ok(());
        }
        let mut avail = class.available_outputs();
        if exit_blocked {
            avail.remove(OutPort::Exit);
            // With exit blocked, at-destination packets still hold
            // deflection fallbacks, so allocation must stay total.
        }
        let exit = cfg.exit_policy();
        let assignment = allocate(&inputs, avail, exit);
        let assigned: Vec<OutPort> =
            assignment[..inputs.len()].iter().map(|a| a.unwrap()).collect();
        // Distinct slots: under shared exit, Exit and S_sh collide.
        let slot = |p: OutPort| match (p, exit) {
            (OutPort::Exit, ExitPolicy::SharedWithSouth) => OutPort::SouthSh.index(),
            _ => p.index(),
        };
        let mut used = std::collections::HashSet::new();
        for &p in &assigned {
            prop_assert!(used.insert(slot(p)), "slot collision in {:?}", assigned);
            prop_assert!(avail.contains(p) || p == OutPort::Exit && !exit_blocked);
        }
        // Single-input case: the packet always gets its first *available*
        // choice (its primary may be Exit while delivery is gated off).
        if inputs.len() == 1 {
            let first_available = inputs[0]
                .ports()
                .iter()
                .copied()
                .find(|&p| avail.contains(p))
                .expect("some port must be available");
            prop_assert_eq!(assigned[0], first_available);
        }
    }

    /// PE injection never takes a slot consumed by in-flight traffic and
    /// never picks a port outside its preference list.
    #[test]
    fn injection_respects_taken_slots(
        cfg in arb_config(),
        at in arb_coord(8),
        dst in arb_coord(8),
        taken_mask in 0u8..32,
    ) {
        let class = RouterClass::of(&cfg, at);
        let pe = compute_prefs(&cfg, class, InPort::Pe, at, dst);
        let taken: Vec<OutPort> = OutPort::ALL
            .into_iter()
            .filter(|p| taken_mask & (1 << p.index()) != 0)
            .collect();
        let exit = cfg.exit_policy();
        if let Some(port) = try_inject(&pe, class.available_outputs(), &taken, exit) {
            prop_assert!(pe.ports().contains(&port));
            prop_assert!(!taken.contains(&port));
            if exit == ExitPolicy::SharedWithSouth {
                let shared_taken = taken.contains(&OutPort::Exit) || taken.contains(&OutPort::SouthSh);
                if port == OutPort::Exit || port == OutPort::SouthSh {
                    prop_assert!(!shared_taken, "injected into a consumed shared slot");
                }
            }
        }
    }

    /// Express lane-change legality: express inputs never route onto the
    /// short lane except via the two livelock turns.
    #[test]
    fn express_to_short_only_at_turns(cfg in arb_config(), at in arb_coord(8), dst in arb_coord(8)) {
        if cfg.ft_policy().is_none() {
            return Ok(());
        }
        let class = RouterClass::of(&cfg, at);
        if class.has_input(InPort::WestEx) {
            let prefs = compute_prefs(&cfg, class, InPort::WestEx, at, dst);
            prop_assert!(!prefs.ports().contains(&OutPort::EastSh),
                "W_ex -> E_sh is not a legal transition");
        }
        if class.has_input(InPort::NorthEx) {
            let prefs = compute_prefs(&cfg, class, InPort::NorthEx, at, dst);
            prop_assert!(!prefs.ports().contains(&OutPort::SouthSh),
                "N_ex -> S_sh is not a legal transition");
        }
    }
}
