//! Profiler transparency and span-algebra properties:
//!
//! * a profiled [`SimSession`] run must be *report-identical* and
//!   *event-stream-identical* to an unprofiled one (the same proof shape
//!   as the monitor-identity differential: profiling observes, never
//!   perturbs);
//! * spans close strictly LIFO and the sum of child durations never
//!   exceeds the parent's duration (disjoint sub-intervals in integer
//!   nanoseconds);
//! * hot-path counters (`route_decisions`, `pool_reuse`) agree with the
//!   event stream and are maintained identically with or without an
//!   attached sink.

use fasttrack_core::prelude::*;
use fasttrack_core::profile::{summarize, SpanRecorder};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A one-shot batch of random packets.
struct BatchSource {
    items: Vec<(usize, Coord)>,
    pushed: bool,
}

impl BatchSource {
    fn random(n: u16, per_pe: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = n as usize * n as usize;
        let mut items = Vec::new();
        for node in 0..nodes {
            for _ in 0..per_pe {
                let dst = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                items.push((node, dst));
            }
        }
        BatchSource {
            items,
            pushed: false,
        }
    }
}

impl TrafficSource for BatchSource {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        if !self.pushed {
            for &(src, dst) in &self.items {
                queues.push(src, dst, cycle, 0);
            }
            self.pushed = true;
        }
    }
    fn exhausted(&self) -> bool {
        self.pushed
    }
}

fn ft_cfg() -> NocConfig {
    NocConfig::fasttrack(8, 2, 2, FtPolicy::Full).unwrap()
}

#[test]
fn profiled_run_is_report_identical() {
    for cfg in [NocConfig::hoplite(4).unwrap(), ft_cfg()] {
        let plain = SimSession::new(&cfg)
            .run(&mut BatchSource::random(cfg.n(), 8, 11))
            .unwrap();
        let profiled = SimSession::new(&cfg)
            .with_profile()
            .run(&mut BatchSource::random(cfg.n(), 8, 11))
            .unwrap();
        assert_eq!(
            plain.report, profiled.report,
            "profiling must not perturb the run"
        );
        assert!(plain.profile.is_none());
        let profile = profiled.profile.expect("profile attached");
        assert!(profile.summary().drive_seconds > 0.0);
        assert_eq!(profile.summary().delivered, plain.report.stats.delivered);
    }
}

#[test]
fn profiled_run_is_event_stream_identical() {
    let cfg = ft_cfg();
    let mut plain_sink = VecSink::new();
    let plain = SimSession::new(&cfg)
        .with_sink(&mut plain_sink)
        .run(&mut BatchSource::random(8, 6, 23))
        .unwrap();
    let mut profiled_sink = VecSink::new();
    let profiled = SimSession::new(&cfg)
        .with_profile()
        .with_sink(&mut profiled_sink)
        .run(&mut BatchSource::random(8, 6, 23))
        .unwrap();
    assert_eq!(plain.report, profiled.report);
    assert_eq!(
        plain_sink.events, profiled_sink.events,
        "the event stream must be identical with profiling attached"
    );
    // The profiler's dispatch counter saw exactly the same stream.
    assert_eq!(
        profiled.profile.unwrap().summary().events_dispatched,
        plain_sink.events.len() as u64
    );
}

#[test]
fn profiled_run_composes_with_monitor_and_faults() {
    let cfg = ft_cfg();
    let plan = FaultPlan::new().with(Fault::FailStopRouter { node: 9, at: 50 });
    let plain = SimSession::new(&cfg)
        .with_faults(&plan)
        .with_monitor(MonitorConfig::default())
        .run(&mut BatchSource::random(8, 4, 7))
        .unwrap();
    let profiled = SimSession::new(&cfg)
        .with_faults(&plan)
        .with_monitor(MonitorConfig::default())
        .with_profile()
        .run(&mut BatchSource::random(8, 4, 7))
        .unwrap();
    assert_eq!(plain.report, profiled.report);
    let profile = profiled.profile.expect("profile attached");
    // With a monitor attached, profile cells share its registry and ride
    // the same exposition.
    let monitor = profiled.monitor.expect("monitor attached");
    let text = monitor.registry().to_prometheus();
    assert!(text.contains("fasttrack_profile_cycles_per_sec"));
    assert!(text.contains("fasttrack_profile_route_decisions_total"));
    assert_eq!(
        profile.registry().to_prometheus(),
        text,
        "profile and monitor must share one registry"
    );
    // Fault build phases were spanned.
    let names: Vec<_> = profile.spans().iter().map(|s| s.name).collect();
    assert!(names.contains(&"session"));
    assert!(names.contains(&"session.build"));
    assert!(names.contains(&"session.build.fault_validate"));
    assert!(names.contains(&"session.build.route_lut"));
    assert!(names.contains(&"session.drive"));
}

#[test]
fn run_batch_profiles_each_seed() {
    let cfg = NocConfig::hoplite(4).unwrap();
    let seeds = [1u64, 2, 3];
    let plain = SimSession::new(&cfg)
        .run_batch(&seeds, |s| BatchSource::random(4, 5, s))
        .unwrap();
    let profiled = SimSession::new(&cfg)
        .with_profile()
        .run_batch(&seeds, |s| BatchSource::random(4, 5, s))
        .unwrap();
    assert_eq!(plain.len(), profiled.len());
    for (p, q) in plain.iter().zip(&profiled) {
        assert_eq!(p.report, q.report, "batch runs must be unperturbed");
        assert!(q.profile.is_some());
    }
    // Only the first run pays (and records) the engine build.
    let has_build = |o: &fasttrack_core::sim::SimOutcome| {
        o.profile
            .as_ref()
            .unwrap()
            .spans()
            .iter()
            .any(|s| s.name == "session.build")
    };
    assert!(has_build(&profiled[0]));
    assert!(!has_build(&profiled[1]));
}

#[test]
fn route_decisions_match_event_stream() {
    let cfg = ft_cfg();
    let mut sink = VecSink::new();
    let outcome = SimSession::new(&cfg)
        .with_sink(&mut sink)
        .run(&mut BatchSource::random(8, 6, 31))
        .unwrap();
    let decisions = sink.of_kind("route").len() + sink.of_kind("inject").len();
    assert_eq!(
        outcome.report.stats.route_decisions, decisions as u64,
        "route_decisions must count in-flight allocations plus accepted injections"
    );
    // A closed workload this size recycles pool slots.
    assert!(outcome.report.stats.pool_reuse > 0);
    assert!(outcome.report.stats.pool_reuse <= outcome.report.stats.injected);
}

#[test]
fn counters_are_sink_independent() {
    let cfg = ft_cfg();
    let plain = SimSession::new(&cfg)
        .run(&mut BatchSource::random(8, 6, 31))
        .unwrap();
    let mut sink = VecSink::new();
    let traced = SimSession::new(&cfg)
        .with_sink(&mut sink)
        .run(&mut BatchSource::random(8, 6, 31))
        .unwrap();
    assert_eq!(
        plain.report.stats.route_decisions,
        traced.report.stats.route_decisions
    );
    assert_eq!(
        plain.report.stats.pool_reuse,
        traced.report.stats.pool_reuse
    );
}

#[test]
fn profile_chrome_trace_and_json_are_well_formed() {
    let cfg = ft_cfg();
    let outcome = SimSession::new(&cfg)
        .with_profile()
        .run(&mut BatchSource::random(8, 4, 3))
        .unwrap();
    let profile = outcome.profile.unwrap();
    let doc = profile.chrome_trace();
    assert!(doc.starts_with("{\"traceEvents\":["));
    assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    assert!(doc.contains("\"name\":\"session.drive\""));
    let json = profile.to_json();
    assert!(json.contains("\"schema\":\"fasttrack-profile-v1\""));
    assert!(json.contains("\"phases\":["));
    let text = profile.render_text();
    assert!(text.contains("session.drive"));
    assert!(text.contains("cycles/s"));
}

proptest! {
    /// Spans close LIFO; every recorded span nests inside its parent's
    /// interval and the children of each span are pairwise disjoint, so
    /// the sum of child durations never exceeds the parent duration.
    /// The enter/exit program is a random well-formed sequence: at each
    /// step, either open a new span (under a depth cap) or close the
    /// innermost one.
    #[test]
    fn span_nesting_laws((seed, len) in (any::<u64>(), 1usize..64)) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let program: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
        static NAMES: [&str; 4] = ["a", "b", "c", "d"];
        let mut rec = SpanRecorder::new();
        let mut tokens = Vec::new();
        for (i, &open) in program.iter().enumerate() {
            if open || tokens.is_empty() {
                if tokens.len() < 8 {
                    tokens.push(rec.enter(NAMES[i % NAMES.len()]));
                }
            } else {
                rec.exit(tokens.pop().unwrap());
            }
        }
        while let Some(t) = tokens.pop() {
            rec.exit(t);
        }
        let spans = rec.finish();
        let mut child_sum = vec![0u64; spans.len()];
        for (i, s) in spans.iter().enumerate() {
            if let Some(p) = s.parent {
                let p = p as usize;
                prop_assert!(p < i, "parents precede children");
                prop_assert_eq!(spans[p].depth + 1, s.depth);
                prop_assert!(s.start_ns >= spans[p].start_ns);
                prop_assert!(s.end_ns() <= spans[p].end_ns());
                child_sum[p] += s.dur_ns;
            } else {
                prop_assert_eq!(s.depth, 0);
            }
        }
        for (i, s) in spans.iter().enumerate() {
            prop_assert!(
                child_sum[i] <= s.dur_ns,
                "children of {} sum to {} > parent {}",
                s.name, child_sum[i], s.dur_ns
            );
        }
        // The per-phase summary conserves time: summing self-time over
        // every phase recovers exactly the root spans' total duration
        // (each nanosecond is attributed to exactly one span).
        let phases = summarize(&spans);
        let self_total: u64 = phases.iter().map(|p| p.self_ns).sum();
        let roots: u64 = spans.iter().filter(|s| s.parent.is_none()).map(|s| s.dur_ns).sum();
        prop_assert_eq!(self_total, roots);
        let count_total: u64 = phases.iter().map(|p| p.count).sum();
        prop_assert_eq!(count_total, spans.len() as u64);
    }
}
