//! Bounded-memory flight recorder: a fixed-capacity ring of the last K
//! [`SimEvent`]s per router, dumped on anomaly or panic.
//!
//! The recorder is itself an [`EventSink`], so it can ride alongside any
//! other sink in a tuple. Memory is bounded by `(nodes + 1) * K` events
//! regardless of run length: each router has its own ring, plus one
//! extra ring for driver-level events ([`SimEvent::WarmupReset`],
//! [`SimEvent::Truncated`]) that have no router.

use std::collections::VecDeque;

use crate::trace::{EventSink, SimEvent};

/// Per-router ring buffer of recent events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    /// One ring per router; the final ring holds driver-level events.
    rings: Vec<VecDeque<SimEvent>>,
    recorded: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder for `nodes` routers keeping the last `capacity`
    /// events per router.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(nodes: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            capacity,
            rings: vec![VecDeque::with_capacity(capacity); nodes + 1],
            recorded: 0,
            dropped: 0,
        }
    }

    /// The per-router capacity K.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of routers covered (excluding the driver ring).
    pub fn nodes(&self) -> usize {
        self.rings.len() - 1
    }

    /// Total events accepted (including since-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn ring_index(&self, event: &SimEvent) -> usize {
        match event.node() {
            Some(node) if node < self.rings.len() - 1 => node,
            _ => self.rings.len() - 1,
        }
    }

    /// The retained events for `node`, oldest first (empty for an
    /// out-of-range node).
    pub fn excerpt(&self, node: usize) -> Vec<SimEvent> {
        self.rings
            .get(node)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Every retained event across all rings, sorted by cycle (ties
    /// broken by router id, then intra-ring order) — a deterministic
    /// stream suitable for replay through the exporters.
    pub fn dump_all(&self) -> Vec<SimEvent> {
        let mut tagged: Vec<(u64, usize, usize, SimEvent)> = Vec::new();
        for (ring_idx, ring) in self.rings.iter().enumerate() {
            for (seq, &e) in ring.iter().enumerate() {
                tagged.push((e.cycle(), ring_idx, seq, e));
            }
        }
        tagged.sort_by_key(|&(cycle, ring, seq, _)| (cycle, ring, seq));
        tagged.into_iter().map(|(_, _, _, e)| e).collect()
    }
}

impl EventSink for FlightRecorder {
    fn emit(&mut self, event: &SimEvent) {
        let idx = self.ring_index(event);
        let ring = &mut self.rings[idx];
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped += 1;
        }
        ring.push_back(*event);
        self.recorded += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall(cycle: u64, node: usize) -> SimEvent {
        SimEvent::QueueStall {
            cycle,
            node,
            depth: 1,
        }
    }

    #[test]
    fn keeps_only_last_k_per_router() {
        let mut rec = FlightRecorder::new(4, 3);
        for c in 0..10 {
            rec.emit(&stall(c, 1));
        }
        let ex = rec.excerpt(1);
        assert_eq!(ex.len(), 3);
        assert_eq!(
            ex.iter().map(SimEvent::cycle).collect::<Vec<_>>(),
            [7, 8, 9]
        );
        assert!(rec.excerpt(0).is_empty());
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 7);
    }

    #[test]
    fn driver_events_land_in_extra_ring() {
        let mut rec = FlightRecorder::new(2, 4);
        rec.emit(&SimEvent::WarmupReset { cycle: 5 });
        rec.emit(&SimEvent::Truncated { cycle: 9 });
        assert_eq!(rec.excerpt(2).len(), 2);
        assert!(rec.excerpt(0).is_empty());
    }

    #[test]
    fn dump_all_is_cycle_sorted() {
        let mut rec = FlightRecorder::new(3, 4);
        rec.emit(&stall(5, 2));
        rec.emit(&stall(1, 0));
        rec.emit(&stall(3, 1));
        rec.emit(&stall(3, 0));
        let cycles: Vec<u64> = rec.dump_all().iter().map(SimEvent::cycle).collect();
        assert_eq!(cycles, [1, 3, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = FlightRecorder::new(4, 0);
    }
}
