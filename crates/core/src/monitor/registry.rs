//! Dependency-free metrics registry: atomic [`Counter`], [`Gauge`], and
//! log-bucketed [`LogHistogram`] cells behind a shared, cloneable
//! [`MetricsRegistry`].
//!
//! Every cell is an `Arc` around atomics, so the handles returned by the
//! registry can be cloned into sweep-pool workers and incremented
//! concurrently without locks on the hot path; the registry itself only
//! takes a mutex to register a new name or to serialize. Exposition is
//! deterministic: both the Prometheus text format and the JSON snapshot
//! list metrics sorted by name.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
///
/// Cloning shares the underlying cell — all clones observe the same
/// value, which is what lets sweep workers aggregate into one counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable floating-point gauge (stored as `f64` bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets in a [`LogHistogram`] — enough for
/// the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[i]` counts values in `[2^i, 2^(i+1))`; bucket 0 also
    /// holds zero, mirroring [`crate::stats::Histogram`].
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A thread-safe log-bucketed histogram with power-of-two buckets.
///
/// Same bucketing as the single-threaded [`crate::stats::Histogram`],
/// but every cell is atomic so concurrent recorders (sweep workers,
/// multi-channel banks) can share one instance.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    inner: Arc<HistogramInner>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            inner: Arc::new(HistogramInner {
                buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl LogHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.inner.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean of all observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// A consistent-enough snapshot of the bucket counts.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.inner.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Upper-bound estimate of percentile `p` (in `[0,100]`): the
    /// inclusive upper edge of the bucket containing the p-th
    /// observation, matching [`crate::stats::Histogram::percentile`]
    /// (0 when empty).
    pub fn percentile(&self, p: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// Adds every observation recorded in `other` to this histogram,
    /// preserving exact bucket counts and the exact sum. Lets a
    /// privately accumulated histogram (e.g. a latency-attribution
    /// component) be published into a registry-owned cell after a run.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.inner
            .count
            .fetch_add(other.inner.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner
            .sum
            .fetch_add(other.inner.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[derive(Debug, Clone)]
enum MetricKind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(LogHistogram),
}

impl MetricKind {
    fn type_name(&self) -> &'static str {
        match self {
            MetricKind::Counter(_) => "counter",
            MetricKind::Gauge(_) => "gauge",
            MetricKind::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    help: String,
    kind: MetricKind,
}

/// A named collection of metric cells with deterministic exposition.
///
/// Cloning the registry shares the underlying table, so a registry
/// handed to sweep workers aggregates across all of them. Registration
/// is get-or-create: asking twice for the same name returns handles to
/// the same cell.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<Vec<Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce() -> MetricKind) -> Metric {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(m) = metrics.iter().find(|m| m.name == name) {
            return m.clone();
        }
        let metric = Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: make(),
        };
        metrics.push(metric.clone());
        metric
    }

    /// Returns (registering on first use) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self
            .get_or_insert(name, help, || MetricKind::Counter(Counter::new()))
            .kind
        {
            MetricKind::Counter(c) => c,
            other => panic!(
                "metric {name:?} already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Returns (registering on first use) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self
            .get_or_insert(name, help, || MetricKind::Gauge(Gauge::new()))
            .kind
        {
            MetricKind::Gauge(g) => g,
            other => panic!(
                "metric {name:?} already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Returns (registering on first use) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn histogram(&self, name: &str, help: &str) -> LogHistogram {
        match self
            .get_or_insert(name, help, || MetricKind::Histogram(LogHistogram::new()))
            .kind
        {
            MetricKind::Histogram(h) => h,
            other => panic!(
                "metric {name:?} already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sorted(&self) -> Vec<Metric> {
        let mut metrics = self.metrics.lock().unwrap().clone();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        metrics
    }

    /// Renders the registry in the Prometheus text exposition format,
    /// metrics sorted by name. Histograms emit cumulative `_bucket`
    /// series with power-of-two `le` bounds up to the highest non-empty
    /// bucket, then `+Inf`, `_sum`, `_count`, and (when non-empty)
    /// summary-style p50/p95/p99 `quantile` samples.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for m in self.sorted() {
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.type_name());
            match &m.kind {
                MetricKind::Counter(c) => {
                    let _ = writeln!(out, "{} {}", m.name, c.get());
                }
                MetricKind::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", m.name, g.get());
                }
                MetricKind::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let last = counts.iter().rposition(|&c| c > 0);
                    let mut cum = 0u64;
                    if let Some(last) = last {
                        for (i, &c) in counts.iter().enumerate().take(last + 1) {
                            cum += c;
                            // Exclusive bucket edge 2^(i+1) becomes the
                            // inclusive `le` bound 2^(i+1)-1.
                            let le = (1u128 << (i + 1)) - 1;
                            let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, le, cum);
                        }
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count());
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", m.name, h.count());
                    // Summary-style quantile samples so percentiles are
                    // scrapeable without the JSON path. Omitted while
                    // empty, matching how summaries expose no data.
                    if h.count() > 0 {
                        for q in [50.0, 95.0, 99.0] {
                            let _ = writeln!(
                                out,
                                "{}{{quantile=\"{}\"}} {}",
                                m.name,
                                q / 100.0,
                                h.percentile(q)
                            );
                        }
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as one deterministic JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`, each map
    /// sorted by name.
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.sorted();
        let mut out = String::from("{");
        let mut first_section = true;
        for (section, want) in [("counters", 0usize), ("gauges", 1), ("histograms", 2)] {
            if !first_section {
                out.push(',');
            }
            first_section = false;
            let _ = write!(out, "\"{section}\":{{");
            let mut first = true;
            for m in &metrics {
                let idx = match &m.kind {
                    MetricKind::Counter(_) => 0,
                    MetricKind::Gauge(_) => 1,
                    MetricKind::Histogram(_) => 2,
                };
                if idx != want {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                match &m.kind {
                    MetricKind::Counter(c) => {
                        let _ = write!(out, "\"{}\":{}", m.name, c.get());
                    }
                    MetricKind::Gauge(g) => {
                        let _ = write!(out, "\"{}\":{}", m.name, g.get());
                    }
                    MetricKind::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let _ = write!(
                            out,
                            "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                            m.name,
                            h.count(),
                            h.sum()
                        );
                        let mut first_b = true;
                        for (i, &c) in counts.iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            if !first_b {
                                out.push(',');
                            }
                            first_b = false;
                            let le = (1u128 << (i + 1)) - 1;
                            let _ = write!(out, "[{le},{c}]");
                        }
                        out.push_str("]}");
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Escapes a metric HELP string per the Prometheus text exposition
/// format: backslash and newline must be escaped (`\\` and `\n`).
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote, and newline must be escaped.
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_cells_across_clones() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("injected_total", "Packets injected");
        let c2 = reg.counter("injected_total", "dup request");
        c.add(3);
        c2.inc();
        assert_eq!(c.get(), 4);
        let g = reg.gauge("in_flight", "Packets in flight");
        g.set(2.5);
        assert_eq!(reg.gauge("in_flight", "").get(), 2.5);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn histogram_buckets_match_stats_histogram() {
        let h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2); // 0 and 1
        assert_eq!(counts[1], 2); // 2 and 3
        assert_eq!(counts[2], 1); // 4
        assert_eq!(counts[9], 1); // 1000 in [512, 1024)
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.percentile(100.0), 1023);

        // Same shape as the single-threaded histogram.
        let mut reference = crate::stats::Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            reference.record(v);
        }
        assert_eq!(h.percentile(50.0), reference.percentile(50.0).unwrap());
        assert_eq!(h.percentile(99.0), reference.percentile(99.0).unwrap());
    }

    #[test]
    fn concurrent_increments_all_land() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("work_total", "work");
        let h = reg.histogram("lat", "latency");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (c, h) = (c.clone(), h.clone());
                scope.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn prometheus_text_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("zz_total", "Last by name").add(7);
        reg.gauge("aa_ratio", "First by name").set(0.5);
        let h = reg.histogram("mm_latency", "Middle");
        h.record(3);
        let text = reg.to_prometheus();
        let aa = text.find("aa_ratio").unwrap();
        let mm = text.find("mm_latency").unwrap();
        let zz = text.find("zz_total").unwrap();
        assert!(aa < mm && mm < zz, "metrics must be name-sorted");
        assert!(text.contains("# TYPE zz_total counter"));
        assert!(text.contains("zz_total 7"));
        assert!(text.contains("aa_ratio 0.5"));
        assert!(text.contains("mm_latency_bucket{le=\"3\"} 1"));
        assert!(text.contains("mm_latency_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mm_latency_sum 3"));
        assert_eq!(reg.to_prometheus(), text, "exposition must be stable");
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("c", "").add(2);
        reg.gauge("g", "").set(1.25);
        reg.histogram("h", "").record(5);
        let json = reg.snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":{\"c\":2}"));
        assert!(json.contains("\"gauges\":{\"g\":1.25}"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum\":5,\"buckets\":[[7,1]]}"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }

    #[test]
    fn help_text_is_escaped_in_exposition() {
        let reg = MetricsRegistry::new();
        reg.counter("evil_total", "line one\nline two \\ backslash")
            .inc();
        let text = reg.to_prometheus();
        assert!(text.contains("# HELP evil_total line one\\nline two \\\\ backslash"));
        // The raw newline must not split the HELP line: every line of
        // the exposition is a comment or a sample.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("evil_total"),
                "unexpected exposition line {line:?}"
            );
        }
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_help("a\"b"), "a\"b", "quotes are legal in HELP");
    }

    #[test]
    fn exposition_ends_with_single_trailing_newline() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", "help").inc();
        reg.histogram("h_cycles", "help").record(3);
        let text = reg.to_prometheus();
        assert!(text.ends_with('\n'));
        assert!(!text.ends_with("\n\n"));
    }

    #[test]
    fn help_precedes_type_precedes_samples_for_each_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a").inc();
        reg.gauge("b_ratio", "b").set(0.5);
        reg.histogram("c_latency", "c").record(9);
        let text = reg.to_prometheus();
        for name in ["a_total", "b_ratio", "c_latency"] {
            let help = text.find(&format!("# HELP {name} ")).unwrap();
            let ty = text.find(&format!("# TYPE {name} ")).unwrap();
            let sample = text
                .lines()
                .position(|l| l.starts_with(name))
                .map(|i| text.lines().take(i).map(|l| l.len() + 1).sum::<usize>())
                .unwrap();
            assert!(help < ty, "{name}: HELP must precede TYPE");
            assert!(ty < sample, "{name}: TYPE must precede samples");
        }
    }

    #[test]
    fn metric_ordering_is_stable_across_registration_order() {
        let a = MetricsRegistry::new();
        a.counter("zz_total", "z").add(1);
        a.gauge("aa_ratio", "a").set(1.0);
        a.histogram("mm_latency", "m").record(2);
        let b = MetricsRegistry::new();
        b.histogram("mm_latency", "m").record(2);
        b.gauge("aa_ratio", "a").set(1.0);
        b.counter("zz_total", "z").add(1);
        assert_eq!(
            a.to_prometheus(),
            b.to_prometheus(),
            "exposition must not depend on registration order"
        );
    }

    #[test]
    fn histogram_quantile_samples_follow_count_in_ascending_order() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q_latency", "q");
        for v in [1, 2, 4, 8, 100] {
            h.record(v);
        }
        let text = reg.to_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let count_at = lines
            .iter()
            .position(|l| l.starts_with("q_latency_count "))
            .expect("_count sample present");
        // The three quantile samples come right after _count, in
        // ascending quantile order, each starting with the metric name.
        for (off, q) in [(1, "0.5"), (2, "0.95"), (3, "0.99")] {
            let line = lines[count_at + off];
            assert!(
                line.starts_with(&format!("q_latency{{quantile=\"{q}\"}} ")),
                "expected quantile {q} at offset {off}, got {line:?}"
            );
        }
        // Values are the histogram's own percentile estimates.
        assert!(text.contains(&format!(
            "q_latency{{quantile=\"0.99\"}} {}\n",
            h.percentile(99.0)
        )));
        // Quantile estimates never decrease with the quantile.
        assert!(h.percentile(50.0) <= h.percentile(95.0));
        assert!(h.percentile(95.0) <= h.percentile(99.0));
    }

    #[test]
    fn empty_histogram_emits_no_quantile_samples() {
        let reg = MetricsRegistry::new();
        reg.histogram("e_latency", "e");
        let text = reg.to_prometheus();
        assert!(text.contains("e_latency_count 0"));
        assert!(
            !text.contains("quantile="),
            "empty histogram must not expose quantiles: {text}"
        );
    }

    #[test]
    fn quantile_label_values_never_need_escaping() {
        // The quantile label value is always a bare decimal; the
        // escaper must pass it through untouched so the samples stay
        // byte-stable for scrapers.
        for q in ["0.5", "0.95", "0.99"] {
            assert_eq!(escape_label_value(q), q);
        }
    }

    #[test]
    fn merge_from_preserves_buckets_count_and_sum() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in [0, 1, 7, 1000] {
            a.record(v);
        }
        for v in [3, 900_000] {
            b.record(v);
        }
        let merged = LogHistogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum() + b.sum());
        let (ma, mb, mm) = (a.bucket_counts(), b.bucket_counts(), merged.bucket_counts());
        for i in 0..HIST_BUCKETS {
            assert_eq!(mm[i], ma[i] + mb[i], "bucket {i}");
        }
    }
}
