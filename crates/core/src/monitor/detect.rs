//! Online anomaly detectors over the [`SimEvent`] stream.
//!
//! Three pathologies of a bufferless deflection NoC are watched live:
//!
//! * **Livelock** — a packet whose accumulated link traversals exceed a
//!   configurable multiple of its DOR distance is circling the torus
//!   instead of converging. The engine carries `src`/`dst`/`hops` on
//!   every [`SimEvent::RouteDecision`], so this detector needs no
//!   per-packet state beyond a dedup set of already-reported ids.
//! * **Starvation** — a PE that stalls injection for a long consecutive
//!   streak of cycles is being locked out by through-traffic
//!   (Hoplite's injection has the lowest allocator priority).
//! * **Hotspot** — a link whose EWMA utilization crosses a watermark,
//!   folded from per-window usage counts at window boundaries.
//!
//! Detectors are deterministic: fed the same event stream they emit the
//! same anomalies in the same order, which keeps sweep output stable at
//! any thread count.

use std::collections::HashSet;

use crate::geom::Coord;
use crate::packet::PacketId;
use crate::port::OutPort;
use crate::topology::MonitorShape;
use crate::trace::SimEvent;

/// Thresholds for the online detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// A packet is livelocked when its hops exceed
    /// `max(livelock_multiple × DOR distance, livelock_min_hops)`.
    pub livelock_multiple: f64,
    /// Absolute hop floor below which livelock never fires (protects
    /// short DOR distances from false positives).
    pub livelock_min_hops: u32,
    /// Consecutive stalled cycles before a source is reported starved.
    pub starvation_streak: u64,
    /// EWMA link utilization above which a hotspot is reported.
    pub hotspot_watermark: f64,
    /// EWMA smoothing factor in `(0,1]` (weight of the newest window).
    pub hotspot_alpha: f64,
    /// Cycles per utilization window.
    pub hotspot_window: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            livelock_multiple: 8.0,
            livelock_min_hops: 32,
            starvation_streak: 128,
            hotspot_watermark: 0.85,
            hotspot_alpha: 0.25,
            hotspot_window: 64,
        }
    }
}

/// A detected pathology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Anomaly {
    /// A packet's displacement far exceeds its DOR distance.
    Livelock {
        /// The circling packet.
        packet: PacketId,
        /// Router where the threshold was crossed.
        node: usize,
        /// Link traversals accumulated so far.
        hops: u32,
        /// The packet's one-way DOR distance (dx + dy).
        dor_distance: u32,
    },
    /// A source PE has been unable to inject for a long streak.
    Starvation {
        /// The starved node.
        node: usize,
        /// Consecutive stalled cycles at the report.
        streak: u64,
        /// Source-queue depth when the threshold was crossed.
        depth: usize,
    },
    /// A link's EWMA utilization crossed the watermark.
    Hotspot {
        /// Upstream router of the hot link.
        node: usize,
        /// The hot output port.
        out: OutPort,
        /// EWMA utilization at the crossing (1.0 = a packet every
        /// cycle on every channel).
        ewma: f64,
    },
}

impl Anomaly {
    /// Stable lowercase tag for serializers and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Anomaly::Livelock { .. } => "livelock",
            Anomaly::Starvation { .. } => "starvation",
            Anomaly::Hotspot { .. } => "hotspot",
        }
    }

    /// The router the anomaly is anchored at.
    pub fn node(&self) -> usize {
        match *self {
            Anomaly::Livelock { node, .. }
            | Anomaly::Starvation { node, .. }
            | Anomaly::Hotspot { node, .. } => node,
        }
    }
}

/// Flags packets whose displacement exceeds a multiple of their DOR
/// distance. Reports each packet at most once per flight (the set is
/// cleared again on ejection, so a reinjected id can report again).
#[derive(Debug, Clone)]
pub struct LivelockDetector {
    grid: Option<u16>,
    multiple: f64,
    min_hops: u32,
    reported: HashSet<PacketId>,
}

impl LivelockDetector {
    /// A detector for a square grid of side `grid` (torus DOR distance
    /// as the displacement reference). `None` disables the
    /// distance-scaled threshold and falls back to the absolute hop
    /// floor for topologies without a grid embedding.
    pub fn new(grid: Option<u16>, cfg: &DetectorConfig) -> Self {
        LivelockDetector {
            grid,
            multiple: cfg.livelock_multiple,
            min_hops: cfg.livelock_min_hops,
            reported: HashSet::new(),
        }
    }

    /// DOR distance (one-way dx + dy) on the grid; 0 without one (the
    /// hop floor then carries the threshold alone).
    pub fn dor_distance(&self, src: Coord, dst: Coord) -> u32 {
        match self.grid {
            Some(n) => u32::from(src.dx_to(dst, n)) + u32::from(src.dy_to(dst, n)),
            None => 0,
        }
    }

    /// Feeds one event; returns an anomaly on a fresh threshold cross.
    pub fn observe(&mut self, event: &SimEvent) -> Option<Anomaly> {
        match *event {
            SimEvent::RouteDecision {
                node,
                packet,
                src,
                dst,
                hops,
                ..
            } => {
                let dor = self.dor_distance(src, dst);
                let threshold = (self.multiple * f64::from(dor)).max(f64::from(self.min_hops));
                if f64::from(hops) > threshold && self.reported.insert(packet) {
                    return Some(Anomaly::Livelock {
                        packet,
                        node,
                        hops,
                        dor_distance: dor,
                    });
                }
                None
            }
            SimEvent::Eject { delivery, .. } => {
                self.reported.remove(&delivery.packet.id);
                None
            }
            _ => None,
        }
    }
}

/// Flags PEs with long consecutive inject-stall streaks.
#[derive(Debug, Clone)]
pub struct StarvationDetector {
    threshold: u64,
    streaks: Vec<u64>,
    /// Last cycle counted per node, so multi-channel banks (one stall
    /// event per channel per cycle) advance the streak once per cycle.
    last_cycle: Vec<u64>,
    flagged: Vec<bool>,
}

impl StarvationDetector {
    /// A detector for `nodes` sources.
    pub fn new(nodes: usize, cfg: &DetectorConfig) -> Self {
        StarvationDetector {
            threshold: cfg.starvation_streak.max(1),
            streaks: vec![0; nodes],
            last_cycle: vec![u64::MAX; nodes],
            flagged: vec![false; nodes],
        }
    }

    /// Feeds one event; returns an anomaly when a streak first reaches
    /// the threshold (re-armed by a successful injection).
    pub fn observe(&mut self, event: &SimEvent) -> Option<Anomaly> {
        match *event {
            SimEvent::QueueStall { cycle, node, depth } if node < self.streaks.len() => {
                if self.last_cycle[node] == cycle {
                    return None;
                }
                self.last_cycle[node] = cycle;
                self.streaks[node] += 1;
                if self.streaks[node] >= self.threshold && !self.flagged[node] {
                    self.flagged[node] = true;
                    return Some(Anomaly::Starvation {
                        node,
                        streak: self.streaks[node],
                        depth,
                    });
                }
                None
            }
            SimEvent::Inject { node, .. } if node < self.streaks.len() => {
                self.streaks[node] = 0;
                self.flagged[node] = false;
                None
            }
            _ => None,
        }
    }

    /// Current streak for `node` (tests / summaries).
    pub fn streak(&self, node: usize) -> u64 {
        self.streaks.get(node).copied().unwrap_or(0)
    }
}

/// Flags links whose EWMA utilization crosses the watermark.
///
/// Usage counts accumulate per [`crate::topology::LinkId`] — the flat
/// `node * links_per_node + class_slot` key the [`MonitorShape`]
/// defines — and fold into the EWMA at window boundaries in
/// [`HotspotDetector::end_cycle`] (which is idempotent per cycle, as
/// multi-channel banks call it once per channel). Utilization is
/// normalized by the channel count announced via
/// [`HotspotDetector::set_channels`], so 1.0 means every channel of
/// the link carried a packet every cycle of the window.
#[derive(Debug, Clone)]
pub struct HotspotDetector {
    window: u64,
    alpha: f64,
    watermark: f64,
    channels: usize,
    links_per_node: usize,
    counts: Vec<u64>,
    ewma: Vec<f64>,
    flagged: Vec<bool>,
    next_boundary: u64,
}

impl HotspotDetector {
    /// A detector sized for `shape` (one EWMA cell per [`LinkId`]
    /// the shape enumerates).
    ///
    /// [`LinkId`]: crate::topology::LinkId
    pub fn new(shape: MonitorShape, cfg: &DetectorConfig) -> Self {
        let links = shape.num_links();
        HotspotDetector {
            window: cfg.hotspot_window.max(1),
            alpha: cfg.hotspot_alpha.clamp(f64::MIN_POSITIVE, 1.0),
            watermark: cfg.hotspot_watermark,
            channels: shape.channels.max(1),
            links_per_node: shape.links_per_node.max(1),
            counts: vec![0; links],
            ewma: vec![0.0; links],
            flagged: vec![false; links],
            next_boundary: cfg.hotspot_window.max(1),
        }
    }

    /// Announces how many channels feed this detector (≥ 1).
    pub fn set_channels(&mut self, channels: usize) {
        self.channels = channels.max(1);
    }

    /// Feeds one event (counts link occupancy; emits nothing itself).
    pub fn observe(&mut self, event: &SimEvent) {
        let (node, out) = match *event {
            SimEvent::RouteDecision { node, out, .. } | SimEvent::Inject { node, out, .. } => {
                (node, out)
            }
            _ => return,
        };
        if out == OutPort::Exit || out.index() >= self.links_per_node {
            return;
        }
        let id = node * self.links_per_node + out.index();
        if id >= self.counts.len() {
            return;
        }
        self.counts[id] += 1;
    }

    /// Folds the window ending at `cycle` (if a boundary was reached)
    /// and returns watermark crossings in [`LinkId`] order (node-major,
    /// class-slot minor — identical to the old `(node, out)` order).
    /// Idempotent per cycle.
    ///
    /// [`LinkId`]: crate::topology::LinkId
    pub fn end_cycle(&mut self, cycle: u64) -> Vec<Anomaly> {
        if cycle + 1 < self.next_boundary {
            return Vec::new();
        }
        let denom = (self.window * self.channels as u64) as f64;
        let mut crossings = Vec::new();
        for id in 0..self.counts.len() {
            let u = self.counts[id] as f64 / denom;
            self.counts[id] = 0;
            let e = self.alpha * u + (1.0 - self.alpha) * self.ewma[id];
            self.ewma[id] = e;
            if e > self.watermark && !self.flagged[id] {
                self.flagged[id] = true;
                crossings.push(Anomaly::Hotspot {
                    node: id / self.links_per_node,
                    out: OutPort::ALL[id % self.links_per_node],
                    ewma: e,
                });
            } else if e < self.watermark * 0.75 {
                // Hysteresis re-arm: a link must cool well below the
                // watermark before it can report again.
                self.flagged[id] = false;
            }
        }
        self.next_boundary = cycle + 1 + self.window;
        crossings
    }

    /// Current EWMA for a link (tests / summaries).
    pub fn ewma(&self, node: usize, out: OutPort) -> f64 {
        if out == OutPort::Exit || out.index() >= self.links_per_node {
            return 0.0;
        }
        self.ewma
            .get(node * self.links_per_node + out.index())
            .copied()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Delivery, Packet};

    fn shape(nodes: usize) -> MonitorShape {
        MonitorShape {
            nodes,
            links_per_node: 4,
            grid_side: None,
            channels: 1,
        }
    }

    fn route(cycle: u64, node: usize, packet: u64, hops: u32, src: Coord, dst: Coord) -> SimEvent {
        SimEvent::RouteDecision {
            cycle,
            node,
            packet: PacketId(packet),
            in_port: None,
            out: OutPort::EastSh,
            src,
            dst,
            hops,
        }
    }

    #[test]
    fn livelock_trips_once_and_rearms_on_eject() {
        let cfg = DetectorConfig {
            livelock_multiple: 4.0,
            livelock_min_hops: 8,
            ..DetectorConfig::default()
        };
        let mut d = LivelockDetector::new(Some(4), &cfg);
        let (src, dst) = (Coord::new(0, 0), Coord::new(1, 0)); // DOR = 1
        assert!(d.observe(&route(0, 0, 7, 4, src, dst)).is_none());
        assert!(
            d.observe(&route(1, 1, 7, 8, src, dst)).is_none(),
            "at floor"
        );
        let a = d.observe(&route(2, 2, 7, 9, src, dst)).unwrap();
        assert!(matches!(
            a,
            Anomaly::Livelock {
                hops: 9,
                dor_distance: 1,
                ..
            }
        ));
        assert!(
            d.observe(&route(3, 3, 7, 10, src, dst)).is_none(),
            "one report per flight"
        );
        let packet = Packet::new(PacketId(7), src, dst, 0, 0);
        d.observe(&SimEvent::Eject {
            cycle: 4,
            node: 1,
            delivery: Delivery { packet, cycle: 5 },
        });
        assert!(d.observe(&route(6, 0, 7, 20, src, dst)).is_some());
    }

    #[test]
    fn livelock_respects_dor_scaling() {
        let mut d = LivelockDetector::new(Some(8), &DetectorConfig::default());
        // DOR distance 7 (east 3, south 4); multiple 8 → threshold 56.
        let (src, dst) = (Coord::new(0, 0), Coord::new(3, 4));
        assert_eq!(d.dor_distance(src, dst), 7);
        assert!(d.observe(&route(0, 0, 1, 56, src, dst)).is_none());
        assert!(d.observe(&route(1, 0, 1, 57, src, dst)).is_some());
    }

    #[test]
    fn starvation_needs_consecutive_streak() {
        let cfg = DetectorConfig {
            starvation_streak: 3,
            ..DetectorConfig::default()
        };
        let mut d = StarvationDetector::new(4, &cfg);
        let stall = |cycle, node| SimEvent::QueueStall {
            cycle,
            node,
            depth: 2,
        };
        assert!(d.observe(&stall(0, 1)).is_none());
        assert!(d.observe(&stall(1, 1)).is_none());
        // An injection breaks the streak.
        d.observe(&SimEvent::Inject {
            cycle: 2,
            node: 1,
            packet: PacketId(0),
            dst: Coord::new(0, 0),
            out: OutPort::EastSh,
            queue_wait: 0,
        });
        assert_eq!(d.streak(1), 0);
        assert!(d.observe(&stall(3, 1)).is_none());
        assert!(d.observe(&stall(4, 1)).is_none());
        let a = d.observe(&stall(5, 1)).unwrap();
        assert!(matches!(
            a,
            Anomaly::Starvation {
                node: 1,
                streak: 3,
                depth: 2
            }
        ));
        assert!(
            d.observe(&stall(6, 1)).is_none(),
            "reported once per streak"
        );
    }

    #[test]
    fn starvation_counts_each_cycle_once() {
        let cfg = DetectorConfig {
            starvation_streak: 2,
            ..DetectorConfig::default()
        };
        let mut d = StarvationDetector::new(2, &cfg);
        // Two channels stalling in the same cycle advance the streak once.
        let stall = |cycle| SimEvent::QueueStall {
            cycle,
            node: 0,
            depth: 1,
        };
        assert!(d.observe(&stall(0)).is_none());
        assert!(d.observe(&stall(0)).is_none());
        assert_eq!(d.streak(0), 1);
        assert!(d.observe(&stall(1)).is_some());
    }

    #[test]
    fn hotspot_crosses_watermark_via_ewma() {
        let cfg = DetectorConfig {
            hotspot_watermark: 0.5,
            hotspot_alpha: 0.5,
            hotspot_window: 4,
            ..DetectorConfig::default()
        };
        let mut d = HotspotDetector::new(shape(2), &cfg);
        let (src, dst) = (Coord::new(0, 0), Coord::new(1, 0));
        // Saturate node 0's E_sh link: one decision per cycle.
        let mut fired = Vec::new();
        for c in 0..16 {
            d.observe(&route(c, 0, c, 1, src, dst));
            fired.extend(d.end_cycle(c));
        }
        // EWMA after windows at full utilization: 0.5, 0.75 → crossed.
        assert_eq!(fired.len(), 1);
        assert!(matches!(
            fired[0],
            Anomaly::Hotspot {
                node: 0,
                out: OutPort::EastSh,
                ..
            }
        ));
        assert!(d.ewma(0, OutPort::EastSh) > 0.9);
        assert_eq!(d.ewma(1, OutPort::EastSh), 0.0);
    }

    #[test]
    fn hotspot_idle_stream_never_fires() {
        let mut d = HotspotDetector::new(shape(4), &DetectorConfig::default());
        let mut fired = Vec::new();
        for c in 0..1024 {
            fired.extend(d.end_cycle(c));
        }
        assert!(fired.is_empty());
    }

    #[test]
    fn hotspot_end_cycle_is_idempotent_per_cycle() {
        let cfg = DetectorConfig {
            hotspot_watermark: 0.5,
            hotspot_alpha: 1.0,
            hotspot_window: 2,
            ..DetectorConfig::default()
        };
        let mut d = HotspotDetector::new(shape(1), &cfg);
        let (src, dst) = (Coord::new(0, 0), Coord::new(1, 0));
        d.observe(&route(0, 0, 0, 1, src, dst));
        d.observe(&route(1, 0, 1, 1, src, dst));
        let first = d.end_cycle(1);
        let second = d.end_cycle(1);
        assert_eq!(first.len(), 1);
        assert!(second.is_empty(), "same-cycle re-fold must be a no-op");
    }

    #[test]
    fn hotspot_normalizes_by_channels() {
        let cfg = DetectorConfig {
            hotspot_watermark: 0.6,
            hotspot_alpha: 1.0,
            hotspot_window: 4,
            ..DetectorConfig::default()
        };
        let mut d = HotspotDetector::new(shape(1), &cfg);
        d.set_channels(2);
        let (src, dst) = (Coord::new(0, 0), Coord::new(1, 0));
        // One of two channels busy: utilization 0.5, below watermark.
        for c in 0..8 {
            d.observe(&route(c, 0, c, 1, src, dst));
            assert!(d.end_cycle(c).is_empty());
        }
        assert!((d.ewma(0, OutPort::EastSh) - 0.5).abs() < 1e-9);
    }
}
