//! Online health monitoring: a metrics registry, a bounded flight
//! recorder, and anomaly detectors, all layered on the [`EventSink`]
//! stream.
//!
//! The paper's sweeps (Figs 11, 12, 18) only make sense on runs that
//! have not gone pathological; this module watches for the three
//! failure modes of a bufferless deflection NoC *while the run is in
//! progress* — livelocked packets circling the torus, starved
//! injectors, and hot express links — instead of diagnosing them
//! post-mortem from exported traces.
//!
//! [`HealthMonitor`] is an ordinary [`EventSink`], so it composes with
//! the exporters via sink tuples and costs nothing when absent (the
//! engine's [`crate::trace::NullSink`] path is untouched). Everything
//! here is deterministic: the same event stream yields the same
//! [`HealthReport`]s, the same summary JSON, and the same registry
//! exposition, which is what lets the sweep pool merge per-point health
//! by point index without breaking PR 2's byte-identical CSV guarantee.

mod detect;
mod recorder;
mod registry;

pub use detect::{Anomaly, DetectorConfig, HotspotDetector, LivelockDetector, StarvationDetector};
pub use recorder::FlightRecorder;
pub use registry::{
    escape_help, escape_label_value, Counter, Gauge, LogHistogram, MetricsRegistry, HIST_BUCKETS,
};

use crate::topology::MonitorShape;
use crate::trace::{EventSink, SimEvent};

/// Configuration for a [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Detector thresholds.
    pub detectors: DetectorConfig,
    /// Flight-recorder events retained per router (K).
    pub flight_capacity: usize,
    /// Reports kept with full excerpts; further anomalies only count.
    pub max_reports: usize,
    /// Emit a snapshot line every this many cycles (`None` disables).
    pub snapshot_every: Option<u64>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            detectors: DetectorConfig::default(),
            flight_capacity: 32,
            max_reports: 64,
            snapshot_every: None,
        }
    }
}

/// One detected anomaly plus the flight-recorder excerpt around it.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Cycle the anomaly was detected.
    pub cycle: u64,
    /// What was detected.
    pub anomaly: Anomaly,
    /// The triggering router's flight-recorder contents at detection,
    /// oldest first (≤ K events).
    pub excerpt: Vec<SimEvent>,
}

/// Final health verdict of a monitored run.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSummary {
    /// Cycles observed.
    pub cycles: u64,
    /// Routers monitored.
    pub nodes: usize,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Deflection events.
    pub deflections: u64,
    /// Inject-stall events.
    pub stalls: u64,
    /// Packets lost to injected faults (dead links, transient drops,
    /// fail-stop routers).
    pub dropped: u64,
    /// Packets steered away from a dead express link onto the shared
    /// ring.
    pub rerouted: u64,
    /// Retained anomaly reports, in detection order.
    pub reports: Vec<HealthReport>,
    /// Anomalies beyond `max_reports` that were counted but not kept.
    pub suppressed: u64,
}

impl HealthSummary {
    /// True when no anomaly was detected.
    pub fn healthy(&self) -> bool {
        self.reports.is_empty() && self.suppressed == 0
    }

    /// Number of retained reports of the given kind
    /// (`"livelock"` / `"starvation"` / `"hotspot"`).
    pub fn count(&self, kind: &str) -> usize {
        self.reports
            .iter()
            .filter(|r| r.anomaly.kind() == kind)
            .count()
    }

    /// Renders the summary as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"cycles\":{},\"nodes\":{},\"healthy\":{},\"injected\":{},\"delivered\":{},\"deflections\":{},\"stalls\":{},\"dropped\":{},\"rerouted\":{},\"suppressed\":{}",
            self.cycles,
            self.nodes,
            self.healthy(),
            self.injected,
            self.delivered,
            self.deflections,
            self.stalls,
            self.dropped,
            self.rerouted,
            self.suppressed
        );
        let _ = write!(
            out,
            ",\"anomalies\":{{\"livelock\":{},\"starvation\":{},\"hotspot\":{}}}",
            self.count("livelock"),
            self.count("starvation"),
            self.count("hotspot")
        );
        out.push_str(",\"reports\":[");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"cycle\":{},\"kind\":\"{}\",\"node\":{},\"detail\":{{",
                r.cycle,
                r.anomaly.kind(),
                r.anomaly.node()
            );
            match r.anomaly {
                Anomaly::Livelock {
                    packet,
                    hops,
                    dor_distance,
                    ..
                } => {
                    let _ = write!(
                        out,
                        "\"packet\":{},\"hops\":{},\"dor_distance\":{}",
                        packet.0, hops, dor_distance
                    );
                }
                Anomaly::Starvation { streak, depth, .. } => {
                    let _ = write!(out, "\"streak\":{streak},\"depth\":{depth}");
                }
                Anomaly::Hotspot {
                    out: port, ewma, ..
                } => {
                    let _ = write!(out, "\"out\":\"{port}\",\"ewma\":{ewma}");
                }
            }
            out.push_str("},\"excerpt\":[");
            for (j, e) in r.excerpt.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"cycle\":{},\"kind\":\"{}\"", e.cycle(), e.kind());
                if let Some(node) = e.node() {
                    let _ = write!(out, ",\"node\":{node}");
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Renders a short human-readable verdict for the CLI.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.healthy() {
            let _ = writeln!(out, "health: OK (no anomalies in {} cycles)", self.cycles);
            if self.dropped > 0 || self.rerouted > 0 {
                let _ = writeln!(
                    out,
                    "  degraded: {} packets dropped, {} rerouted around dead links",
                    self.dropped, self.rerouted
                );
            }
            return out;
        }
        let _ = writeln!(
            out,
            "health: {} anomalies in {} cycles (livelock {}, starvation {}, hotspot {}; {} suppressed)",
            self.reports.len() as u64 + self.suppressed,
            self.cycles,
            self.count("livelock"),
            self.count("starvation"),
            self.count("hotspot"),
            self.suppressed
        );
        if self.dropped > 0 || self.rerouted > 0 {
            let _ = writeln!(
                out,
                "  degraded: {} packets dropped, {} rerouted around dead links",
                self.dropped, self.rerouted
            );
        }
        for r in &self.reports {
            let _ = write!(out, "  [cycle {:>6}] ", r.cycle);
            match r.anomaly {
                Anomaly::Livelock {
                    packet,
                    node,
                    hops,
                    dor_distance,
                } => {
                    let _ = writeln!(
                        out,
                        "livelock at node {node}: packet {} has {hops} hops vs DOR {dor_distance}",
                        packet.0
                    );
                }
                Anomaly::Starvation {
                    node,
                    streak,
                    depth,
                } => {
                    let _ = writeln!(
                        out,
                        "starvation at node {node}: {streak} stalled cycles (queue depth {depth})"
                    );
                }
                Anomaly::Hotspot {
                    node,
                    out: port,
                    ewma,
                } => {
                    let _ = writeln!(out, "hotspot at node {node}: link {port} ewma {ewma:.3}");
                }
            }
        }
        out
    }
}

/// An [`EventSink`] that maintains live counters, a per-router flight
/// recorder, and the three anomaly detectors.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    nodes: usize,
    cfg: MonitorConfig,
    recorder: FlightRecorder,
    livelock: LivelockDetector,
    starvation: StarvationDetector,
    hotspot: HotspotDetector,
    reports: Vec<HealthReport>,
    suppressed: u64,
    registry: MetricsRegistry,
    injected: Counter,
    delivered: Counter,
    deflections: Counter,
    stalls: Counter,
    express_hops: Counter,
    route_decisions: Counter,
    fault_drops: Counter,
    fault_reroutes: Counter,
    latency: LogHistogram,
    in_flight: Gauge,
    cycles: u64,
    channels: usize,
    snapshots: Vec<String>,
    next_snapshot: u64,
    prev_delivered: u64,
}

impl HealthMonitor {
    /// A monitor sized for `shape` (see [`MonitorShape`] — the
    /// topology-derived replacement for the old torus side length)
    /// with a fresh registry.
    pub fn new(shape: MonitorShape, cfg: MonitorConfig) -> Self {
        Self::with_registry(shape, cfg, MetricsRegistry::new())
    }

    /// A monitor sharing an existing registry (so sweep workers can
    /// aggregate into one set of cells).
    pub fn with_registry(
        shape: MonitorShape,
        cfg: MonitorConfig,
        registry: MetricsRegistry,
    ) -> Self {
        let nodes = shape.nodes;
        HealthMonitor {
            nodes,
            cfg,
            recorder: FlightRecorder::new(nodes, cfg.flight_capacity),
            livelock: LivelockDetector::new(shape.grid_side, &cfg.detectors),
            starvation: StarvationDetector::new(nodes, &cfg.detectors),
            hotspot: HotspotDetector::new(shape, &cfg.detectors),
            reports: Vec::new(),
            suppressed: 0,
            injected: registry.counter("fasttrack_injected_total", "Packets injected"),
            delivered: registry.counter("fasttrack_delivered_total", "Packets delivered"),
            deflections: registry.counter("fasttrack_deflections_total", "Deflection events"),
            stalls: registry.counter("fasttrack_inject_stalls_total", "Inject-stall events"),
            express_hops: registry.counter("fasttrack_express_hops_total", "Express-link hops"),
            route_decisions: registry.counter("fasttrack_route_decisions_total", "Route decisions"),
            fault_drops: registry.counter(
                "fasttrack_fault_drops_total",
                "Packets lost to injected faults",
            ),
            fault_reroutes: registry.counter(
                "fasttrack_fault_reroutes_total",
                "Packets deflected around dead express links",
            ),
            latency: registry.histogram(
                "fasttrack_delivery_latency_cycles",
                "End-to-end packet latency",
            ),
            in_flight: registry.gauge("fasttrack_in_flight", "Packets currently in the network"),
            registry,
            cycles: 0,
            channels: shape.channels.max(1),
            snapshots: Vec::new(),
            next_snapshot: cfg.snapshot_every.unwrap_or(u64::MAX),
            prev_delivered: 0,
        }
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The flight recorder (for replay through exporters).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Retained anomaly reports, in detection order.
    pub fn reports(&self) -> &[HealthReport] {
        &self.reports
    }

    /// Snapshot lines collected so far (one per `snapshot_every`).
    pub fn snapshots(&self) -> &[String] {
        &self.snapshots
    }

    /// True when no anomaly has been detected so far.
    pub fn healthy(&self) -> bool {
        self.reports.is_empty() && self.suppressed == 0
    }

    /// Announces the channel count of a multi-channel bank, so hotspot
    /// utilization normalizes per channel.
    pub fn set_channels(&mut self, channels: usize) {
        self.channels = channels.max(1);
        self.hotspot.set_channels(self.channels);
    }

    /// Clones the current state into a final [`HealthSummary`].
    pub fn summary(&self) -> HealthSummary {
        HealthSummary {
            cycles: self.cycles,
            nodes: self.nodes,
            injected: self.injected.get(),
            delivered: self.delivered.get(),
            deflections: self.deflections.get(),
            stalls: self.stalls.get(),
            dropped: self.fault_drops.get(),
            rerouted: self.fault_reroutes.get(),
            reports: self.reports.clone(),
            suppressed: self.suppressed,
        }
    }

    fn report(&mut self, cycle: u64, anomaly: Anomaly) {
        if self.reports.len() < self.cfg.max_reports {
            let excerpt = self.recorder.excerpt(anomaly.node());
            self.reports.push(HealthReport {
                cycle,
                anomaly,
                excerpt,
            });
        } else {
            self.suppressed += 1;
        }
    }

    fn snapshot(&mut self, cycle: u64) {
        let delivered = self.delivered.get();
        let delta = delivered - self.prev_delivered;
        self.prev_delivered = delivered;
        let anomalies = self.reports.len() as u64 + self.suppressed;
        self.snapshots.push(format!(
            "[monitor] cycle={:>8} injected={} delivered={} (+{}) in_flight={} stalls={} anomalies={}",
            cycle + 1,
            self.injected.get(),
            delivered,
            delta,
            self.injected.get() - delivered,
            self.stalls.get(),
            anomalies
        ));
    }
}

impl EventSink for HealthMonitor {
    fn emit(&mut self, event: &SimEvent) {
        self.recorder.emit(event);
        match *event {
            SimEvent::Inject { .. } => self.injected.inc(),
            SimEvent::RouteDecision { .. } => self.route_decisions.inc(),
            SimEvent::Deflect { .. } => self.deflections.inc(),
            SimEvent::ExpressHop { .. } => self.express_hops.inc(),
            SimEvent::QueueStall { .. } => self.stalls.inc(),
            SimEvent::Eject { delivery, .. } => {
                self.delivered.inc();
                self.latency.record(delivery.total_latency());
            }
            SimEvent::FaultDrop { .. } => self.fault_drops.inc(),
            SimEvent::FaultReroute { .. } => self.fault_reroutes.inc(),
            SimEvent::WarmupReset { .. } | SimEvent::Truncated { .. } => {}
        }
        self.hotspot.observe(event);
        if let Some(a) = self.livelock.observe(event) {
            self.report(event.cycle(), a);
        }
        if let Some(a) = self.starvation.observe(event) {
            self.report(event.cycle(), a);
        }
    }

    fn end_cycle(&mut self, cycle: u64) {
        self.cycles = self.cycles.max(cycle + 1);
        for a in self.hotspot.end_cycle(cycle) {
            self.report(cycle, a);
        }
        self.in_flight
            .set((self.injected.get() - self.delivered.get()) as f64);
        if let Some(every) = self.cfg.snapshot_every {
            if cycle + 1 >= self.next_snapshot {
                self.snapshot(cycle);
                self.next_snapshot = cycle + 1 + every;
            }
        }
    }

    fn set_channel(&mut self, channel: usize) {
        if channel + 1 > self.channels {
            self.set_channels(channel + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;
    use crate::packet::{Delivery, Packet, PacketId};
    use crate::port::OutPort;

    fn stall(cycle: u64, node: usize) -> SimEvent {
        SimEvent::QueueStall {
            cycle,
            node,
            depth: 3,
        }
    }

    fn quick_cfg() -> MonitorConfig {
        MonitorConfig {
            detectors: DetectorConfig {
                starvation_streak: 4,
                ..DetectorConfig::default()
            },
            flight_capacity: 8,
            max_reports: 2,
            snapshot_every: None,
        }
    }

    #[test]
    fn starvation_report_carries_excerpt() {
        let mut m = HealthMonitor::new(MonitorShape::torus(2), quick_cfg());
        for c in 0..4 {
            m.emit(&stall(c, 1));
            m.end_cycle(c);
        }
        assert!(!m.healthy());
        let r = &m.reports()[0];
        assert_eq!(r.anomaly.kind(), "starvation");
        assert_eq!(r.excerpt.len(), 4, "excerpt holds the stalls so far");
        assert!(r.excerpt.iter().all(|e| e.node() == Some(1)));
    }

    #[test]
    fn max_reports_suppresses_but_counts() {
        let mut m = HealthMonitor::new(MonitorShape::torus(2), quick_cfg());
        // Starve three different nodes; only two reports are kept.
        for node in 0..3 {
            for c in 0..4 {
                m.emit(&stall(100 * node as u64 + c, node));
            }
        }
        assert_eq!(m.reports().len(), 2);
        let s = m.summary();
        assert_eq!(s.suppressed, 1);
        assert!(!s.healthy());
        assert_eq!(s.count("starvation"), 2);
    }

    #[test]
    fn counters_track_stream_and_summary_json_is_stable() {
        let mut m = HealthMonitor::new(MonitorShape::torus(2), MonitorConfig::default());
        let packet = Packet::new(PacketId(1), Coord::new(0, 0), Coord::new(1, 0), 0, 0);
        m.emit(&SimEvent::Inject {
            cycle: 0,
            node: 0,
            packet: PacketId(1),
            dst: Coord::new(1, 0),
            out: OutPort::EastSh,
            queue_wait: 0,
        });
        m.emit(&SimEvent::Eject {
            cycle: 1,
            node: 1,
            delivery: Delivery { packet, cycle: 2 },
        });
        m.end_cycle(1);
        let s = m.summary();
        assert_eq!((s.injected, s.delivered), (1, 1));
        assert!(s.healthy());
        let json = s.to_json();
        assert!(json.contains("\"healthy\":true"));
        assert!(json.contains("\"anomalies\":{\"livelock\":0,\"starvation\":0,\"hotspot\":0}"));
        assert_eq!(json, m.summary().to_json(), "JSON must be deterministic");
        let prom = m.registry().to_prometheus();
        assert!(prom.contains("fasttrack_injected_total 1"));
        assert!(prom.contains("fasttrack_delivery_latency_cycles_count 1"));
    }

    #[test]
    fn snapshots_fire_on_schedule() {
        let cfg = MonitorConfig {
            snapshot_every: Some(10),
            ..MonitorConfig::default()
        };
        let mut m = HealthMonitor::new(MonitorShape::torus(2), cfg);
        for c in 0..35 {
            // Multi-channel banks call end_cycle once per channel.
            m.end_cycle(c);
            m.end_cycle(c);
        }
        assert_eq!(m.snapshots().len(), 3);
        assert!(m.snapshots()[0].contains("cycle="));
    }

    #[test]
    fn render_text_mentions_each_kind() {
        let mut m = HealthMonitor::new(MonitorShape::torus(2), quick_cfg());
        for c in 0..4 {
            m.emit(&stall(c, 0));
        }
        let text = m.summary().render_text();
        assert!(text.contains("starvation at node 0"));
        assert!(text.starts_with("health: 1 anomalies"));
        let ok = HealthMonitor::new(MonitorShape::torus(2), quick_cfg())
            .summary()
            .render_text();
        assert!(ok.starts_with("health: OK"));
    }
}
