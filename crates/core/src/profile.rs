//! Self-profiling: a dependency-free scoped span profiler plus hot-path
//! perf counters for the [`crate::sim::SimSession`] lifecycle.
//!
//! The profiler is a thread-local stack of named spans over a monotonic
//! clock ([`std::time::Instant`]). Instrumentation sites call
//! [`scoped`], which is inert (one TLS read, no clock access, no
//! allocation) unless the current thread has an active recorder — so a
//! session that never calls [`SimSession::with_profile`] runs the exact
//! pre-profiling code path, and cold-path spans sprinkled through
//! builders (route-LUT construction, fault-plan validation) cost nothing
//! in unprofiled runs. Per-cycle work is *never* spanned; the drive loop
//! is accounted as one `session.drive` span and its throughput derived
//! from engine counters ([`crate::stats::SimStats::route_decisions`],
//! `pool_reuse`, deflections) that the kernel maintains unconditionally.
//!
//! A finished profile ([`SessionProfile`]) exposes the span tree (Chrome
//! `chrome://tracing` JSON, same document shape as
//! [`crate::export::ChromeTraceSink`]), a per-phase summary with
//! self-time, and derived rates (cycles/sec, packets/sec) published as
//! [`crate::monitor::MetricsRegistry`] cells so they ride the
//! Prometheus/JSON exposition for free.
//!
//! [`SimSession::with_profile`]: crate::sim::SimSession::with_profile

use std::cell::RefCell;
use std::time::Instant;

use crate::monitor::MetricsRegistry;
use crate::sim::SimReport;
use crate::trace::{EventSink, SimEvent};

/// One closed (or still-open, `dur_ns == 0`) span on a thread's stack.
///
/// Times are nanosecond offsets from the recorder's epoch. A child span
/// is entered after and exited before its parent on the same thread, so
/// sibling intervals are disjoint and the sum of child durations never
/// exceeds the parent's duration (exactly, in integer nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Phase name (dotted path by convention, e.g. `session.build`).
    pub name: &'static str,
    /// Index of the enclosing span in the recorder's span list.
    pub parent: Option<u32>,
    /// Nesting depth (root spans are depth 0).
    pub depth: u16,
    /// Start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 while the span is still open).
    pub dur_ns: u64,
}

impl Span {
    /// End offset from the recorder epoch, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Proof-of-entry handle returned by [`SpanRecorder::enter`]; spending it
/// in [`SpanRecorder::exit`] enforces strictly LIFO closing.
#[derive(Debug)]
pub struct SpanToken(u32);

/// Records a tree of spans against one monotonic epoch.
///
/// The recorder itself is plain data (usable directly in tests); the
/// thread-local plumbing ([`ThreadProfile`], [`scoped`]) wraps one per
/// profiled thread.
#[derive(Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    stack: Vec<u32>,
    spans: Vec<Span>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

impl SpanRecorder {
    /// A fresh recorder; its epoch is the moment of creation.
    pub fn new() -> Self {
        SpanRecorder {
            epoch: Instant::now(),
            stack: Vec::new(),
            spans: Vec::new(),
        }
    }

    fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span nested under the innermost open span.
    pub fn enter(&mut self, name: &'static str) -> SpanToken {
        SpanToken(self.enter_raw(name))
    }

    fn enter_raw(&mut self, name: &'static str) -> u32 {
        let idx = self.spans.len() as u32;
        self.spans.push(Span {
            name,
            parent: self.stack.last().copied(),
            depth: self.stack.len() as u16,
            start_ns: self.elapsed_ns(),
            dur_ns: 0,
        });
        self.stack.push(idx);
        idx
    }

    /// Closes the span `token` was issued for.
    ///
    /// # Panics
    ///
    /// Panics if `token` is not the innermost open span — spans close
    /// strictly LIFO.
    pub fn exit(&mut self, token: SpanToken) {
        let top = self.stack.pop().expect("exit with no open span");
        assert_eq!(top, token.0, "spans must close LIFO");
        self.close_at(top);
    }

    fn close_at(&mut self, idx: u32) {
        let end = self.elapsed_ns();
        let span = &mut self.spans[idx as usize];
        span.dur_ns = end.saturating_sub(span.start_ns);
    }

    /// Lenient close used by [`ScopedSpan::drop`]: pops (closing) open
    /// spans until `idx` itself is closed. A guard dropped out of order
    /// closes its abandoned children rather than panicking in `Drop`.
    fn close_through(&mut self, idx: u32) {
        while let Some(top) = self.stack.pop() {
            self.close_at(top);
            if top == idx {
                return;
            }
        }
    }

    /// Number of spans currently open.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Closes any still-open spans and returns the recorded span list in
    /// entry order.
    pub fn finish(mut self) -> Vec<Span> {
        while let Some(top) = self.stack.pop() {
            self.close_at(top);
        }
        self.spans
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<SpanRecorder>> = const { RefCell::new(None) };
}

/// RAII activation of span recording on the current thread.
///
/// Between [`ThreadProfile::begin`] and [`ThreadProfile::finish`], every
/// [`scoped`] call on this thread records into one [`SpanRecorder`].
/// Dropping the guard without calling `finish` (e.g. on an early error
/// return) discards the recording and restores the previous state, so
/// activation nests safely.
#[derive(Debug)]
pub struct ThreadProfile {
    prev: Option<SpanRecorder>,
    done: bool,
}

impl ThreadProfile {
    /// Installs a fresh recorder on the current thread.
    pub fn begin() -> ThreadProfile {
        let prev = ACTIVE.with(|a| a.borrow_mut().replace(SpanRecorder::new()));
        ThreadProfile { prev, done: false }
    }

    /// Deactivates recording and returns the captured spans.
    pub fn finish(mut self) -> Vec<Span> {
        self.done = true;
        let rec = ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), self.prev.take()));
        rec.map(SpanRecorder::finish).unwrap_or_default()
    }
}

impl Drop for ThreadProfile {
    fn drop(&mut self) {
        if !self.done {
            ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
        }
    }
}

/// Guard for one scoped span; closes it (leniently) on drop.
#[derive(Debug)]
#[must_use = "a scoped span closes when this guard drops"]
pub struct ScopedSpan {
    idx: Option<u32>,
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        if let Some(idx) = self.idx {
            ACTIVE.with(|a| {
                if let Some(rec) = a.borrow_mut().as_mut() {
                    rec.close_through(idx);
                }
            });
        }
    }
}

/// Opens a named span if the current thread is profiling; otherwise
/// returns an inert guard (one TLS borrow, no clock read, no allocation).
pub fn scoped(name: &'static str) -> ScopedSpan {
    let idx = ACTIVE.with(|a| a.borrow_mut().as_mut().map(|rec| rec.enter_raw(name)));
    ScopedSpan { idx }
}

/// True if the current thread has an active recorder (for tests).
pub fn thread_is_profiling() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Renders spans as a Chrome trace-event document — complete `ph:"X"`
/// events with microsecond timestamps, the same shape
/// [`crate::export::ChromeTraceSink`] emits, loadable in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = s.start_ns as f64 / 1000.0;
        // Sub-microsecond spans still get a visible sliver.
        let dur = (s.dur_ns as f64 / 1000.0).max(0.001);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"depth\":{}}}}}",
            s.name, s.depth
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Aggregate of all spans sharing one name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name.
    pub name: &'static str,
    /// Times a span with this name was entered.
    pub count: u64,
    /// Total inclusive duration, nanoseconds.
    pub total_ns: u64,
    /// Duration not attributed to child spans, nanoseconds.
    pub self_ns: u64,
}

/// Folds a span list into per-name phase statistics, first-seen order.
pub fn summarize(spans: &[Span]) -> Vec<PhaseStat> {
    let mut child_ns = vec![0u64; spans.len()];
    for s in spans {
        if let Some(p) = s.parent {
            child_ns[p as usize] += s.dur_ns;
        }
    }
    let mut phases: Vec<PhaseStat> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        let self_ns = s.dur_ns.saturating_sub(child_ns[i]);
        match phases.iter_mut().find(|p| p.name == s.name) {
            Some(p) => {
                p.count += 1;
                p.total_ns += s.dur_ns;
                p.self_ns += self_ns;
            }
            None => phases.push(PhaseStat {
                name: s.name,
                count: 1,
                total_ns: s.dur_ns,
                self_ns,
            }),
        }
    }
    phases
}

/// An [`EventSink`] that counts dispatched events without storing them.
/// The profiled drive loop fans out to `(sink, monitor, counter)`
/// tuples, so event-dispatch volume is accounted by count — never by
/// per-event timing, which would perturb the hot loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventCounter {
    /// Events emitted by the engine.
    pub events: u64,
}

impl EventSink for EventCounter {
    fn emit(&mut self, _event: &SimEvent) {
        self.events += 1;
    }
}

/// Derived throughput and counter snapshot for one profiled run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileSummary {
    /// Wall-clock seconds of the `session.drive` span(s).
    pub drive_seconds: f64,
    /// Cycles simulated after warmup.
    pub cycles: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Simulated cycles per wall-clock second of drive time.
    pub cycles_per_sec: f64,
    /// Delivered packets per wall-clock second of drive time.
    pub packets_per_sec: f64,
    /// `SimEvent`s fanned out to sinks.
    pub events_dispatched: u64,
    /// Route decisions made by the engine (LUT or direct).
    pub route_decisions: u64,
    /// Packet-pool insertions that recycled a freed slot.
    pub pool_reuse: u64,
    /// Non-productive output assignments.
    pub deflections: u64,
}

/// The complete profiling artifact of one [`crate::sim::SimSession`]
/// run: span tree, per-phase summary, derived rates, and the metrics
/// registry the rates were published into.
#[derive(Debug, Clone)]
pub struct SessionProfile {
    spans: Vec<Span>,
    summary: ProfileSummary,
    registry: MetricsRegistry,
}

impl SessionProfile {
    /// Builds the profile from captured spans and the run's report,
    /// publishing `fasttrack_profile_*` cells into `registry` (the
    /// monitor's registry when one is attached, so profile rates ride
    /// the same Prometheus/JSON exposition).
    pub fn assemble(
        spans: Vec<Span>,
        report: &SimReport,
        events_dispatched: u64,
        registry: MetricsRegistry,
    ) -> SessionProfile {
        let drive_ns: u64 = spans
            .iter()
            .filter(|s| s.name == "session.drive")
            .map(|s| s.dur_ns)
            .sum();
        let drive_seconds = drive_ns as f64 / 1e9;
        let rate = |n: u64| {
            if drive_seconds > 0.0 {
                n as f64 / drive_seconds
            } else {
                0.0
            }
        };
        let summary = ProfileSummary {
            drive_seconds,
            cycles: report.cycles,
            delivered: report.stats.delivered,
            cycles_per_sec: rate(report.cycles),
            packets_per_sec: rate(report.stats.delivered),
            events_dispatched,
            route_decisions: report.stats.route_decisions,
            pool_reuse: report.stats.pool_reuse,
            deflections: report.stats.ports.total_deflections(),
        };
        registry
            .gauge(
                "fasttrack_profile_drive_seconds",
                "Wall-clock seconds spent in the cycle drive loop",
            )
            .set(summary.drive_seconds);
        registry
            .gauge(
                "fasttrack_profile_cycles_per_sec",
                "Simulated cycles per wall-clock second of drive time",
            )
            .set(summary.cycles_per_sec);
        registry
            .gauge(
                "fasttrack_profile_packets_per_sec",
                "Delivered packets per wall-clock second of drive time",
            )
            .set(summary.packets_per_sec);
        registry
            .counter(
                "fasttrack_profile_events_dispatched_total",
                "SimEvents fanned out to event sinks during the profiled run",
            )
            .add(summary.events_dispatched);
        registry
            .counter(
                "fasttrack_profile_route_decisions_total",
                "Output-port route decisions made by the engine",
            )
            .add(summary.route_decisions);
        registry
            .counter(
                "fasttrack_profile_pool_reuse_total",
                "Packet-pool insertions that recycled a freed slot",
            )
            .add(summary.pool_reuse);
        registry
            .counter(
                "fasttrack_profile_deflections_total",
                "Non-productive output assignments (deflections)",
            )
            .add(summary.deflections);
        SessionProfile {
            spans,
            summary,
            registry,
        }
    }

    /// The recorded spans, in entry order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Derived throughput and counter snapshot.
    pub fn summary(&self) -> &ProfileSummary {
        &self.summary
    }

    /// Per-phase aggregates (first-seen order).
    pub fn phases(&self) -> Vec<PhaseStat> {
        summarize(&self.spans)
    }

    /// The registry holding the published `fasttrack_profile_*` cells.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Chrome trace-event document for the span tree.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.spans)
    }

    /// Human-readable per-phase table plus the counter summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>7} {:>14} {:>14}\n",
            "phase", "count", "total", "self"
        ));
        for p in self.phases() {
            let indent = p.name.matches('.').count();
            out.push_str(&format!(
                "{:<40} {:>7} {:>14} {:>14}\n",
                format!("{}{}", "  ".repeat(indent), p.name),
                p.count,
                fmt_ns(p.total_ns),
                fmt_ns(p.self_ns),
            ));
        }
        let s = &self.summary;
        out.push_str(&format!(
            "drive {:.6} s | {:.0} cycles/s | {:.0} packets/s\n",
            s.drive_seconds, s.cycles_per_sec, s.packets_per_sec
        ));
        out.push_str(&format!(
            "events dispatched {} | route decisions {} | pool reuse {} | deflections {}\n",
            s.events_dispatched, s.route_decisions, s.pool_reuse, s.deflections
        ));
        out
    }

    /// Machine-readable summary (flat keys plus a `phases` array), for
    /// `fasttrack profile --json` and external tooling.
    pub fn to_json(&self) -> String {
        let s = &self.summary;
        let mut out = String::from("{");
        out.push_str("\"schema\":\"fasttrack-profile-v1\"");
        out.push_str(&format!(",\"drive_seconds\":{}", s.drive_seconds));
        out.push_str(&format!(",\"cycles\":{}", s.cycles));
        out.push_str(&format!(",\"delivered\":{}", s.delivered));
        out.push_str(&format!(",\"cycles_per_sec\":{}", s.cycles_per_sec));
        out.push_str(&format!(",\"packets_per_sec\":{}", s.packets_per_sec));
        out.push_str(&format!(",\"events_dispatched\":{}", s.events_dispatched));
        out.push_str(&format!(",\"route_decisions\":{}", s.route_decisions));
        out.push_str(&format!(",\"pool_reuse\":{}", s.pool_reuse));
        out.push_str(&format!(",\"deflections\":{}", s.deflections));
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                p.name, p.count, p.total_ns, p.self_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} us", ns as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_tracks_nesting_and_durations() {
        let mut rec = SpanRecorder::new();
        let a = rec.enter("a");
        let b = rec.enter("a.b");
        assert_eq!(rec.open_depth(), 2);
        rec.exit(b);
        let c = rec.enter("a.c");
        rec.exit(c);
        rec.exit(a);
        let spans = rec.finish();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].parent, Some(0));
        // Disjoint children: sum of child durations fits in the parent.
        assert!(spans[1].dur_ns + spans[2].dur_ns <= spans[0].dur_ns);
        // Siblings do not overlap.
        assert!(spans[1].end_ns() <= spans[2].start_ns);
    }

    #[test]
    #[should_panic(expected = "spans must close LIFO")]
    fn out_of_order_exit_panics() {
        let mut rec = SpanRecorder::new();
        let a = rec.enter("a");
        let _b = rec.enter("b");
        rec.exit(a);
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut rec = SpanRecorder::new();
        let _ = rec.enter("open");
        let spans = rec.finish();
        assert_eq!(spans.len(), 1);
        // Closed at finish: duration is set (possibly 0 ns, but the
        // stack is drained).
        assert_eq!(spans[0].name, "open");
    }

    #[test]
    fn scoped_is_inert_without_activation() {
        assert!(!thread_is_profiling());
        let guard = scoped("ignored");
        assert!(guard.idx.is_none());
        drop(guard);
    }

    #[test]
    fn thread_profile_captures_scoped_spans() {
        let tp = ThreadProfile::begin();
        assert!(thread_is_profiling());
        {
            let _outer = scoped("outer");
            let _inner = scoped("outer.inner");
        }
        let spans = tp.finish();
        assert!(!thread_is_profiling());
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].parent, Some(0));
    }

    #[test]
    fn dropped_guard_restores_previous_state() {
        {
            let _tp = ThreadProfile::begin();
            assert!(thread_is_profiling());
            // Dropped without finish(): recording discarded.
        }
        assert!(!thread_is_profiling());
    }

    #[test]
    fn chrome_trace_document_shape() {
        let mut rec = SpanRecorder::new();
        let a = rec.enter("session");
        let b = rec.enter("session.drive");
        rec.exit(b);
        rec.exit(a);
        let doc = chrome_trace(&rec.finish());
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
        assert!(doc.contains("\"name\":\"session.drive\""));
        assert!(doc.contains("\"ph\":\"X\""));
    }

    #[test]
    fn summarize_computes_self_time() {
        let spans = vec![
            Span {
                name: "root",
                parent: None,
                depth: 0,
                start_ns: 0,
                dur_ns: 100,
            },
            Span {
                name: "child",
                parent: Some(0),
                depth: 1,
                start_ns: 10,
                dur_ns: 30,
            },
            Span {
                name: "child",
                parent: Some(0),
                depth: 1,
                start_ns: 50,
                dur_ns: 20,
            },
        ];
        let phases = summarize(&spans);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "root");
        assert_eq!(phases[0].self_ns, 50);
        assert_eq!(phases[1].count, 2);
        assert_eq!(phases[1].total_ns, 50);
        assert_eq!(phases[1].self_ns, 50);
    }

    #[test]
    fn event_counter_counts() {
        let mut c = EventCounter::default();
        c.emit(&SimEvent::WarmupReset { cycle: 7 });
        c.emit(&SimEvent::Truncated { cycle: 9 });
        assert_eq!(c.events, 2);
    }
}
