//! Per-router-class ordered fallback chains for fault-degraded routing.
//!
//! PR 4's graceful degradation *drops* a lane-locked express packet at a
//! dead router — trading livelock for lost traffic. This module gives
//! each [`RouterClass`] a **static, validated, ordered fallback chain**
//! consulted at route-decision time whenever the fault plan disqualifies
//! the packet's preferred output:
//!
//! 1. [`FallbackAction::DemoteToRing`] — the stranded express packet is
//!    re-routed as if it had arrived on the shared twin of its input
//!    (`W_ex → W_sh`, `N_ex → N_sh`), escaping onto the shared
//!    deflection ring. Shared links can never be fault-masked (the plan
//!    validator rejects them as partitioning), so the demoted packet
//!    always has a live path.
//! 2. [`FallbackAction::AlternateChannel`] — in a [`crate::multichannel::MultiNoc`]
//!    bank, a packet that still loses allocation is handed to a parallel
//!    channel instead of being dropped; on a single-channel engine this
//!    step is inert (there is no alternate) and the chain falls through.
//! 3. **Drop** — the implicit, exhausted-chain last resort, identical to
//!    the pre-fallback behavior and still exactly conserved via
//!    [`crate::stats::SimStats::dropped`].
//!
//! Chains are *single-level* and consulted in order (mirroring static
//! fallback-chain proxy designs): each candidate goes through the same
//! validation pipeline, and the first applicable action wins. An empty
//! configuration ([`FallbackConfig::none`], the default) reproduces the
//! drop-at-dead-router behavior bit-for-bit — fallback routing is
//! strictly opt-in, exactly like an empty [`crate::fault::FaultPlan`]
//! reproduces the healthy engine.
//!
//! Every demotion and channel switch is emitted as a
//! [`crate::trace::SimEvent::FaultReroute`] so the attribution layer's
//! `reroute` component and the monitor's detectors see fallback traffic
//! without new event plumbing, and counted in the new
//! [`crate::stats::SimStats::fallback_demotions`] /
//! [`crate::stats::SimStats::fallback_channel_switches`] fields.

use std::fmt;

use crate::router::RouterClass;

/// One step of a fallback chain, tried in chain order when the fault
/// plan disqualifies a packet's preferred output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackAction {
    /// Demote the lane-locked express packet onto the shared deflection
    /// ring (re-route via the shared twin of its input port).
    DemoteToRing,
    /// Hand the packet to a parallel channel of a multi-channel bank.
    /// Inert on a single-channel engine.
    AlternateChannel,
}

impl fmt::Display for FallbackAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackAction::DemoteToRing => f.write_str("demote-to-ring"),
            FallbackAction::AlternateChannel => f.write_str("alternate-channel"),
        }
    }
}

/// Why a [`FallbackConfig`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackError {
    /// A chain lists the same action twice — chains are single-level
    /// and ordered; repeating an action can never make progress.
    DuplicateAction {
        /// Router class code (0..4) of the offending chain.
        class: usize,
        /// The repeated action.
        action: FallbackAction,
    },
    /// `DemoteToRing` on a router class with no express inputs: nothing
    /// can be lane-locked there, so the step would be unreachable.
    DemoteNeedsExpressInput {
        /// Router class code (0..4) of the offending chain.
        class: usize,
    },
    /// `AlternateChannel` ordered before `DemoteToRing`: the chain must
    /// try the cheap same-channel escape before paying for a channel
    /// switch.
    AlternateBeforeDemote {
        /// Router class code (0..4) of the offending chain.
        class: usize,
    },
    /// The selected topology has no express/shared lane pairing, so
    /// fallback chains are meaningless there: only the empty (inert)
    /// configuration is accepted
    /// (see [`crate::topology::Topology::validate_fallback`]).
    UnsupportedTopology,
}

impl fmt::Display for FallbackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FallbackError::DuplicateAction { class, action } => {
                write!(f, "class {class} chain lists {action} twice")
            }
            FallbackError::DemoteNeedsExpressInput { class } => write!(
                f,
                "class {class} has no express inputs; demote-to-ring is unreachable there"
            ),
            FallbackError::AlternateBeforeDemote { class } => write!(
                f,
                "class {class} chain orders alternate-channel before demote-to-ring; \
                 the same-channel escape must be tried first"
            ),
            FallbackError::UnsupportedTopology => f.write_str(
                "this topology has no express/shared lane pairing; \
                 only the empty fallback configuration is accepted",
            ),
        }
    }
}

impl std::error::Error for FallbackError {}

/// Static, ordered, per-router-class fallback chains.
///
/// Chains are keyed by [`RouterClass::code`] (0..4). The default (and
/// [`FallbackConfig::none`]) carries empty chains everywhere, which the
/// engine treats as the exact pre-fallback drop behavior.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FallbackConfig {
    chains: [Vec<FallbackAction>; 4],
}

impl FallbackConfig {
    /// The empty configuration: every chain is empty, and the engine is
    /// bit-identical to one built without fallback routing.
    pub fn none() -> Self {
        FallbackConfig::default()
    }

    /// The standard chain: every express-capable router class demotes
    /// stranded express packets to the shared ring first, then tries an
    /// alternate channel, then drops. Hoplite-class routers (no express
    /// ports — nothing strands there) keep the alternate-channel step
    /// only.
    pub fn standard() -> Self {
        let mut cfg = FallbackConfig::default();
        for code in 0..4 {
            cfg.chains[code] = if code == 0 {
                vec![FallbackAction::AlternateChannel]
            } else {
                vec![
                    FallbackAction::DemoteToRing,
                    FallbackAction::AlternateChannel,
                ]
            };
        }
        cfg
    }

    /// Replaces the chain for one router class, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `class_code >= 4`.
    pub fn with_chain(mut self, class_code: usize, chain: Vec<FallbackAction>) -> Self {
        assert!(class_code < 4, "router class codes are 0..4");
        self.chains[class_code] = chain;
        self
    }

    /// The chain for a router class code, in consultation order.
    pub fn chain(&self, class_code: usize) -> &[FallbackAction] {
        &self.chains[class_code]
    }

    /// True when every chain is empty (the engine takes the exact
    /// pre-fallback code path).
    pub fn is_empty(&self) -> bool {
        self.chains.iter().all(Vec::is_empty)
    }

    /// Validates every chain through the same pipeline: no duplicate
    /// actions, demotion only where express inputs exist, and the
    /// same-channel escape ordered before the channel switch.
    pub fn validate(&self) -> Result<(), FallbackError> {
        for (class, chain) in self.chains.iter().enumerate() {
            let mut seen: Vec<FallbackAction> = Vec::new();
            for &action in chain {
                if seen.contains(&action) {
                    return Err(FallbackError::DuplicateAction { class, action });
                }
                seen.push(action);
            }
            let has_express_input = {
                let rc = RouterClass::from_code(class);
                rc.x_express || rc.y_express
            };
            if chain.contains(&FallbackAction::DemoteToRing) && !has_express_input {
                return Err(FallbackError::DemoteNeedsExpressInput { class });
            }
            if let (Some(alt), Some(demote)) = (
                chain
                    .iter()
                    .position(|&a| a == FallbackAction::AlternateChannel),
                chain
                    .iter()
                    .position(|&a| a == FallbackAction::DemoteToRing),
            ) {
                if alt < demote {
                    return Err(FallbackError::AlternateBeforeDemote { class });
                }
            }
        }
        Ok(())
    }

    /// Compiles the chains into the per-class flag table the engine's
    /// hot path reads. The caller must have run
    /// [`FallbackConfig::validate`] first.
    pub(crate) fn compile(&self) -> CompiledFallback {
        let mut compiled = CompiledFallback::default();
        for (class, chain) in self.chains.iter().enumerate() {
            compiled.demote[class] = chain.contains(&FallbackAction::DemoteToRing);
            compiled.alternate[class] = chain.contains(&FallbackAction::AlternateChannel);
        }
        compiled
    }
}

impl fmt::Display for FallbackConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no fallback chains");
        }
        let mut first = true;
        for (class, chain) in self.chains.iter().enumerate() {
            if chain.is_empty() {
                continue;
            }
            if !first {
                f.write_str("; ")?;
            }
            first = false;
            write!(f, "class {class}:")?;
            for (i, action) in chain.iter().enumerate() {
                write!(f, "{}{action}", if i == 0 { " " } else { " → " })?;
            }
        }
        Ok(())
    }
}

/// The compiled per-class flag table: chain order collapses to "may
/// demote" / "may switch channel" because the engine consults the steps
/// at fixed points in the cycle (demotion before allocation, channel
/// switch at the drop site), which realizes exactly the validated
/// demote-before-alternate order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CompiledFallback {
    /// Per-class: stranded express inputs demote to the shared ring.
    pub(crate) demote: [bool; 4],
    /// Per-class: allocation losers move to a parallel channel.
    pub(crate) alternate: [bool; 4],
}

impl CompiledFallback {
    /// True when no chain does anything (the pre-fallback code path).
    pub(crate) fn is_inert(&self) -> bool {
        !self.demote.iter().any(|&d| d) && !self.alternate.iter().any(|&a| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_is_inert_and_valid() {
        let cfg = FallbackConfig::none();
        assert!(cfg.is_empty());
        assert_eq!(cfg.validate(), Ok(()));
        assert!(cfg.compile().is_inert());
        assert_eq!(cfg.to_string(), "no fallback chains");
    }

    #[test]
    fn standard_config_validates_and_compiles() {
        let cfg = FallbackConfig::standard();
        assert!(!cfg.is_empty());
        assert_eq!(cfg.validate(), Ok(()));
        let compiled = cfg.compile();
        assert!(!compiled.is_inert());
        assert!(!compiled.demote[0], "Hoplite class cannot demote");
        assert!(compiled.alternate[0]);
        for code in 1..4 {
            assert!(compiled.demote[code]);
            assert!(compiled.alternate[code]);
        }
        assert_eq!(
            cfg.chain(3),
            &[
                FallbackAction::DemoteToRing,
                FallbackAction::AlternateChannel
            ]
        );
        assert!(cfg.to_string().contains("demote-to-ring"));
    }

    #[test]
    fn duplicate_action_rejected() {
        let cfg = FallbackConfig::none().with_chain(
            1,
            vec![FallbackAction::DemoteToRing, FallbackAction::DemoteToRing],
        );
        assert_eq!(
            cfg.validate(),
            Err(FallbackError::DuplicateAction {
                class: 1,
                action: FallbackAction::DemoteToRing
            })
        );
    }

    #[test]
    fn demote_requires_express_inputs() {
        let cfg = FallbackConfig::none().with_chain(0, vec![FallbackAction::DemoteToRing]);
        assert_eq!(
            cfg.validate(),
            Err(FallbackError::DemoteNeedsExpressInput { class: 0 })
        );
    }

    #[test]
    fn alternate_must_follow_demote() {
        let cfg = FallbackConfig::none().with_chain(
            3,
            vec![
                FallbackAction::AlternateChannel,
                FallbackAction::DemoteToRing,
            ],
        );
        assert_eq!(
            cfg.validate(),
            Err(FallbackError::AlternateBeforeDemote { class: 3 })
        );
        // Alternate alone is fine in any class.
        let alone = FallbackConfig::none().with_chain(3, vec![FallbackAction::AlternateChannel]);
        assert_eq!(alone.validate(), Ok(()));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(FallbackError::DemoteNeedsExpressInput { class: 0 }
            .to_string()
            .contains("express"));
        assert!(FallbackError::AlternateBeforeDemote { class: 2 }
            .to_string()
            .contains("first"));
        assert!(FallbackError::DuplicateAction {
            class: 1,
            action: FallbackAction::AlternateChannel
        }
        .to_string()
        .contains("twice"));
    }
}
