//! Simulation statistics: latency aggregates, log-scale histograms, link
//! usage, and per-port deflection counters — everything the paper's
//! evaluation figures consume.

use std::fmt;

use crate::port::InPort;

/// A power-of-two-bucketed latency histogram (paper Figure 16 plots
/// packet latencies on a log axis from tens to tens of thousands of
/// cycles).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// `buckets[i]` counts samples with `value` in `[2^i, 2^(i+1))`
    /// (bucket 0 holds values 0 and 1).
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.max(1).leading_zeros() - 1) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exclusive upper bound of bucket `i`. The top bucket's true bound
    /// is `2^64`, which doesn't fit in a `u64`, so it saturates to
    /// `u64::MAX` (making the top bucket's range inclusive instead).
    fn bucket_high(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// Iterates `(bucket_low, bucket_high_exclusive, count)` for non-empty
    /// buckets in increasing order (the top bucket saturates its high
    /// bound to `u64::MAX`, see `Histogram::bucket_high`).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, Self::bucket_high(i), c))
    }

    /// Approximate percentile (upper bound of the bucket containing it).
    /// Returns `None` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_high(i).wrapping_sub(u64::from(i < 63)));
            }
        }
        Some(
            Self::bucket_high(self.buckets.len() - 1)
                .wrapping_sub(u64::from(self.buckets.len() < 64)),
        )
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
    }
}

/// Streaming aggregate of a latency population plus its histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
    histogram: Histogram,
}

impl LatencyStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        LatencyStats {
            min: u64::MAX,
            ..Default::default()
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
        self.min = self.min.min(latency);
        self.histogram.record(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (0 for an empty population).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Worst-case latency observed (0 if empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Best-case latency observed (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.histogram.merge(&other.histogram);
    }
}

/// Totals of short- and express-link traversals (paper Figure 18a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkUsage {
    /// One-hop link traversals.
    pub short_hops: u64,
    /// Express-link traversals (each covers `D` router positions).
    pub express_hops: u64,
}

impl LinkUsage {
    /// Total traversals of either kind.
    pub fn total(&self) -> u64 {
        self.short_hops + self.express_hops
    }

    /// Fraction of traversals on express links (0 when idle).
    pub fn express_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.express_hops as f64 / self.total() as f64
        }
    }
}

/// Deflection and lane-demotion counts per in-flight input port
/// (paper Figure 18b tracks them at `West_Sh` / `West_Ex` / ... inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortCounters {
    /// `deflections[p]`: packets at input `p` assigned a non-productive
    /// (DOR-regressing) output.
    pub deflections: [u64; 4],
    /// `demotions[p]`: packets at input `p` that wanted an express output
    /// but were forced onto a short one ("input deflections" in Fig 18b).
    pub demotions: [u64; 4],
}

impl PortCounters {
    /// Deflections at the given in-flight port.
    pub fn deflections_at(&self, port: InPort) -> u64 {
        debug_assert!(port != InPort::Pe);
        self.deflections[port.index()]
    }

    /// Demotions at the given in-flight port.
    pub fn demotions_at(&self, port: InPort) -> u64 {
        debug_assert!(port != InPort::Pe);
        self.demotions[port.index()]
    }

    /// All deflections across ports.
    pub fn total_deflections(&self) -> u64 {
        self.deflections.iter().sum()
    }

    /// All demotions across ports.
    pub fn total_demotions(&self) -> u64 {
        self.demotions.iter().sum()
    }
}

/// Aggregated statistics for one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Packets handed to source queues.
    pub enqueued: u64,
    /// Packets that entered the NoC.
    pub injected: u64,
    /// Packets delivered to their destination PE.
    pub delivered: u64,
    /// Latency from source-queue entry to delivery.
    pub total_latency: LatencyStatsInit,
    /// Latency from NoC injection to delivery.
    pub network_latency: LatencyStatsInit,
    /// Link traversal totals.
    pub link_usage: LinkUsage,
    /// Per-port deflection counters.
    pub ports: PortCounters,
    /// Cycles in which a PE wanted to inject but stalled.
    pub injection_stalls: u64,
    /// Packets discarded by injected faults (dead routers, transient
    /// link drops, corruption). Zero on a fault-free fabric. Packet
    /// conservation holds as `delivered + in_flight + dropped ==
    /// injected` at every cycle.
    pub dropped: u64,
    /// Routing decisions that steered a packet away from a dead express
    /// link onto the plain ring (graceful degradation, not a loss).
    pub rerouted: u64,
    /// Lane-locked express packets demoted onto the shared ring by a
    /// fallback chain instead of being dropped at a dead router (a
    /// subset of `rerouted`; zero without fallback chains).
    pub fallback_demotions: u64,
    /// Allocation losers handed to a parallel channel by a fallback
    /// chain instead of being dropped (a subset of `rerouted`; zero
    /// without fallback chains or on a single channel).
    pub fallback_channel_switches: u64,
    /// Output-port decisions made for packets (in-flight allocations plus
    /// accepted injections) — the LUT/direct route-resolution workload.
    pub route_decisions: u64,
    /// Packet-pool insertions that reused a previously freed slot instead
    /// of growing the pool (allocator recycling efficiency).
    pub pool_reuse: u64,
}

impl SimStats {
    /// Merges another run's statistics into this one (used to combine the
    /// per-channel statistics of a multi-channel NoC).
    pub fn merge(&mut self, other: &SimStats) {
        self.enqueued += other.enqueued;
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.total_latency.merge(&other.total_latency);
        self.network_latency.merge(&other.network_latency);
        self.link_usage.short_hops += other.link_usage.short_hops;
        self.link_usage.express_hops += other.link_usage.express_hops;
        for i in 0..4 {
            self.ports.deflections[i] += other.ports.deflections[i];
            self.ports.demotions[i] += other.ports.demotions[i];
        }
        self.injection_stalls += other.injection_stalls;
        self.dropped += other.dropped;
        self.rerouted += other.rerouted;
        self.fallback_demotions += other.fallback_demotions;
        self.fallback_channel_switches += other.fallback_channel_switches;
        self.route_decisions += other.route_decisions;
        self.pool_reuse += other.pool_reuse;
    }
}

/// Wrapper so that `SimStats: Default` builds `LatencyStats::new()`
/// (with `min` primed to `u64::MAX`) rather than the all-zero default.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStatsInit(pub LatencyStats);

impl Default for LatencyStatsInit {
    fn default() -> Self {
        LatencyStatsInit(LatencyStats::new())
    }
}

impl std::ops::Deref for LatencyStatsInit {
    type Target = LatencyStats;
    fn deref(&self) -> &LatencyStats {
        &self.0
    }
}

impl std::ops::DerefMut for LatencyStatsInit {
    fn deref_mut(&mut self) -> &mut LatencyStats {
        &mut self.0
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delivered {} / injected {} (avg latency {:.1}, worst {}, {} deflections, {} short + {} express hops)",
            self.delivered,
            self.injected,
            self.total_latency.mean(),
            self.total_latency.max(),
            self.ports.total_deflections(),
            self.link_usage.short_hops,
            self.link_usage.express_hops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(1000);
        assert_eq!(h.count(), 6);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets[0], (1, 2, 2)); // 0 and 1
        assert_eq!(buckets[1], (2, 4, 2)); // 2 and 3
        assert_eq!(buckets[2], (4, 8, 1));
        assert_eq!(buckets[3], (512, 1024, 1));
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        for v in [1, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(1));
        assert_eq!(h.percentile(99.0), Some(1023));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_percentile_validates() {
        Histogram::new().percentile(150.0);
    }

    #[test]
    fn histogram_extreme_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        let buckets: Vec<_> = h.iter().collect();
        // 0 and 1 share bucket 0; u64::MAX lands in the saturated top
        // bucket [2^63, u64::MAX] without overflowing the bound math.
        assert_eq!(buckets[0], (1, 2, 2));
        assert_eq!(buckets[1], (1u64 << 63, u64::MAX, 1));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
        assert_eq!(h.percentile(50.0), Some(1));
    }

    #[test]
    fn histogram_power_of_two_boundaries() {
        // 2^k is the *low* edge of bucket k; 2^k - 1 is the top of
        // bucket k-1.
        for k in [1u32, 2, 8, 31, 32, 62] {
            let lo = 1u64 << k;
            let mut h = Histogram::new();
            h.record(lo - 1);
            h.record(lo);
            let buckets: Vec<_> = h.iter().collect();
            assert_eq!(buckets.len(), 2, "2^{k}-1 and 2^{k} must split buckets");
            assert_eq!(buckets[0], (1 << (k - 1), lo, 1));
            assert_eq!(buckets[1], (lo, 1 << (k + 1), 1));
        }
        // The top boundary: 2^63 - 1 tops bucket 62; 2^63 opens the
        // saturated bucket 63.
        let mut h = Histogram::new();
        h.record((1u64 << 63) - 1);
        h.record(1u64 << 63);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets[0], (1u64 << 62, 1u64 << 63, 1));
        assert_eq!(buckets[1], (1u64 << 63, u64::MAX, 1));
        assert_eq!(h.percentile(50.0), Some((1u64 << 63) - 1));
    }

    #[test]
    fn histogram_merge_with_top_bucket() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.percentile(100.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(3);
        let mut b = Histogram::new();
        b.record(100);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn latency_stats_aggregates() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
        for v in [10, 20, 30] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-9);
        assert_eq!(s.max(), 30);
        assert_eq!(s.min(), 10);
    }

    #[test]
    fn latency_stats_merge() {
        let mut a = LatencyStats::new();
        a.record(5);
        let mut b = LatencyStats::new();
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 15);
        assert_eq!(a.min(), 5);
    }

    #[test]
    fn link_usage_fractions() {
        let u = LinkUsage {
            short_hops: 75,
            express_hops: 25,
        };
        assert_eq!(u.total(), 100);
        assert!((u.express_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(LinkUsage::default().express_fraction(), 0.0);
    }

    #[test]
    fn port_counters_indexing() {
        let mut c = PortCounters::default();
        c.deflections[InPort::WestSh.index()] = 7;
        c.demotions[InPort::WestEx.index()] = 3;
        assert_eq!(c.deflections_at(InPort::WestSh), 7);
        assert_eq!(c.demotions_at(InPort::WestEx), 3);
        assert_eq!(c.total_deflections(), 7);
        assert_eq!(c.total_demotions(), 3);
    }

    #[test]
    fn sim_stats_display_is_nonempty() {
        let s = SimStats::default();
        assert!(!s.to_string().is_empty());
    }
}
