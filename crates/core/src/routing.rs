//! The FastTrack routing function: Dimension-Ordered Routing with express
//! preference, deflection fallbacks, and injection-time express
//! eligibility.
//!
//! For each packet at each router, the routing function produces an
//! **ordered preference list** of output ports:
//!
//! 1. the productive ports (express first when the remaining distance
//!    warrants it, then the short lane in the same direction), then
//! 2. deflection fallbacks — east before south (X-ring traffic has
//!    priority and deflecting a Y-phase packet east is the paper's
//!    livelock-avoidance move), same lane as the input first.
//!
//! The port allocator ([`crate::alloc`]) walks this list in priority order.

use crate::config::{FtPolicy, NocConfig};
use crate::geom::Coord;
use crate::port::{InPort, OutPort, OutSet};
use crate::router::{allowed_outputs, RouterClass};

/// An ordered preference list plus the statistics classification sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePrefs {
    list: [OutPort; 5],
    len: u8,
    /// Ports whose assignment counts as DOR progress (not a deflection).
    productive: OutSet,
    /// True when the first choice was an express port (used to count
    /// lane demotions: wanted express, was forced onto a short link).
    wanted_express: bool,
}

impl RoutePrefs {
    /// An empty preference list (no ports, nothing productive). Used as
    /// the filler value in the engine's fixed-size per-cycle buffers so
    /// the hot path never heap-allocates.
    pub const fn empty() -> RoutePrefs {
        RoutePrefs {
            list: [OutPort::Exit; 5],
            len: 0,
            productive: OutSet::empty(),
            wanted_express: false,
        }
    }

    /// The preference list, best first. Never empty for a routable packet.
    pub fn ports(&self) -> &[OutPort] {
        &self.list[..self.len as usize]
    }

    /// The first-choice port.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty (cannot happen for lists produced by
    /// [`compute_prefs`] on inputs that exist at the router).
    pub fn primary(&self) -> OutPort {
        self.list[0]
    }

    /// Ports that count as DOR progress.
    pub fn productive(&self) -> OutSet {
        self.productive
    }

    /// Whether the packet wanted the express lane this cycle.
    pub fn wanted_express(&self) -> bool {
        self.wanted_express
    }

    /// The full set of ports in the list (for matching feasibility).
    pub fn as_set(&self) -> OutSet {
        self.ports().iter().copied().collect()
    }

    fn push(&mut self, p: OutPort) {
        if !self.ports().contains(&p) {
            debug_assert!((self.len as usize) < self.list.len());
            self.list[self.len as usize] = p;
            self.len += 1;
        }
    }
}

/// What a packet wants to do at a router, before port availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Desire {
    /// Travel east (`dx > 0`).
    East {
        /// Boarding/continuing the express lane is warranted here.
        express: bool,
    },
    /// Travel south (`dx == 0`, `dy > 0`).
    South {
        /// Boarding/continuing the express lane is warranted here.
        express: bool,
    },
    /// Arrived (`dx == 0 && dy == 0`): deliver to the PE.
    Exit,
}

/// Computes the DOR desire of a packet at `at` heading for `dst`.
///
/// The express flag is the *topology-level* answer (is this router
/// express-capable in that dimension, and is the remaining distance
/// express-reachable in no more cycles than short hops). Whether the
/// particular input port may actually reach the express output is the
/// connectivity matrix's concern.
pub fn desire(cfg: &NocConfig, at: Coord, dst: Coord) -> Desire {
    let n = cfg.n();
    let dx = at.dx_to(dst, n);
    let dy = at.dy_to(dst, n);
    if dx > 0 {
        Desire::East {
            express: cfg.has_express_at(at.x) && cfg.express_worthwhile(dx),
        }
    } else if dy > 0 {
        Desire::South {
            express: cfg.has_express_at(at.y) && cfg.express_worthwhile(dy),
        }
    } else {
        Desire::Exit
    }
}

/// Injection-time whole-path express eligibility for the FTlite (Inject)
/// policy: a packet may board the express lane at the PE only if its
/// entire journey — the X leg, the turn, and the Y leg — stays on express
/// links until delivery (paper §IV-B).
pub fn inject_express_eligible(cfg: &NocConfig, at: Coord, dst: Coord) -> bool {
    let n = cfg.n();
    let dx = at.dx_to(dst, n);
    let dy = at.dy_to(dst, n);
    if dx > 0 {
        // X leg from column at.x, then (if needed) Y leg from row at.y;
        // the turn router (dst.x, at.y) has a South express output iff
        // at.y is an express-capable row position.
        cfg.has_express_at(at.x)
            && cfg.express_worthwhile(dx)
            && (dy == 0 || (cfg.has_express_at(at.y) && cfg.express_worthwhile(dy)))
    } else if dy > 0 {
        cfg.has_express_at(at.y) && cfg.express_worthwhile(dy)
    } else {
        false
    }
}

/// Builds the ordered preference list for a packet arriving on `in_port`
/// at router `at`, heading for `dst`.
///
/// The result is never empty as long as `in_port` exists at the router's
/// class (every existing input reaches at least `Exit` plus one lane).
pub fn compute_prefs(
    cfg: &NocConfig,
    class: RouterClass,
    in_port: InPort,
    at: Coord,
    dst: Coord,
) -> RoutePrefs {
    let allowed = allowed_outputs(cfg.ft_policy(), class, in_port);
    debug_assert!(
        !allowed.is_empty(),
        "input {in_port} does not exist at {at}"
    );

    let mut prefs = RoutePrefs {
        list: [OutPort::Exit; 5],
        len: 0,
        productive: OutSet::empty(),
        wanted_express: false,
    };

    let n = cfg.n();
    let dx = at.dx_to(dst, n);
    let dy = at.dy_to(dst, n);
    let des = desire(cfg, at, dst);

    // Primary (productive) choices.
    match des {
        Desire::Exit => {
            prefs.productive.insert(OutPort::Exit);
            prefs.push(OutPort::Exit);
        }
        Desire::East { express } => {
            // Escape turn: an express-lane packet whose remaining dx is
            // not express-reachable must leave the lane *now* via the
            // W_ex -> S_sh turn, even at the cost of a misroute south —
            // otherwise it orbits the express ring forever. (Such packets
            // only exist after a last-resort misaligned deflection below.)
            if in_port == InPort::WestEx
                && !cfg.express_aligned(dx)
                && allowed.contains(OutPort::SouthSh)
            {
                prefs.push(OutPort::SouthSh);
            }
            let want_ex = express_choice_for_port(cfg, in_port, at, dst, express);
            if want_ex && allowed.contains(OutPort::EastEx) {
                prefs.wanted_express = true;
                prefs.productive.insert(OutPort::EastEx);
                prefs.push(OutPort::EastEx);
            }
            if allowed.contains(OutPort::EastSh) {
                prefs.productive.insert(OutPort::EastSh);
                prefs.push(OutPort::EastSh);
            }
            // A continuing express packet that is not allowed E_sh (lane
            // isolation) has only E_ex as a productive port; still mark it.
            if prefs.len == 0 && allowed.contains(OutPort::EastEx) {
                prefs.productive.insert(OutPort::EastEx);
                prefs.push(OutPort::EastEx);
            }
        }
        Desire::South { express } => {
            // Escape turn for misaligned Y-express packets: N_ex -> E_sh.
            if in_port == InPort::NorthEx
                && !cfg.express_aligned(dy)
                && allowed.contains(OutPort::EastSh)
            {
                prefs.push(OutPort::EastSh);
            }
            let want_ex = express_choice_for_port(cfg, in_port, at, dst, express);
            if want_ex && allowed.contains(OutPort::SouthEx) {
                prefs.wanted_express = true;
                prefs.productive.insert(OutPort::SouthEx);
                prefs.push(OutPort::SouthEx);
            }
            if allowed.contains(OutPort::SouthSh) {
                prefs.productive.insert(OutPort::SouthSh);
                prefs.push(OutPort::SouthSh);
            }
            if prefs.len == 0 && allowed.contains(OutPort::SouthEx) {
                prefs.productive.insert(OutPort::SouthEx);
                prefs.push(OutPort::SouthEx);
            }
        }
    }

    // The PE never injects onto a deflecting path: it stalls instead
    // (paper: the client port has the lowest priority and waits).
    if in_port == InPort::Pe {
        return prefs;
    }

    // Deflection fallbacks: east lanes before south lanes (X-ring
    // priority; deflecting east preserves Y progress), same lane as the
    // input first so express traffic circulates on express rings.
    //
    // Pass 1 admits an express port only when the packet's remaining
    // offset in that dimension stays express-reachable (offset mod
    // gcd(D, N) is invariant under express hops). Pass 2 then admits the
    // remaining physically-connected ports as true last resorts — a
    // misaligned express deflection is survivable because the escape
    // turns above get such packets off the lane on the next hop.
    let deflect_order: [OutPort; 4] = if in_port.is_express() {
        [
            OutPort::EastEx,
            OutPort::EastSh,
            OutPort::SouthEx,
            OutPort::SouthSh,
        ]
    } else {
        [
            OutPort::EastSh,
            OutPort::EastEx,
            OutPort::SouthSh,
            OutPort::SouthEx,
        ]
    };
    for p in deflect_order {
        let alignment_ok = match p {
            OutPort::EastEx => cfg.express_aligned(dx),
            OutPort::SouthEx => cfg.express_aligned(dy),
            _ => true,
        };
        if alignment_ok && allowed.contains(p) {
            prefs.push(p);
        }
    }
    for p in deflect_order {
        if allowed.contains(p) {
            prefs.push(p);
        }
    }

    debug_assert!(
        prefs.len > 0,
        "empty prefs: {} class {class:?} port {in_port} at {at} dst {dst}",
        cfg.name()
    );
    prefs
}

/// Fallback-chain demotion ([`crate::fallback`]): re-routes a
/// lane-locked express packet as if it had arrived on the *shared twin*
/// of its input (`W_ex → W_sh`, `N_ex → N_sh`), dropping it onto the
/// shared deflection ring. Shared-ring links can never be fault-masked
/// ([`crate::fault::FaultError::PartitionsTorus`] rejects such plans),
/// so a demoted packet always has a live escape path. Under the Inject
/// policy — the only one whose crossbar strands express packets — the
/// shared twin's connectivity is shared-only, so the result never
/// references an express port.
pub fn demote_prefs(
    cfg: &NocConfig,
    class: RouterClass,
    in_port: InPort,
    at: Coord,
    dst: Coord,
) -> RoutePrefs {
    let twin = match in_port {
        InPort::WestEx => InPort::WestSh,
        InPort::NorthEx => InPort::NorthSh,
        other => other,
    };
    compute_prefs(cfg, class, twin, at, dst)
}

/// Whether this particular input should *try* the express lane: the
/// topology-level desire, specialized per lane-change policy. Under the
/// Inject policy a short-lane packet never boards express mid-flight, and
/// a PE packet boards only when the whole path is express-reachable.
fn express_choice_for_port(
    cfg: &NocConfig,
    in_port: InPort,
    at: Coord,
    dst: Coord,
    topology_express: bool,
) -> bool {
    match cfg.ft_policy() {
        None => false,
        // Under Full, express alignment is an invariant of every packet on
        // an express input (boarding requires it and every legal move
        // preserves it), so the topology-level desire is the whole answer.
        Some(FtPolicy::Full) => topology_express,
        Some(FtPolicy::Inject) => match in_port {
            // Express packets stay express; connectivity enforces it, the
            // preference merely agrees.
            InPort::WestEx | InPort::NorthEx => true,
            InPort::WestSh | InPort::NorthSh => false,
            InPort::Pe => inject_express_eligible(cfg, at, dst),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;

    fn ft_full(n: u16, d: u16, r: u16) -> NocConfig {
        NocConfig::fasttrack(n, d, r, FtPolicy::Full).unwrap()
    }

    #[test]
    fn desire_follows_dor() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let at = Coord::new(1, 1);
        assert_eq!(
            desire(&cfg, at, Coord::new(5, 4)),
            Desire::East { express: false }
        );
        assert_eq!(
            desire(&cfg, at, Coord::new(1, 4)),
            Desire::South { express: false }
        );
        assert_eq!(desire(&cfg, at, at), Desire::Exit);
    }

    #[test]
    fn desire_express_when_aligned() {
        let cfg = ft_full(8, 2, 1);
        let at = Coord::new(0, 0);
        assert_eq!(
            desire(&cfg, at, Coord::new(4, 0)),
            Desire::East { express: true }
        );
        assert_eq!(
            desire(&cfg, at, Coord::new(3, 0)),
            Desire::East { express: false } // odd offset unreachable with D=2
        );
        assert_eq!(
            desire(&cfg, at, Coord::new(0, 6)),
            Desire::South { express: true }
        );
    }

    #[test]
    fn desire_respects_depopulation() {
        let cfg = NocConfig::fasttrack(8, 2, 2, FtPolicy::Full).unwrap();
        // Router at odd x has no X express ports.
        assert_eq!(
            desire(&cfg, Coord::new(1, 0), Coord::new(5, 0)),
            Desire::East { express: false }
        );
        assert_eq!(
            desire(&cfg, Coord::new(2, 0), Coord::new(6, 0)),
            Desire::East { express: true }
        );
    }

    #[test]
    fn hoplite_prefs_basic() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let class = RouterClass::HOPLITE;
        let at = Coord::new(0, 0);
        // Eastbound W packet: E_sh then deflect S_sh.
        let p = compute_prefs(&cfg, class, InPort::WestSh, at, Coord::new(4, 4));
        assert_eq!(p.primary(), OutPort::EastSh);
        assert_eq!(p.ports(), &[OutPort::EastSh, OutPort::SouthSh]);
        // Southbound N packet: S_sh then deflect E_sh (the Hoplite rule).
        let p = compute_prefs(&cfg, class, InPort::NorthSh, at, Coord::new(0, 4));
        assert_eq!(p.ports(), &[OutPort::SouthSh, OutPort::EastSh]);
        // At destination: exit, else loop around.
        let p = compute_prefs(&cfg, class, InPort::WestSh, at, at);
        assert_eq!(p.primary(), OutPort::Exit);
        assert!(p.productive().contains(OutPort::Exit));
    }

    #[test]
    fn pe_prefs_never_deflect() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let p = compute_prefs(
            &cfg,
            RouterClass::HOPLITE,
            InPort::Pe,
            Coord::new(0, 0),
            Coord::new(3, 0),
        );
        assert_eq!(p.ports(), &[OutPort::EastSh]); // no southward injection
    }

    #[test]
    fn ft_full_east_express_preference() {
        let cfg = ft_full(8, 2, 1);
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::WestSh,
            Coord::new(0, 0),
            Coord::new(4, 0),
        );
        assert_eq!(p.primary(), OutPort::EastEx); // upgrade preferred
        assert!(p.wanted_express());
        assert!(p.productive().contains(OutPort::EastSh));
        // Misaligned offset: short lane first, express only as deflection.
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::WestSh,
            Coord::new(0, 0),
            Coord::new(3, 0),
        );
        assert_eq!(p.primary(), OutPort::EastSh);
        assert!(!p.wanted_express());
        assert!(!p.productive().contains(OutPort::EastEx));
    }

    #[test]
    fn ft_full_express_turn() {
        let cfg = ft_full(8, 2, 1);
        // W_ex packet at its destination column turning south, dy = 4:
        // express-aligned dy keeps it on the express lane (S_ex), with
        // the S_sh livelock turn as fallback.
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::WestEx,
            Coord::new(5, 0),
            Coord::new(5, 4),
        );
        assert_eq!(p.primary(), OutPort::SouthEx);
        assert!(p.ports().contains(&OutPort::SouthSh));
        // Misaligned dy = 3: must leave express via the W_ex -> S_sh turn.
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::WestEx,
            Coord::new(5, 0),
            Coord::new(5, 3),
        );
        assert_eq!(p.primary(), OutPort::SouthSh);
    }

    #[test]
    fn ft_full_continuing_express_prefers_express() {
        let cfg = ft_full(8, 2, 1);
        // W_ex packet with dx = 2 (one more express hop).
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::WestEx,
            Coord::new(0, 0),
            Coord::new(2, 5),
        );
        assert_eq!(p.primary(), OutPort::EastEx);
        // E_sh must not appear anywhere: W_ex -> E_sh is forbidden.
        assert!(!p.ports().contains(&OutPort::EastSh));
    }

    #[test]
    fn inject_policy_short_packets_stay_short() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Inject).unwrap();
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::WestSh,
            Coord::new(0, 0),
            Coord::new(4, 0),
        );
        assert_eq!(p.primary(), OutPort::EastSh);
        assert!(!p.ports().contains(&OutPort::EastEx));
    }

    #[test]
    fn inject_eligibility_whole_path() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Inject).unwrap();
        let at = Coord::new(0, 0);
        assert!(inject_express_eligible(&cfg, at, Coord::new(4, 0))); // X only
        assert!(inject_express_eligible(&cfg, at, Coord::new(4, 6))); // X then Y
        assert!(inject_express_eligible(&cfg, at, Coord::new(0, 2))); // Y only
        assert!(!inject_express_eligible(&cfg, at, Coord::new(3, 0))); // odd dx
        assert!(!inject_express_eligible(&cfg, at, Coord::new(4, 3))); // odd dy
        assert!(!inject_express_eligible(&cfg, at, at)); // self
    }

    #[test]
    fn inject_eligibility_depopulated_rows() {
        let cfg = NocConfig::fasttrack(8, 2, 2, FtPolicy::Inject).unwrap();
        // From an express-capable column but a non-express row: the turn
        // router would lack an S_ex output, so an X+Y path is ineligible.
        assert!(!inject_express_eligible(
            &cfg,
            Coord::new(0, 1),
            Coord::new(4, 5)
        ));
        assert!(inject_express_eligible(
            &cfg,
            Coord::new(0, 0),
            Coord::new(4, 4)
        ));
        // Pure X path from a non-express-capable column: ineligible.
        assert!(!inject_express_eligible(
            &cfg,
            Coord::new(1, 0),
            Coord::new(5, 0)
        ));
    }

    #[test]
    fn pe_inject_policy_prefs() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Inject).unwrap();
        // Eligible whole-path: express first, short fallback.
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::Pe,
            Coord::new(0, 0),
            Coord::new(4, 4),
        );
        assert_eq!(p.ports(), &[OutPort::EastEx, OutPort::EastSh]);
        // Ineligible: short lane only.
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::Pe,
            Coord::new(0, 0),
            Coord::new(3, 4),
        );
        assert_eq!(p.ports(), &[OutPort::EastSh]);
    }

    #[test]
    fn deflection_order_prefers_east_and_same_lane() {
        let cfg = ft_full(8, 2, 1);
        // N_ex turning east at its destination row (dy == 0, dx > 0,
        // misaligned): primary E_sh (the livelock turn), deflections keep
        // it on express lanes first.
        let p = compute_prefs(
            &cfg,
            RouterClass::FULL,
            InPort::NorthEx,
            Coord::new(0, 3),
            Coord::new(3, 3),
        );
        assert_eq!(p.primary(), OutPort::EastSh);
        let rest: Vec<_> = p.ports()[1..].to_vec();
        // dx=3 is misaligned for D=2, so the aligned S_ex deflection
        // (dy=0) is preferred and the misaligned E_ex is a last resort.
        assert_eq!(rest, vec![OutPort::SouthEx, OutPort::EastEx]);
        // N_ex -> S_sh is forbidden by connectivity.
        assert!(!p.ports().contains(&OutPort::SouthSh));
    }

    #[test]
    fn prefs_never_empty_for_existing_inputs() {
        for cfg in [
            NocConfig::hoplite(4).unwrap(),
            ft_full(8, 2, 1),
            NocConfig::fasttrack(8, 2, 2, FtPolicy::Full).unwrap(),
            NocConfig::fasttrack(8, 4, 2, FtPolicy::Inject).unwrap(),
        ] {
            let n = cfg.n();
            for x in 0..n {
                for y in 0..n {
                    let at = Coord::new(x, y);
                    let class = RouterClass::of(&cfg, at);
                    for port in InPort::ALL {
                        if !class.has_input(port)
                            || (cfg.ft_policy().is_none() && port.is_express())
                        {
                            continue;
                        }
                        for dx in 0..n {
                            for dy in 0..n {
                                let dst = Coord::new(dx, dy);
                                let p = compute_prefs(&cfg, class, port, at, dst);
                                assert!(
                                    !p.ports().is_empty(),
                                    "empty prefs: {} at {at} port {port} dst {dst}",
                                    cfg.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
