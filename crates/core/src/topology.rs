//! Pluggable topologies: the engine-facing abstraction that lets the
//! session layer, fault planner, fallback validator, and health monitor
//! work against *any* network shape instead of a hard-coded torus.
//!
//! A [`Topology`] enumerates nodes and links, tags every link with a
//! [`WireClass`], builds a flat routing table ([`TopoRouteLut`]), prices
//! itself with a first-order FPGA resource model ([`ResourceCost`]), and
//! answers fault-validation questions such as *does removing this link
//! partition the graph?* ([`Topology::connected_without`]). The torus
//! family implements it via [`TorusTopology`]; the first non-torus
//! backend is the Sparse Hamming Graph ([`ShgTopology`], after Iff et
//! al., "Sparse Hamming Graph: A Customizable Network-on-Chip
//! Topology", arXiv 2211.13980).
//!
//! [`TopologySpec`] is the uniform textual surface (`hoplite:8`,
//! `ft:8:2:1`, `shg:8:2`, `mesh:4:4`) shared by the CLI, scenario-trace
//! headers, and sweep grids.
//!
//! ```
//! use fasttrack_core::topology::{Topology, TopologySpec, TorusTopology};
//! use fasttrack_core::config::NocConfig;
//!
//! let topo = TorusTopology::new(NocConfig::hoplite(4).unwrap());
//! assert_eq!(topo.num_nodes(), 16);
//! // Every node of the plain torus has exactly two outgoing links.
//! assert!((0..16).all(|v| topo.out_links(v).len() == 2));
//! // The spec grammar round-trips.
//! let spec: TopologySpec = "shg:8:2".parse().unwrap();
//! assert_eq!(spec.to_string(), "shg:8:2");
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use crate::config::{ConfigError, FtPolicy, NocConfig, NocKind};
use crate::fallback::{FallbackConfig, FallbackError};
use crate::fault::{Fault, FaultError, FaultPlan, StormSpec};
use crate::geom::Coord;
use crate::port::OutPort;
use crate::router::RouterClass;
use crate::sweep::splitmix64;

/// Flat link identifier: `node * links_per_node + class_slot`, the key
/// the health monitor's hotspot EWMA tables are sized and indexed by
/// (replacing the old `(x, y, direction)` torus-coordinate keying).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// The FPGA wire class a link is mapped onto — the paper's core
/// distinction between plentiful short wires and scarce long wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireClass {
    /// A single-hop link on ordinary routing fabric.
    Short,
    /// A multi-hop link on long/express wires (covers `span` router
    /// positions in one cycle).
    Express,
}

/// One directed link of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDesc {
    /// Node the link leaves from.
    pub src: usize,
    /// Node the link arrives at.
    pub dst: usize,
    /// Output slot at `src` (dense, `0..out_degree`).
    pub slot: usize,
    /// The port class the engine uses for this slot in events, faults,
    /// and statistics.
    pub port: OutPort,
    /// Wire class of the link.
    pub class: WireClass,
    /// Router positions covered in one cycle (1 for short links).
    pub span: u16,
}

/// Topology-derived sizing for a [`crate::monitor::HealthMonitor`] —
/// the replacement for the old `SessionBackend::monitor_n() -> u16`
/// torus side length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorShape {
    /// Total nodes in the fabric.
    pub nodes: usize,
    /// Monitored link classes per node (the hotspot EWMA table is
    /// `nodes * links_per_node` [`LinkId`] entries wide). All current
    /// topologies report their links through the four non-`Exit`
    /// [`OutPort`] classes, so this is at most [`OutPort::ALL`]` - 1`.
    pub links_per_node: usize,
    /// Grid side length when the topology is a square grid — used by
    /// the livelock detector's dimension-ordered distance reference.
    /// `None` disables the DOR-distance multiple and falls back to the
    /// absolute hop floor.
    pub grid_side: Option<u16>,
    /// Parallel channels multiplexed over the monitored links.
    pub channels: usize,
}

impl MonitorShape {
    /// The shape of an `n × n` single-channel torus (or any square grid
    /// monitored at [`OutPort`]-class granularity).
    pub fn torus(n: u16) -> Self {
        MonitorShape {
            nodes: usize::from(n) * usize::from(n),
            links_per_node: 4,
            grid_side: Some(n),
            channels: 1,
        }
    }

    /// The same shape with `channels` parallel channels (normalized to
    /// at least 1).
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels.max(1);
        self
    }

    /// The flat monitor key for `(node, class_slot)`.
    pub fn link_id(&self, node: usize, slot: usize) -> LinkId {
        debug_assert!(node < self.nodes && slot < self.links_per_node);
        LinkId((node * self.links_per_node + slot) as u32)
    }

    /// Total monitored link keys.
    pub fn num_links(&self) -> usize {
        self.nodes * self.links_per_node
    }
}

/// First-order FPGA resource price of a topology: enough to hold
/// iso-resource comparisons (`fasttrack compare`) to a consistent,
/// deterministic standard without reaching into the device-specific
/// cost models of `fasttrack-fpga`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceCost {
    /// Estimated 6-input LUTs.
    pub luts: u64,
    /// Estimated flip-flops.
    pub ffs: u64,
}

impl ResourceCost {
    /// Combined LUT + FF count, the single figure iso-resource matching
    /// compares.
    pub fn total(&self) -> u64 {
        self.luts + self.ffs
    }
}

impl fmt::Display for ResourceCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} LUTs + {} FFs", self.luts, self.ffs)
    }
}

/// Datapath width the default resource model prices (bits per flit).
pub const DATAPATH_BITS: u64 = 64;

/// A flat next-slot routing table: `slot[at * nodes + dst]` is the
/// preferred productive output slot at `at` for a packet headed to
/// `dst` (`SELF_SLOT` on the diagonal). The table is a plain `Vec<u8>`
/// read — the same hot-path shape as the torus `RouteLut` — so trait
/// indirection never reaches the per-cycle loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoRouteLut {
    nodes: usize,
    slots: Vec<u8>,
}

/// Diagonal marker in [`TopoRouteLut`]: the packet is already home.
const SELF_SLOT: u8 = u8::MAX;

impl TopoRouteLut {
    /// Builds the table by asking `topo` for every `(at, dst)` pair.
    pub fn build(topo: &dyn Topology) -> TopoRouteLut {
        let nodes = topo.num_nodes();
        let mut slots = vec![SELF_SLOT; nodes * nodes];
        for at in 0..nodes {
            for dst in 0..nodes {
                if at != dst {
                    let slot = topo.route_slot(at, dst);
                    debug_assert!(slot < SELF_SLOT as usize);
                    slots[at * nodes + dst] = slot as u8;
                }
            }
        }
        TopoRouteLut { nodes, slots }
    }

    /// Nodes the table covers.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Preferred slot at `at` for destination `dst`; `None` when
    /// `at == dst`.
    #[inline]
    pub fn slot(&self, at: usize, dst: usize) -> Option<usize> {
        match self.slots[at * self.nodes + dst] {
            SELF_SLOT => None,
            s => Some(s as usize),
        }
    }
}

/// A pluggable network topology: everything the session layer, fault
/// planner, fallback validator, and health monitor need to know about
/// a fabric, with no torus assumptions.
///
/// # Contract
///
/// Implementations must uphold (DESIGN.md §16):
///
/// 1. **Dense ids** — nodes are `0..num_nodes()`; output slots at each
///    node are dense `0..out_links(node).len()` and `LinkDesc::slot`
///    matches the position's slot number.
/// 2. **Strong connectivity** — with no faults, every node reaches
///    every other ([`Topology::connected_without`] of `&[]` is true).
/// 3. **Productive routing** — [`Topology::route_slot`] must return a
///    slot of an existing link that strictly decreases some distance
///    measure to `dst`, so that following the LUT alone (no
///    deflections) terminates.
/// 4. **Stable enumeration** — link order is deterministic; seeded
///    fault draws ([`FaultPlan::storm_topo`]) depend on it.
///
/// ```
/// use fasttrack_core::topology::{ShgConfig, ShgTopology, Topology, TopoRouteLut};
///
/// let topo = ShgTopology::new(ShgConfig::new(8, 2).unwrap());
/// let lut = TopoRouteLut::build(&topo);
/// // Walk the LUT from node 0 to node 60: it must arrive.
/// let (mut at, dst) = (0, 60);
/// for _ in 0..64 {
///     if at == dst { break; }
///     let slot = lut.slot(at, dst).unwrap();
///     at = topo.out_links(at)[slot].dst;
/// }
/// assert_eq!(at, dst);
/// ```
pub trait Topology {
    /// Human-readable name (e.g. `FT(64,2,1)`, `SHG(64,2)`).
    fn name(&self) -> String;

    /// The parseable spec this topology round-trips through.
    fn spec(&self) -> TopologySpec;

    /// Total nodes.
    fn num_nodes(&self) -> usize;

    /// Monitor sizing derived from the structure.
    fn monitor_shape(&self) -> MonitorShape;

    /// The directed links leaving `node`, in slot order.
    fn out_links(&self, node: usize) -> Vec<LinkDesc>;

    /// The preferred productive output slot at `at` for a packet headed
    /// to `dst`. Must not be called with `at == dst`.
    fn route_slot(&self, at: usize, dst: usize) -> usize;

    /// Every link of the topology, in `(node, slot)` order.
    fn links(&self) -> Vec<LinkDesc> {
        (0..self.num_nodes())
            .flat_map(|v| self.out_links(v))
            .collect()
    }

    /// Downstream neighbors of `node`, in slot order.
    fn neighbors(&self, node: usize) -> Vec<usize> {
        self.out_links(node).iter().map(|l| l.dst).collect()
    }

    /// Builds the flat route table (see [`TopoRouteLut`]).
    fn build_route_lut(&self) -> TopoRouteLut
    where
        Self: Sized,
    {
        TopoRouteLut::build(self)
    }

    /// The wire class of `(node, slot)`, or `None` if the slot does not
    /// exist there.
    fn wire_class(&self, node: usize, slot: usize) -> Option<WireClass> {
        self.out_links(node).get(slot).map(|l| l.class)
    }

    /// First-order FPGA price: every output is a cascade of 2:1
    /// [`DATAPATH_BITS`]-wide muxes over the link inputs plus the PE
    /// injector, each link input lands in a datapath register, and a
    /// small per-port control allowance covers allocation logic. The
    /// absolute numbers are coarse; their *ratios* across topologies are
    /// what iso-resource matching consumes.
    fn resource_cost(&self) -> ResourceCost {
        let nodes = self.num_nodes();
        let mut in_degree = vec![0u64; nodes];
        let mut out_degree = vec![0u64; nodes];
        for link in self.links() {
            in_degree[link.dst] += 1;
            out_degree[link.src] += 1;
        }
        let mut cost = ResourceCost::default();
        for v in 0..nodes {
            let fanin = in_degree[v] + 1; // links + PE injector
            let outputs = out_degree[v] + 1; // links + Exit
                                             // (fanin - 1) two-input mux stages per output, 2 bits/LUT.
            cost.luts += outputs * (fanin - 1) * (DATAPATH_BITS / 2);
            cost.luts += 8 * outputs; // allocation / control
            cost.ffs += DATAPATH_BITS * in_degree[v] + 16;
        }
        cost
    }

    /// True when the directed graph stays strongly connected after
    /// removing every link whose `(src, port)` pair appears in `dead` —
    /// the "does removing this link partition the graph?" hook the
    /// fault validator asks before admitting a dead-link fault.
    fn connected_without(&self, dead: &[(usize, OutPort)]) -> bool {
        let nodes = self.num_nodes();
        if nodes == 0 {
            return true;
        }
        let mut fwd = vec![Vec::new(); nodes];
        let mut rev = vec![Vec::new(); nodes];
        for link in self.links() {
            if !dead.contains(&(link.src, link.port)) {
                fwd[link.src].push(link.dst);
                rev[link.dst].push(link.src);
            }
        }
        let reaches_all = |adj: &[Vec<usize>]| {
            let mut seen = vec![false; nodes];
            let mut queue = VecDeque::from([0usize]);
            seen[0] = true;
            let mut count = 1;
            while let Some(v) = queue.pop_front() {
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        count += 1;
                        queue.push_back(w);
                    }
                }
            }
            count == nodes
        };
        reaches_all(&fwd) && reaches_all(&rev)
    }

    /// The output slots at `node` that a fault on port class `out`
    /// masks (empty when no such link exists there). One port class may
    /// cover several physical links — on the SHG, `EastEx` masks every
    /// express stride of the X dimension at once.
    fn fault_slots(&self, node: usize, out: OutPort) -> Vec<usize> {
        self.out_links(node)
            .iter()
            .filter(|l| l.port == out)
            .map(|l| l.slot)
            .collect()
    }

    /// Every express-class link as `(node, port)` pairs in enumeration
    /// order — the pool seeded fault storms draw from.
    fn express_ports(&self) -> Vec<(usize, OutPort)> {
        let mut pool = Vec::new();
        for node in 0..self.num_nodes() {
            let mut seen = [false; 5];
            for link in self.out_links(node) {
                if link.class == WireClass::Express && !seen[link.port.index()] {
                    seen[link.port.index()] = true;
                    pool.push((node, link.port));
                }
            }
        }
        pool
    }

    /// Validates one fault against this topology. The default checks
    /// node bounds, window shapes, link existence, and — for permanent
    /// and windowed dead links — that the surviving graph stays
    /// strongly connected (via [`Topology::connected_without`]).
    /// Implementations with stricter structural rules (the torus
    /// shared-ring escape path) override this.
    fn validate_fault(&self, fault: &Fault) -> Result<(), FaultError> {
        let nodes = self.num_nodes();
        let node = fault.node();
        if node >= nodes {
            return Err(FaultError::BadNode { node, nodes });
        }
        let check_link = |out: OutPort, partition_check: bool| {
            if out == OutPort::Exit {
                return Err(FaultError::NotALink { node });
            }
            if self.fault_slots(node, out).is_empty() {
                return Err(FaultError::NoExpressLink { node, out });
            }
            if partition_check && !self.connected_without(&[(node, out)]) {
                return Err(FaultError::PartitionsTorus { node, out });
            }
            Ok(())
        };
        let check_window = |from: u64, until: u64| {
            if from >= until {
                Err(FaultError::EmptyWindow { from, until })
            } else {
                Ok(())
            }
        };
        match *fault {
            Fault::DeadLink { out, .. } => check_link(out, true),
            Fault::DownLink {
                out, from, until, ..
            } => {
                check_window(from, until)?;
                check_link(out, true)
            }
            Fault::TransientLink {
                out, from, until, ..
            } => {
                check_window(from, until)?;
                check_link(out, false)
            }
            Fault::FailStopRouter { .. } => Ok(()),
            Fault::StalledInjector { from, until, .. } => check_window(from, until),
        }
    }

    /// Validates a fallback configuration against this topology. The
    /// default accepts only the empty (inert) configuration: fallback
    /// chains are defined over the torus express/shared lane pairing,
    /// and topologies without that structure must refuse them rather
    /// than silently ignore them.
    fn validate_fallback(&self, fallback: &FallbackConfig) -> Result<(), FallbackError> {
        if fallback.is_empty() {
            Ok(())
        } else {
            Err(FallbackError::UnsupportedTopology)
        }
    }
}

impl FaultPlan {
    /// Checks the plan against an arbitrary topology, fault by fault,
    /// through [`Topology::validate_fault`]. For a [`TorusTopology`]
    /// this agrees exactly with [`FaultPlan::validate`].
    pub fn validate_topo(&self, topo: &dyn Topology) -> Result<(), FaultError> {
        for fault in self.faults() {
            topo.validate_fault(fault)?;
        }
        Ok(())
    }

    /// Draws a fault storm for an arbitrary topology: express-class
    /// links die at `spec.kills_per_kcycle` and heal after a delay from
    /// `spec.heal_after`, exactly like [`FaultPlan::storm`] but with
    /// the link pool supplied by [`Topology::express_ports`]. For a
    /// [`TorusTopology`] the same `(seed, spec)` reproduces
    /// [`FaultPlan::storm`] bit-for-bit.
    pub fn storm_topo(topo: &dyn Topology, seed: u64, spec: &StormSpec) -> FaultPlan {
        let mut state = seed;
        let mut next = move || {
            let out = splitmix64(state);
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            out
        };
        let mut plan = FaultPlan::new();
        let express = topo.express_ports();
        if express.is_empty() || spec.duration == 0 {
            return plan;
        }
        let (h0, h1) = spec.heal_after;
        let (h0, h1) = (h0.max(1), h1.max(h0.max(1) + 1));
        for _ in 0..spec.kill_events() {
            let (node, out) = express[(next() % express.len() as u64) as usize];
            let from = next() % spec.duration;
            let until = from + h0 + next() % (h1 - h0);
            plan.push(Fault::DownLink {
                node,
                out,
                from,
                until,
            });
        }
        debug_assert!(plan.validate_topo(topo).is_ok());
        plan
    }
}

/// The torus family — Hoplite and FastTrack — expressed as a
/// [`Topology`]. Link enumeration and fault validation delegate to the
/// same [`RouterClass`] geometry the engines use, so the trait view and
/// the engine agree on which links exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TorusTopology {
    cfg: NocConfig,
}

impl TorusTopology {
    /// Wraps a torus configuration.
    pub fn new(cfg: NocConfig) -> Self {
        TorusTopology { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }
}

impl Topology for TorusTopology {
    fn name(&self) -> String {
        self.cfg.name()
    }

    fn spec(&self) -> TopologySpec {
        TopologySpec::Torus(self.cfg.clone())
    }

    fn num_nodes(&self) -> usize {
        self.cfg.num_nodes()
    }

    fn monitor_shape(&self) -> MonitorShape {
        MonitorShape::torus(self.cfg.n())
    }

    fn out_links(&self, node: usize) -> Vec<LinkDesc> {
        let n = self.cfg.n();
        let d = self.cfg.d().max(1);
        let at = Coord::from_node_id(node, n);
        let outs = RouterClass::of(&self.cfg, at).available_outputs();
        let mut links = Vec::with_capacity(4);
        for port in [
            OutPort::EastEx,
            OutPort::EastSh,
            OutPort::SouthEx,
            OutPort::SouthSh,
        ] {
            if !outs.contains(port) {
                continue;
            }
            let span = if port.is_express() { d } else { 1 };
            let dst = if port.is_east() {
                at.east(span, n)
            } else {
                at.south(span, n)
            };
            links.push(LinkDesc {
                src: node,
                dst: dst.to_node_id(n),
                slot: links.len(),
                port,
                class: if port.is_express() {
                    WireClass::Express
                } else {
                    WireClass::Short
                },
                span,
            });
        }
        links
    }

    fn route_slot(&self, at: usize, dst: usize) -> usize {
        let n = self.cfg.n();
        let (a, b) = (Coord::from_node_id(at, n), Coord::from_node_id(dst, n));
        let links = self.out_links(at);
        let pick = |port: OutPort, fallback: OutPort| {
            links
                .iter()
                .find(|l| l.port == port)
                .or_else(|| links.iter().find(|l| l.port == fallback))
                .map(|l| l.slot)
                .expect("shared ring link always exists")
        };
        let dx = a.dx_to(b, n);
        if dx > 0 {
            // X first (DOR); express only when the whole span fits.
            if dx >= self.cfg.d().max(1) {
                pick(OutPort::EastEx, OutPort::EastSh)
            } else {
                pick(OutPort::EastSh, OutPort::EastSh)
            }
        } else if a.dy_to(b, n) >= self.cfg.d().max(1) {
            pick(OutPort::SouthEx, OutPort::SouthSh)
        } else {
            pick(OutPort::SouthSh, OutPort::SouthSh)
        }
    }

    fn validate_fault(&self, fault: &Fault) -> Result<(), FaultError> {
        // Exact parity with the torus-native path: the shared ring is
        // the deflection escape hatch, so Sh-class dead links are
        // structurally rejected rather than connectivity-checked.
        FaultPlan::new().with(*fault).validate(&self.cfg)
    }

    fn validate_fallback(&self, fallback: &FallbackConfig) -> Result<(), FallbackError> {
        fallback.validate()
    }
}

/// Why a Sparse Hamming Graph configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShgConfigError {
    /// The per-dimension side must be at least 2.
    SideTooSmall {
        /// The offending side length.
        q: u16,
    },
    /// At least one stride per dimension is required.
    DegreeTooSmall,
    /// The longest stride `2^(delta-1)` must stay below the side, or
    /// the topmost links would wrap onto shorter ones.
    StrideTooLong {
        /// Side length.
        q: u16,
        /// Strides per dimension.
        delta: u16,
    },
}

impl fmt::Display for ShgConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ShgConfigError::SideTooSmall { q } => {
                write!(f, "SHG side {q} too small (need q >= 2)")
            }
            ShgConfigError::DegreeTooSmall => {
                f.write_str("SHG needs at least 1 stride (delta >= 1)")
            }
            ShgConfigError::StrideTooLong { q, delta } => write!(
                f,
                "SHG stride 2^{} wraps a side of {q} (need 2^(delta-1) < q)",
                delta - 1
            ),
        }
    }
}

impl std::error::Error for ShgConfigError {}

/// A Sparse Hamming Graph configuration: a `q × q` grid where each
/// dimension carries `delta` unidirectional power-of-two strides
/// `{1, 2, 4, ...}` (Iff et al., arXiv 2211.13980, with the stride set
/// specialized to powers of two so the deflection LUT is a greedy
/// radix decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShgConfig {
    q: u16,
    delta: u16,
}

impl ShgConfig {
    /// Validates and builds a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ShgConfigError`] when `q < 2`, `delta < 1`, or the
    /// longest stride `2^(delta-1)` would wrap the side.
    pub fn new(q: u16, delta: u16) -> Result<Self, ShgConfigError> {
        if q < 2 {
            return Err(ShgConfigError::SideTooSmall { q });
        }
        if delta < 1 {
            return Err(ShgConfigError::DegreeTooSmall);
        }
        if delta > 15 || (1u32 << (delta - 1)) >= u32::from(q) {
            return Err(ShgConfigError::StrideTooLong { q, delta });
        }
        Ok(ShgConfig { q, delta })
    }

    /// Per-dimension side length.
    pub fn q(&self) -> u16 {
        self.q
    }

    /// Strides per dimension.
    pub fn delta(&self) -> u16 {
        self.delta
    }

    /// Total nodes (`q²`).
    pub fn num_nodes(&self) -> usize {
        usize::from(self.q) * usize::from(self.q)
    }

    /// The stride set per dimension: the first `delta` powers of two.
    pub fn strides(&self) -> Vec<u16> {
        (0..self.delta).map(|k| 1 << k).collect()
    }

    /// Human-readable name, `SHG(nodes,delta)`.
    pub fn name(&self) -> String {
        format!("SHG({},{})", self.num_nodes(), self.delta)
    }
}

/// The Sparse Hamming Graph as a [`Topology`].
///
/// Node `(x, y)` maps to [`Coord`] on the `q × q` grid, so packets,
/// events, and detectors reuse the torus coordinate plumbing verbatim.
/// Output slots `0..delta` are the X-dimension strides (smallest
/// first), `delta..2*delta` the Y-dimension strides. Stride-1 links are
/// [`WireClass::Short`] and report through the `EastSh`/`SouthSh` port
/// classes; longer strides are [`WireClass::Express`] on
/// `EastEx`/`SouthEx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShgTopology {
    cfg: ShgConfig,
}

impl ShgTopology {
    /// Wraps a validated configuration.
    pub fn new(cfg: ShgConfig) -> Self {
        ShgTopology { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &ShgConfig {
        &self.cfg
    }

    /// Maps an output slot to its `(x_dim, stride)` pair.
    fn slot_geometry(&self, slot: usize) -> (bool, u16) {
        let delta = usize::from(self.cfg.delta);
        debug_assert!(slot < 2 * delta);
        let (x_dim, k) = if slot < delta {
            (true, slot)
        } else {
            (false, slot - delta)
        };
        (x_dim, 1 << k)
    }
}

impl Topology for ShgTopology {
    fn name(&self) -> String {
        self.cfg.name()
    }

    fn spec(&self) -> TopologySpec {
        TopologySpec::Shg(self.cfg)
    }

    fn num_nodes(&self) -> usize {
        self.cfg.num_nodes()
    }

    fn monitor_shape(&self) -> MonitorShape {
        MonitorShape {
            nodes: self.cfg.num_nodes(),
            links_per_node: 4,
            grid_side: Some(self.cfg.q),
            channels: 1,
        }
    }

    fn out_links(&self, node: usize) -> Vec<LinkDesc> {
        let q = self.cfg.q;
        let at = Coord::from_node_id(node, q);
        let delta = usize::from(self.cfg.delta);
        let mut links = Vec::with_capacity(2 * delta);
        for slot in 0..2 * delta {
            let (x_dim, stride) = self.slot_geometry(slot);
            let dst = if x_dim {
                at.east(stride, q)
            } else {
                at.south(stride, q)
            };
            let express = stride > 1;
            let port = match (x_dim, express) {
                (true, false) => OutPort::EastSh,
                (true, true) => OutPort::EastEx,
                (false, false) => OutPort::SouthSh,
                (false, true) => OutPort::SouthEx,
            };
            links.push(LinkDesc {
                src: node,
                dst: dst.to_node_id(q),
                slot,
                port,
                class: if express {
                    WireClass::Express
                } else {
                    WireClass::Short
                },
                span: stride,
            });
        }
        links
    }

    fn route_slot(&self, at: usize, dst: usize) -> usize {
        let q = self.cfg.q;
        let (a, b) = (Coord::from_node_id(at, q), Coord::from_node_id(dst, q));
        let delta = usize::from(self.cfg.delta);
        // Greedy radix decomposition, X before Y: take the largest
        // stride that does not overshoot the remaining ring distance.
        let greedy = |dist: u16| -> usize {
            debug_assert!(dist > 0);
            (0..delta)
                .rev()
                .find(|&k| (1u16 << k) <= dist)
                .expect("stride 1 always fits")
        };
        let dx = a.dx_to(b, q);
        if dx > 0 {
            greedy(dx)
        } else {
            delta + greedy(a.dy_to(b, q))
        }
    }
}

/// A uniformly parsed topology selector: the single grammar the CLI,
/// scenario-trace headers, and sweep grids share.
///
/// * `hoplite:<n>` / `ft:<n>:<d>:<r>` / `ftlite:<n>:<d>:<r>` — the
///   torus family ([`TorusTopology`])
/// * `shg:<q>:<delta>` — Sparse Hamming Graph ([`ShgTopology`])
/// * `mesh:<n>[:<depth>]` — buffered XY mesh (engine in
///   `fasttrack-mesh`; depth defaults to 4)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// The torus family (Hoplite / FastTrack / FT-lite).
    Torus(NocConfig),
    /// Sparse Hamming Graph.
    Shg(ShgConfig),
    /// Buffered XY mesh. Raw parameters rather than a `MeshConfig`
    /// because `fasttrack-mesh` depends on this crate, not vice versa.
    Mesh {
        /// Side length of the `n × n` mesh.
        n: u16,
        /// Router input-buffer depth in flits.
        depth: usize,
    },
}

impl TopologySpec {
    /// Human-readable name of the selected topology.
    pub fn display_name(&self) -> String {
        match self {
            TopologySpec::Torus(cfg) => cfg.name(),
            TopologySpec::Shg(cfg) => cfg.name(),
            TopologySpec::Mesh { n, depth } => format!("Mesh {n}x{n} (depth {depth})"),
        }
    }

    /// Total nodes.
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologySpec::Torus(cfg) => cfg.num_nodes(),
            TopologySpec::Shg(cfg) => cfg.num_nodes(),
            TopologySpec::Mesh { n, .. } => usize::from(*n) * usize::from(*n),
        }
    }

    /// Monitor sizing for the selected topology.
    pub fn monitor_shape(&self) -> MonitorShape {
        match self {
            TopologySpec::Torus(cfg) => MonitorShape::torus(cfg.n()),
            TopologySpec::Shg(cfg) => ShgTopology::new(*cfg).monitor_shape(),
            TopologySpec::Mesh { n, .. } => MonitorShape::torus(*n),
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Torus(cfg) => match cfg.kind() {
                NocKind::Hoplite => write!(f, "hoplite:{}", cfg.n()),
                NocKind::FastTrack { d, r, policy } => {
                    let kind = match policy {
                        FtPolicy::Full => "ft",
                        FtPolicy::Inject => "ftlite",
                    };
                    write!(f, "{kind}:{}:{d}:{r}", cfg.n())
                }
            },
            TopologySpec::Shg(cfg) => write!(f, "shg:{}:{}", cfg.q(), cfg.delta()),
            TopologySpec::Mesh { n, depth } => write!(f, "mesh:{n}:{depth}"),
        }
    }
}

/// Why a [`TopologySpec`] string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpecError {
    /// The leading keyword is unknown.
    UnknownKind(String),
    /// Wrong number of `:`-separated fields for the kind.
    BadArity {
        /// The spec kind.
        kind: &'static str,
        /// Expected field count (after the kind).
        expected: &'static str,
        /// Found field count.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber(String),
    /// The torus configuration failed validation.
    Torus(ConfigError),
    /// The SHG configuration failed validation.
    Shg(ShgConfigError),
    /// The mesh parameters failed validation.
    Mesh(&'static str),
}

impl fmt::Display for TopologySpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpecError::UnknownKind(k) => write!(
                f,
                "unknown topology kind {k:?} (expected hoplite, ft, ftlite, shg, or mesh)"
            ),
            TopologySpecError::BadArity {
                kind,
                expected,
                found,
            } => write!(f, "{kind} spec needs {expected} field(s), found {found}"),
            TopologySpecError::BadNumber(s) => write!(f, "invalid number {s:?}"),
            TopologySpecError::Torus(e) => write!(f, "invalid torus spec: {e}"),
            TopologySpecError::Shg(e) => write!(f, "invalid shg spec: {e}"),
            TopologySpecError::Mesh(e) => write!(f, "invalid mesh spec: {e}"),
        }
    }
}

impl std::error::Error for TopologySpecError {}

impl From<ConfigError> for TopologySpecError {
    fn from(e: ConfigError) -> Self {
        TopologySpecError::Torus(e)
    }
}

impl From<ShgConfigError> for TopologySpecError {
    fn from(e: ShgConfigError) -> Self {
        TopologySpecError::Shg(e)
    }
}

impl FromStr for TopologySpec {
    type Err = TopologySpecError;

    fn from_str(spec: &str) -> Result<Self, TopologySpecError> {
        let fields: Vec<&str> = spec.split(':').collect();
        let num = |s: &str| -> Result<u16, TopologySpecError> {
            s.parse()
                .map_err(|_| TopologySpecError::BadNumber(s.to_string()))
        };
        let arity = |kind: &'static str, expected: &'static str| TopologySpecError::BadArity {
            kind,
            expected,
            found: fields.len() - 1,
        };
        match fields[0] {
            "hoplite" => {
                if fields.len() != 2 {
                    return Err(arity("hoplite", "1"));
                }
                Ok(TopologySpec::Torus(NocConfig::hoplite(num(fields[1])?)?))
            }
            "ft" | "ftlite" => {
                if fields.len() != 4 {
                    return Err(arity("ft", "3"));
                }
                let policy = if fields[0] == "ft" {
                    FtPolicy::Full
                } else {
                    FtPolicy::Inject
                };
                Ok(TopologySpec::Torus(NocConfig::fasttrack(
                    num(fields[1])?,
                    num(fields[2])?,
                    num(fields[3])?,
                    policy,
                )?))
            }
            "shg" => {
                if fields.len() != 3 {
                    return Err(arity("shg", "2"));
                }
                Ok(TopologySpec::Shg(ShgConfig::new(
                    num(fields[1])?,
                    num(fields[2])?,
                )?))
            }
            "mesh" => {
                if !(2..=3).contains(&fields.len()) {
                    return Err(arity("mesh", "1 or 2"));
                }
                let n = num(fields[1])?;
                if n < 2 {
                    return Err(TopologySpecError::Mesh("mesh side must be at least 2"));
                }
                let depth = if fields.len() == 3 {
                    usize::from(num(fields[2])?)
                } else {
                    4
                };
                if depth == 0 {
                    return Err(TopologySpecError::Mesh(
                        "mesh buffer depth must be at least 1",
                    ));
                }
                Ok(TopologySpec::Mesh { n, depth })
            }
            other => Err(TopologySpecError::UnknownKind(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(n: u16, d: u16, r: u16) -> NocConfig {
        NocConfig::fasttrack(n, d, r, FtPolicy::Full).unwrap()
    }

    #[test]
    fn torus_links_match_router_geometry() {
        let topo = TorusTopology::new(ft(8, 2, 1));
        // R == 1: every router has both express links -> 4 out-links.
        assert!((0..64).all(|v| topo.out_links(v).len() == 4));
        let hoplite = TorusTopology::new(NocConfig::hoplite(4).unwrap());
        assert!((0..16).all(|v| hoplite.out_links(v).len() == 2));
        // Depopulated (R == 2): only every other diagonal position has
        // express outputs, so the total express pool shrinks.
        let dep = TorusTopology::new(ft(8, 2, 2));
        let full_express = topo.express_ports().len();
        let dep_express = dep.express_ports().len();
        assert!(dep_express < full_express, "{dep_express} < {full_express}");
    }

    #[test]
    fn torus_express_pool_matches_fault_planner() {
        // The storm pool drawn through the trait reproduces the
        // cfg-native storm bit-for-bit.
        let cfg = ft(8, 2, 2);
        let topo = TorusTopology::new(cfg.clone());
        let spec = StormSpec::default();
        assert_eq!(
            FaultPlan::storm_topo(&topo, 7, &spec),
            FaultPlan::storm(&cfg, 7, &spec)
        );
    }

    #[test]
    fn torus_fault_validation_matches_native() {
        let cfg = ft(8, 2, 1);
        let topo = TorusTopology::new(cfg.clone());
        let faults = [
            Fault::DeadLink {
                node: 0,
                out: OutPort::EastEx,
            },
            Fault::DeadLink {
                node: 0,
                out: OutPort::EastSh,
            },
            Fault::DeadLink {
                node: 0,
                out: OutPort::Exit,
            },
            Fault::FailStopRouter { node: 99, at: 0 },
            Fault::StalledInjector {
                node: 1,
                from: 5,
                until: 5,
            },
        ];
        for fault in faults {
            assert_eq!(
                topo.validate_fault(&fault),
                FaultPlan::new().with(fault).validate(&cfg),
                "{fault}"
            );
        }
    }

    #[test]
    fn torus_is_strongly_connected_and_partitions_detected() {
        let topo = TorusTopology::new(NocConfig::hoplite(2).unwrap());
        assert!(topo.connected_without(&[]));
        // Killing every outgoing link of node 0 partitions the graph.
        assert!(!topo.connected_without(&[(0, OutPort::EastSh), (0, OutPort::SouthSh)]));
    }

    #[test]
    fn torus_route_lut_walks_home() {
        let topo = TorusTopology::new(ft(8, 2, 1));
        let lut = topo.build_route_lut();
        for dst in [1usize, 9, 37, 63] {
            let mut at = 0usize;
            for _ in 0..64 {
                if at == dst {
                    break;
                }
                let slot = lut.slot(at, dst).unwrap();
                at = topo.out_links(at)[slot].dst;
            }
            assert_eq!(at, dst, "LUT walk must reach {dst}");
        }
        assert_eq!(lut.slot(5, 5), None);
    }

    #[test]
    fn shg_config_validates() {
        assert!(ShgConfig::new(8, 2).is_ok());
        assert_eq!(
            ShgConfig::new(1, 1),
            Err(ShgConfigError::SideTooSmall { q: 1 })
        );
        assert_eq!(ShgConfig::new(8, 0), Err(ShgConfigError::DegreeTooSmall));
        assert_eq!(
            ShgConfig::new(8, 4),
            Err(ShgConfigError::StrideTooLong { q: 8, delta: 4 })
        );
        assert_eq!(ShgConfig::new(8, 3).unwrap().strides(), vec![1, 2, 4]);
        assert_eq!(ShgConfig::new(8, 2).unwrap().name(), "SHG(64,2)");
    }

    #[test]
    fn shg_links_and_classes() {
        let topo = ShgTopology::new(ShgConfig::new(8, 2).unwrap());
        assert_eq!(topo.num_nodes(), 64);
        let links = topo.out_links(0);
        assert_eq!(links.len(), 4);
        // Slot 0: x stride 1 (short), slot 1: x stride 2 (express),
        // then the y dimension likewise.
        assert_eq!(links[0].port, OutPort::EastSh);
        assert_eq!(links[0].dst, 1);
        assert_eq!(links[1].port, OutPort::EastEx);
        assert_eq!(links[1].dst, 2);
        assert_eq!(links[1].span, 2);
        assert_eq!(links[2].port, OutPort::SouthSh);
        assert_eq!(links[2].dst, 8);
        assert_eq!(links[3].port, OutPort::SouthEx);
        assert_eq!(links[3].dst, 16);
        assert_eq!(links[1].class, WireClass::Express);
        assert_eq!(links[2].class, WireClass::Short);
    }

    #[test]
    fn shg_is_strongly_connected_even_without_express() {
        let topo = ShgTopology::new(ShgConfig::new(8, 2).unwrap());
        assert!(topo.connected_without(&[]));
        // Express-class faults never partition: stride-1 rings remain.
        assert!(topo.connected_without(&[(0, OutPort::EastEx), (0, OutPort::SouthEx)]));
        // Even a dead stride-1 link leaves a detour through other rows,
        // so (unlike the torus) the SHG validator admits Sh faults.
        assert!(topo.connected_without(&[(0, OutPort::EastSh)]));
        assert_eq!(
            topo.validate_fault(&Fault::DeadLink {
                node: 0,
                out: OutPort::EastSh,
            }),
            Ok(())
        );
    }

    #[test]
    fn shg_route_lut_walks_home() {
        let topo = ShgTopology::new(ShgConfig::new(8, 3).unwrap());
        let lut = topo.build_route_lut();
        for (from, to) in [(0usize, 63usize), (5, 0), (17, 44), (63, 1)] {
            let mut at = from;
            let mut hops = 0;
            while at != to {
                let slot = lut.slot(at, to).unwrap();
                at = topo.out_links(at)[slot].dst;
                hops += 1;
                assert!(hops <= 32, "greedy route {from}->{to} must terminate");
            }
            // Greedy radix routing needs at most delta hops per
            // dimension on a power-of-two decomposition.
            assert!(hops <= 8, "{from}->{to} took {hops} hops");
        }
    }

    #[test]
    fn shg_fault_hooks() {
        let topo = ShgTopology::new(ShgConfig::new(8, 2).unwrap());
        // EastEx exists (delta 2) and masks exactly the stride-2 slot.
        assert_eq!(topo.fault_slots(0, OutPort::EastEx), vec![1]);
        assert_eq!(
            topo.validate_fault(&Fault::DeadLink {
                node: 0,
                out: OutPort::EastEx,
            }),
            Ok(())
        );
        // delta == 1 has no express class at all.
        let ring = ShgTopology::new(ShgConfig::new(4, 1).unwrap());
        assert_eq!(
            ring.validate_fault(&Fault::DeadLink {
                node: 0,
                out: OutPort::EastEx,
            }),
            Err(FaultError::NoExpressLink {
                node: 0,
                out: OutPort::EastEx,
            })
        );
        assert!(ring.express_ports().is_empty());
        // Bad node and empty windows use the shared checks.
        assert_eq!(
            topo.validate_fault(&Fault::FailStopRouter { node: 64, at: 0 }),
            Err(FaultError::BadNode {
                node: 64,
                nodes: 64
            })
        );
    }

    #[test]
    fn shg_storms_are_deterministic() {
        let topo = ShgTopology::new(ShgConfig::new(8, 2).unwrap());
        let spec = StormSpec::default();
        let a = FaultPlan::storm_topo(&topo, 11, &spec);
        let b = FaultPlan::storm_topo(&topo, 11, &spec);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.validate_topo(&topo).is_ok());
        assert_ne!(a, FaultPlan::storm_topo(&topo, 12, &spec));
    }

    #[test]
    fn fallback_defaults_to_inert_only() {
        let topo = ShgTopology::new(ShgConfig::new(8, 2).unwrap());
        assert!(topo.validate_fallback(&FallbackConfig::none()).is_ok());
        assert!(matches!(
            topo.validate_fallback(&FallbackConfig::standard()),
            Err(FallbackError::UnsupportedTopology)
        ));
        // The torus delegates to the torus-native validator.
        let torus = TorusTopology::new(ft(8, 2, 1));
        assert!(torus.validate_fallback(&FallbackConfig::standard()).is_ok());
    }

    #[test]
    fn resource_costs_scale_with_degree() {
        let hoplite = TorusTopology::new(NocConfig::hoplite(8).unwrap()).resource_cost();
        let ftfull = TorusTopology::new(ft(8, 2, 1)).resource_cost();
        let shg = ShgTopology::new(ShgConfig::new(8, 2).unwrap()).resource_cost();
        assert!(ftfull.total() > hoplite.total());
        assert!(shg.total() > hoplite.total());
        assert!(hoplite.luts > 0 && hoplite.ffs > 0);
        assert!(!hoplite.to_string().is_empty());
    }

    #[test]
    fn monitor_shapes() {
        let shape = MonitorShape::torus(8);
        assert_eq!(shape.nodes, 64);
        assert_eq!(shape.links_per_node, 4);
        assert_eq!(shape.grid_side, Some(8));
        assert_eq!(shape.channels, 1);
        assert_eq!(shape.with_channels(0).channels, 1);
        assert_eq!(shape.link_id(2, 3), LinkId(11));
        assert_eq!(shape.num_links(), 256);
        assert_eq!(LinkId(11).to_string(), "L11");
    }

    #[test]
    fn spec_grammar_round_trips() {
        for s in [
            "hoplite:8",
            "ft:8:2:1",
            "ftlite:8:2:2",
            "shg:8:2",
            "mesh:4:4",
        ] {
            let spec: TopologySpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s, "round-trip of {s}");
            assert!(spec.num_nodes() > 0);
            assert!(!spec.display_name().is_empty());
            assert!(spec.monitor_shape().nodes == spec.num_nodes());
        }
        // Depth defaults to 4.
        assert_eq!(
            "mesh:4".parse::<TopologySpec>().unwrap(),
            TopologySpec::Mesh { n: 4, depth: 4 }
        );
    }

    #[test]
    fn spec_grammar_rejects_malformed() {
        assert!(matches!(
            "ring:8".parse::<TopologySpec>(),
            Err(TopologySpecError::UnknownKind(_))
        ));
        assert!(matches!(
            "shg:8".parse::<TopologySpec>(),
            Err(TopologySpecError::BadArity { .. })
        ));
        assert!(matches!(
            "shg:8:9".parse::<TopologySpec>(),
            Err(TopologySpecError::Shg(_))
        ));
        assert!(matches!(
            "hoplite:x".parse::<TopologySpec>(),
            Err(TopologySpecError::BadNumber(_))
        ));
        assert!(matches!(
            "mesh:1".parse::<TopologySpec>(),
            Err(TopologySpecError::Mesh(_))
        ));
        assert!(matches!(
            "mesh:4:0".parse::<TopologySpec>(),
            Err(TopologySpecError::Mesh(_))
        ));
        assert!(matches!(
            "ft:8:9:1".parse::<TopologySpec>(),
            Err(TopologySpecError::Torus(_))
        ));
        let e = "ring:8".parse::<TopologySpec>().unwrap_err();
        assert!(e.to_string().contains("unknown topology kind"));
    }

    #[test]
    fn torus_spec_views_agree() {
        let cfg = ft(8, 2, 1);
        let topo = TorusTopology::new(cfg.clone());
        assert_eq!(topo.spec(), TopologySpec::Torus(cfg));
        assert_eq!(topo.spec().to_string(), "ft:8:2:1");
        assert_eq!(topo.name(), "FT(64,2,1)");
        assert_eq!(topo.monitor_shape(), MonitorShape::torus(8));
        assert_eq!(topo.neighbors(0).len(), 4);
        assert_eq!(topo.links().len(), 64 * 4);
        assert_eq!(topo.wire_class(0, 0), Some(WireClass::Express));
        assert_eq!(topo.wire_class(0, 9), None);
    }
}
