//! Instrumentation probes: per-link utilization heatmaps and per-packet
//! path traces.
//!
//! A [`Probe`] can be attached to a [`crate::noc::Noc`]; the engine then
//! records every output-port assignment into it. Probes power the
//! utilization-heatmap diagnostics, path-visualization examples, and the
//! white-box tests that check packets only ever cross links that exist.

use std::collections::HashMap;

use crate::geom::Coord;
use crate::packet::PacketId;
use crate::port::OutPort;

/// One recorded step of a traced packet's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// Cycle at which the routing decision was made.
    pub cycle: u64,
    /// Router making the decision.
    pub at: Coord,
    /// Output assigned (including `Exit` on delivery).
    pub out: OutPort,
}

/// Which packets to path-trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceSelect {
    /// Trace nothing (heatmap only).
    #[default]
    None,
    /// Trace every packet (memory-heavy; small runs only).
    All,
    /// Trace packets whose id is divisible by the stride.
    Sampled(u64),
}

impl TraceSelect {
    fn matches(self, id: PacketId) -> bool {
        match self {
            TraceSelect::None => false,
            TraceSelect::All => true,
            TraceSelect::Sampled(k) => k != 0 && id.0.is_multiple_of(k),
        }
    }
}

/// Link-utilization counters and optional packet path traces.
#[derive(Debug, Clone, Default)]
pub struct Probe {
    /// `usage[node][port_index]`: assignments of each output port at
    /// each router (indices per [`OutPort::index`]).
    usage: Vec<[u64; 5]>,
    select: TraceSelect,
    traces: HashMap<PacketId, Vec<PathStep>>,
    cycles_observed: u64,
}

impl Probe {
    /// Creates a heatmap-only probe for `nodes` routers.
    pub fn new(nodes: usize) -> Self {
        Probe {
            usage: vec![[0; 5]; nodes],
            ..Default::default()
        }
    }

    /// Creates a probe that also traces packet paths.
    pub fn with_tracing(nodes: usize, select: TraceSelect) -> Self {
        Probe {
            usage: vec![[0; 5]; nodes],
            select,
            ..Default::default()
        }
    }

    /// Records one assignment (called by the engine).
    pub(crate) fn record(
        &mut self,
        cycle: u64,
        node: usize,
        at: Coord,
        id: PacketId,
        out: OutPort,
    ) {
        self.usage[node][out.index()] += 1;
        if self.select.matches(id) {
            self.traces
                .entry(id)
                .or_default()
                .push(PathStep { cycle, at, out });
        }
    }

    /// Notes that one cycle elapsed (normalizes utilization).
    pub(crate) fn tick(&mut self) {
        self.cycles_observed += 1;
    }

    /// Number of cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles_observed
    }

    /// Number of cycles observed (explicit alias of [`Probe::cycles`]
    /// matching the field name, for symmetry with merged probes).
    pub fn cycles_observed(&self) -> u64 {
        self.cycles_observed
    }

    /// Merges another probe's observations into this one: usage counts
    /// add up, path traces union, and the observation window is the
    /// longer of the two (channels of a multi-channel NoC observe the
    /// same cycles, so their windows coincide rather than add).
    pub fn merge(&mut self, other: &Probe) {
        if self.usage.len() < other.usage.len() {
            self.usage.resize(other.usage.len(), [0; 5]);
        }
        for (node, counts) in other.usage.iter().enumerate() {
            for (port, &c) in counts.iter().enumerate() {
                self.usage[node][port] += c;
            }
        }
        for (id, steps) in &other.traces {
            let merged = self.traces.entry(*id).or_default();
            merged.extend_from_slice(steps);
            merged.sort_by_key(|s| s.cycle);
        }
        self.cycles_observed = self.cycles_observed.max(other.cycles_observed);
    }

    /// Raw assignment count for a port at a node.
    pub fn count(&self, node: usize, port: OutPort) -> u64 {
        self.usage[node][port.index()]
    }

    /// Utilization (0..=1) of a port at a node over the observed window.
    pub fn utilization(&self, node: usize, port: OutPort) -> f64 {
        if self.cycles_observed == 0 {
            0.0
        } else {
            self.count(node, port) as f64 / self.cycles_observed as f64
        }
    }

    /// The most-utilized link (node, port, utilization), ignoring exits.
    pub fn hottest_link(&self) -> Option<(usize, OutPort, f64)> {
        let mut best: Option<(usize, OutPort, f64)> = None;
        for (node, counts) in self.usage.iter().enumerate() {
            for port in OutPort::ALL {
                if port == OutPort::Exit {
                    continue;
                }
                let u = if self.cycles_observed == 0 {
                    0.0
                } else {
                    counts[port.index()] as f64 / self.cycles_observed as f64
                };
                if best.is_none_or(|(_, _, b)| u > b) {
                    best = Some((node, port, u));
                }
            }
        }
        best
    }

    /// The recorded path of a traced packet, if any.
    pub fn path(&self, id: PacketId) -> Option<&[PathStep]> {
        self.traces.get(&id).map(Vec::as_slice)
    }

    /// All traced packets.
    pub fn traced_ids(&self) -> impl Iterator<Item = PacketId> + '_ {
        self.traces.keys().copied()
    }

    /// Renders an ASCII heatmap of a port's utilization across the torus
    /// (one digit per router, 0–9 deciles).
    pub fn heatmap(&self, n: u16, port: OutPort) -> String {
        let mut out = String::new();
        for y in 0..n {
            for x in 0..n {
                let node = Coord::new(x, y).to_node_id(n);
                let u = self.utilization(node, port);
                let digit = (u * 10.0).floor().min(9.0) as u8;
                out.push(char::from(b'0' + digit));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::noc::Noc;
    use crate::queue::InjectQueues;

    #[test]
    fn trace_select_matching() {
        assert!(!TraceSelect::None.matches(PacketId(0)));
        assert!(TraceSelect::All.matches(PacketId(7)));
        assert!(TraceSelect::Sampled(4).matches(PacketId(8)));
        assert!(!TraceSelect::Sampled(4).matches(PacketId(9)));
        assert!(!TraceSelect::Sampled(0).matches(PacketId(0)));
    }

    #[test]
    fn records_usage_and_paths_through_engine() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut noc = Noc::new(cfg);
        noc.attach_probe(Probe::with_tracing(16, TraceSelect::All));
        let mut q = InjectQueues::new(16);
        let id = q.push(0, Coord::new(2, 1), 0, 0);
        let mut dels = Vec::new();
        for _ in 0..20 {
            noc.step(&mut q, &mut dels, None);
            if q.is_empty() && noc.in_flight() == 0 {
                break;
            }
        }
        let probe = noc.probe().unwrap();
        assert!(probe.cycles() > 0);
        // Path: inject east at (0,0), east at (1,0), south at (2,0),
        // exit at (2,1).
        let path = probe.path(id).unwrap();
        let outs: Vec<OutPort> = path.iter().map(|s| s.out).collect();
        assert_eq!(
            outs,
            vec![
                OutPort::EastSh,
                OutPort::EastSh,
                OutPort::SouthSh,
                OutPort::Exit
            ]
        );
        assert_eq!(path[0].at, Coord::new(0, 0));
        assert_eq!(path.last().unwrap().at, Coord::new(2, 1));
        // Cycles strictly increase along the path.
        for w in path.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
        }
        // Usage heatmap saw the east hops.
        assert_eq!(
            probe.count(Coord::new(0, 0).to_node_id(4), OutPort::EastSh),
            1
        );
        assert_eq!(
            probe.count(Coord::new(2, 1).to_node_id(4), OutPort::Exit),
            1
        );
    }

    #[test]
    fn utilization_and_hottest_link() {
        let mut p = Probe::new(4);
        for _ in 0..10 {
            p.tick();
        }
        p.usage[2][OutPort::EastSh.index()] = 5;
        p.usage[1][OutPort::SouthSh.index()] = 3;
        p.usage[0][OutPort::Exit.index()] = 9; // exits don't count as links
        assert!((p.utilization(2, OutPort::EastSh) - 0.5).abs() < 1e-12);
        let (node, port, u) = p.hottest_link().unwrap();
        assert_eq!((node, port), (2, OutPort::EastSh));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heatmap_renders_grid() {
        let mut p = Probe::new(4);
        for _ in 0..10 {
            p.tick();
        }
        p.usage[3][OutPort::EastSh.index()] = 10;
        let map = p.heatmap(2, OutPort::EastSh);
        assert_eq!(map, "00\n09\n");
    }
}
