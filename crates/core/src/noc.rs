//! The cycle-accurate NoC engine.
//!
//! A [`Noc`] is a synchronous machine: every router reads its registered
//! input ports, the routing function ([`crate::routing`]) and allocator
//! ([`crate::alloc`]) decide output assignments, and packets are written
//! into the input registers of the downstream routers for the next cycle.
//! Express links cover `D` router positions in a single cycle — that is
//! the entire point of FastTrack (the FPGA wire model in
//! `fasttrack-fpga` verifies the clock still closes).

use std::collections::VecDeque;
use std::sync::Arc;

use crate::alloc::{allocate, try_allocate, try_inject, MAX_IN_FLIGHT};
use crate::config::{FtPolicy, NocConfig};
use crate::fallback::CompiledFallback;
use crate::fault::{FaultError, FaultPlan, FaultState};
use crate::geom::Coord;
use crate::kernel::{PacketPool, RouteLut, RouteMode, EMPTY_SLOT};
use crate::packet::{Delivery, Packet};
use crate::port::{InPort, OutPort, OutSet};
use crate::probe::Probe;
use crate::queue::InjectQueues;
use crate::router::RouterClass;
use crate::routing::{compute_prefs, RoutePrefs};
use crate::stats::SimStats;
use crate::trace::{EventSink, NullSink, SimEvent};

/// Per-node gating flags used when several NoC channels share one PE
/// (multi-channel Hoplite): each PE performs at most one injection and
/// one delivery per cycle across all channels.
#[derive(Debug, Clone)]
pub struct StepGates {
    /// `true` while the node may still deliver a packet this cycle.
    pub exit_allowed: Vec<bool>,
    /// `true` while the node may still inject a packet this cycle.
    pub inject_allowed: Vec<bool>,
}

impl StepGates {
    /// Fresh gates (everything allowed) for `nodes` PEs.
    pub fn new(nodes: usize) -> Self {
        StepGates {
            exit_allowed: vec![true; nodes],
            inject_allowed: vec![true; nodes],
        }
    }

    /// Re-opens all gates (call at the start of each cycle).
    pub fn reset(&mut self) {
        self.exit_allowed.fill(true);
        self.inject_allowed.fill(true);
    }
}

/// A single NoC channel (Hoplite or FastTrack, per its configuration).
#[derive(Debug, Clone)]
pub struct Noc {
    cfg: NocConfig,
    classes: Vec<RouterClass>,
    available: Vec<OutSet>,
    /// Precomputed router coordinates, indexed by node id (avoids a
    /// divide per node per cycle in the hot loop).
    coords: Vec<Coord>,
    /// Input registers for the current cycle: one flat contiguous array,
    /// slot `node * MAX_IN_FLIGHT + port` with port indices matching
    /// [`InPort::index`] (0..4 are in-flight ports). Each register holds
    /// a [`PacketPool`] slot index or [`EMPTY_SLOT`]; the compact `u32`
    /// layout keeps the per-cycle scan a single linear walk over 16
    /// bytes per router.
    regs: Vec<u32>,
    /// Timing wheel of future input states: `wheel[t]` holds packets
    /// arriving `t + 1` cycles from now (depth = the longest pipelined
    /// link delay; depth 1 when links carry a single register). Frames
    /// use the same flat layout as `regs`.
    wheel: VecDeque<Vec<u32>>,
    /// Struct-of-arrays storage for every packet referenced by `regs`
    /// and the wheel frames.
    pool: PacketPool,
    /// Precomputed route preferences (shared between clones); `None`
    /// when the engine runs in [`RouteMode::Direct`].
    lut: Option<Arc<RouteLut>>,
    in_flight: usize,
    cycle: u64,
    stats: SimStats,
    probe: Option<Probe>,
    /// Compiled fault tables; `None` on a healthy fabric, which keeps
    /// the no-fault path structurally identical to the pre-fault engine.
    faults: Option<FaultState>,
    /// Compiled fallback chains (see [`crate::fallback`]). The default
    /// is inert: every fallback branch is skipped and the engine is
    /// bit-identical to the pre-fallback drop behavior.
    fallback: CompiledFallback,
    /// `true` only inside a multi-channel bank: `AlternateChannel`
    /// steps evict the loser for sibling adoption instead of dropping.
    evict_enabled: bool,
    /// Packets evicted this cycle for channel switching, drained by the
    /// owning [`crate::multichannel::MultiNoc`] after the step.
    evicted: Vec<(usize, Packet)>,
}

impl Noc {
    /// Builds an idle NoC for the given configuration, with the route
    /// LUT enabled (see [`Noc::with_route_mode`]).
    pub fn new(cfg: NocConfig) -> Self {
        Noc::with_route_mode(cfg, RouteMode::Lut)
    }

    /// Builds an idle NoC resolving routes per `mode`. [`RouteMode::Lut`]
    /// precomputes the route tables here so the cycle loop only does
    /// lookups; [`RouteMode::Direct`] keeps the branchy per-cycle
    /// computation (the reference path for differential tests).
    pub fn with_route_mode(cfg: NocConfig, mode: RouteMode) -> Self {
        let nodes = cfg.num_nodes();
        let n = cfg.n();
        let mut classes = Vec::with_capacity(nodes);
        let mut available = Vec::with_capacity(nodes);
        let mut coords = Vec::with_capacity(nodes);
        for id in 0..nodes {
            let at = Coord::from_node_id(id, n);
            let class = RouterClass::of(&cfg, at);
            classes.push(class);
            available.push(class.available_outputs());
            coords.push(at);
        }
        let depth = cfg.link_pipeline().max_cycles() as usize;
        let lut = match mode {
            RouteMode::Lut => {
                let _span = crate::profile::scoped("session.build.route_lut");
                Some(RouteLut::build(&cfg))
            }
            RouteMode::Direct => None,
        };
        Noc {
            cfg,
            classes,
            available,
            coords,
            regs: vec![EMPTY_SLOT; nodes * MAX_IN_FLIGHT],
            wheel: (0..depth)
                .map(|_| vec![EMPTY_SLOT; nodes * MAX_IN_FLIGHT])
                .collect(),
            pool: PacketPool::with_capacity(nodes),
            lut,
            in_flight: 0,
            cycle: 0,
            stats: SimStats::default(),
            probe: None,
            faults: None,
            fallback: CompiledFallback::default(),
            evict_enabled: false,
            evicted: Vec::new(),
        }
    }

    /// Switches the route-resolution mode. Entering [`RouteMode::Lut`]
    /// builds the table if this engine does not already hold one.
    pub fn set_route_mode(&mut self, mode: RouteMode) {
        match mode {
            RouteMode::Direct => self.lut = None,
            RouteMode::Lut => {
                if self.lut.is_none() {
                    self.lut = Some(RouteLut::build(&self.cfg));
                }
            }
        }
    }

    /// The current route-resolution mode.
    pub fn route_mode(&self) -> RouteMode {
        if self.lut.is_some() {
            RouteMode::Lut
        } else {
            RouteMode::Direct
        }
    }

    /// Shared handle on the route table, if one is installed.
    pub(crate) fn lut_handle(&self) -> Option<Arc<RouteLut>> {
        self.lut.clone()
    }

    /// Installs a prebuilt route table (multi-channel banks share one).
    pub(crate) fn install_lut(&mut self, lut: Arc<RouteLut>) {
        self.lut = Some(lut);
    }

    /// Returns the engine to its just-constructed state — no packets in
    /// flight, cycle 0, zeroed statistics — while keeping the topology,
    /// route tables, compiled fault plan, and allocations. Batched
    /// drivers reset between seeds instead of rebuilding the engine.
    pub fn reset(&mut self) {
        self.regs.fill(EMPTY_SLOT);
        for frame in &mut self.wheel {
            frame.fill(EMPTY_SLOT);
        }
        self.pool.clear();
        self.in_flight = 0;
        self.cycle = 0;
        self.stats = SimStats::default();
        self.evicted.clear();
        // Only a dynamic timeline can leave the dead-link table in a
        // later epoch; static plans never need the rebuild.
        if let Some(f) = self.faults.as_mut() {
            if f.has_windows() {
                f.rewind();
            }
        }
    }

    /// Installs compiled fallback chains. The default compiled form is
    /// inert and keeps this engine bit-identical to one built without
    /// fallback routing.
    pub(crate) fn set_fallback(&mut self, fallback: CompiledFallback) {
        self.fallback = fallback;
    }

    /// Arms `AlternateChannel` evictions. Only a multi-channel bank
    /// calls this — a lone channel has no alternate, so the step stays
    /// inert and the exhausted chain falls through to the drop.
    pub(crate) fn enable_eviction(&mut self) {
        self.evict_enabled = true;
    }

    /// Drains the packets evicted for channel switching this cycle.
    pub(crate) fn take_evicted(&mut self) -> Vec<(usize, Packet)> {
        std::mem::take(&mut self.evicted)
    }

    /// Adopts a packet evicted from a sibling channel, placing it into
    /// a free shared input register at `node` for the coming cycle (hop
    /// and latency counters carry over — the switch costs one cycle,
    /// not a fresh injection). Returns `false` when both shared inputs
    /// are already occupied.
    pub(crate) fn adopt(&mut self, node: usize, pkt: Packet) -> bool {
        for port in [InPort::WestSh, InPort::NorthSh] {
            let reg = &mut self.regs[node * MAX_IN_FLIGHT + port.index()];
            if *reg == EMPTY_SLOT {
                if self.pool.free_slots() > 0 {
                    self.stats.pool_reuse += 1;
                }
                *reg = self.pool.insert(pkt);
                self.in_flight += 1;
                return true;
            }
        }
        false
    }

    /// Builds an idle NoC with the given fault plan injected. The plan
    /// is validated first (reachability pre-check: dead links must be
    /// express-only, nodes in range, windows non-empty). An empty plan
    /// yields an engine bit-identical to [`Noc::new`].
    pub fn with_faults(cfg: NocConfig, plan: &FaultPlan) -> Result<Self, FaultError> {
        {
            let _span = crate::profile::scoped("session.build.fault_validate");
            plan.validate(&cfg)?;
        }
        let mut noc = Noc::new(cfg);
        if !plan.is_empty() {
            let _span = crate::profile::scoped("session.build.fault_compile");
            noc.faults = Some(plan.compile(noc.cfg.num_nodes()));
        }
        Ok(noc)
    }

    /// True when every still-queued packet sits at a PE whose router has
    /// fail-stopped: no further progress is possible, so drivers can end
    /// the run instead of spinning to the cycle cap. Always `false` on a
    /// fault-free fabric.
    pub fn only_failed_injectors_pending(&self, queues: &InjectQueues) -> bool {
        match &self.faults {
            None => false,
            Some(f) => {
                (0..self.cfg.num_nodes()).all(|n| queues.depth(n) == 0 || f.failed(n, self.cycle))
            }
        }
    }

    /// Attaches an instrumentation probe (replacing any existing one).
    pub fn attach_probe(&mut self, probe: Probe) {
        self.probe = Some(probe);
    }

    /// The attached probe, if any.
    pub fn probe(&self) -> Option<&Probe> {
        self.probe.as_ref()
    }

    /// Detaches and returns the probe.
    pub fn take_probe(&mut self) -> Option<Probe> {
        self.probe.take()
    }

    /// The configuration this NoC was built from.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets currently on NoC links.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Clears the accumulated statistics (e.g. after warmup). In-flight
    /// packets keep their own hop counters.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Advances the NoC by one cycle.
    ///
    /// * Pulls injections from `queues` (PE port priority: lowest).
    /// * Pushes deliveries into `deliveries`.
    /// * When `gates` is given, honors and updates the per-PE
    ///   single-injection / single-delivery flags (multi-channel mode).
    pub fn step(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        gates: Option<&mut StepGates>,
    ) {
        self.step_with_sink(queues, deliveries, gates, &mut NullSink);
    }

    /// [`Noc::step`] with an [`EventSink`] observing every routing
    /// decision, injection, deflection, express hop, ejection, and
    /// injection stall. The method is monomorphized per sink type;
    /// with [`NullSink`] (whose `ENABLED` is `false`) all emission code
    /// is statically removed and this is exactly `step`.
    pub fn step_with_sink<S: EventSink>(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        mut gates: Option<&mut StepGates>,
        sink: &mut S,
    ) {
        let n = self.cfg.n();
        let nodes = self.cfg.num_nodes();
        let exit_policy = self.cfg.exit_policy();
        let d = self.cfg.d().max(1);

        // Dynamic fault timeline: when the cycle crosses an epoch
        // boundary (a link dying or healing), rebuild the dead-link
        // table once. The per-node path below stays a plain table read.
        if let Some(f) = self.faults.as_mut() {
            f.patch_epoch(self.cycle);
        }

        for node in 0..nodes {
            let at = self.coords[node];
            let class = self.classes[node];
            let base = node * MAX_IN_FLIGHT;

            // A fail-stopped router swallows every arriving packet and
            // neither routes, injects, nor delivers.
            if self
                .faults
                .as_ref()
                .is_some_and(|f| f.failed(node, self.cycle))
            {
                for slot in 0..MAX_IN_FLIGHT {
                    let idx = self.regs[base + slot];
                    if idx != EMPTY_SLOT {
                        self.regs[base + slot] = EMPTY_SLOT;
                        let pkt = self.pool.remove(idx);
                        self.in_flight -= 1;
                        self.stats.dropped += 1;
                        if S::ENABLED {
                            sink.emit(&SimEvent::FaultDrop {
                                cycle: self.cycle,
                                node,
                                packet: pkt.id,
                                link: None,
                                corrupted: false,
                            });
                        }
                    }
                }
                continue;
            }

            // Gather occupied in-flight inputs in priority order. The
            // register index *is* the priority order (see InPort::index).
            let mut inputs: [(usize, u32); MAX_IN_FLIGHT] = [(0, EMPTY_SLOT); MAX_IN_FLIGHT];
            let mut n_inputs = 0;
            for slot in 0..MAX_IN_FLIGHT {
                let idx = self.regs[base + slot];
                if idx != EMPTY_SLOT {
                    inputs[n_inputs] = (slot, idx);
                    n_inputs += 1;
                }
            }

            let exit_ok = gates.as_ref().is_none_or(|g| g.exit_allowed[node]);
            let mut avail = self.available[node];
            if !exit_ok {
                avail.remove(OutPort::Exit);
            }
            // Mask permanently dead express links: packets that wanted
            // them deflect onto the plain ring (graceful degradation).
            let dead = self
                .faults
                .as_ref()
                .map_or(OutSet::empty(), |f| f.dead[node]);
            for out in dead.iter() {
                avail.remove(out);
            }

            // Route the in-flight packets. Fixed-size buffers: the hot
            // path performs no heap allocation per node per cycle, and
            // only the pool's destination column is read here.
            let mut prefs_buf = [RoutePrefs::empty(); MAX_IN_FLIGHT];
            for i in 0..n_inputs {
                let (slot, idx) = inputs[i];
                let port = InPort::ALL[slot];
                prefs_buf[i] = self.prefs_for(class, port, at, self.pool.dst(idx));
            }
            // The INJECT crossbar has no express-to-shared turn, so a
            // lane-locked express packet whose every productive output is
            // dead can never reach its destination: deflection would keep
            // it orbiting the express ring forever (livelock). Drop it at
            // the first dead router instead — counted, conserved.
            if !dead.is_empty() && self.cfg.ft_policy() == Some(FtPolicy::Inject) {
                let mut kept = 0;
                for i in 0..n_inputs {
                    let (slot, idx) = inputs[i];
                    let productive = prefs_buf[i].productive();
                    let stranded = InPort::ALL[slot].is_express()
                        && !productive.is_empty()
                        && productive.intersect(dead) == productive;
                    if stranded {
                        // Fallback chain, step 1: demote the stranded
                        // express packet onto the shared ring instead of
                        // dropping it. Shared links can never be fault-
                        // masked, so the demoted prefs always have a
                        // live output.
                        if self.fallback.demote[class.code()] {
                            let twin = match InPort::ALL[slot] {
                                InPort::WestEx => InPort::WestSh,
                                InPort::NorthEx => InPort::NorthSh,
                                other => other,
                            };
                            let demoted = self.prefs_for(class, twin, at, self.pool.dst(idx));
                            debug_assert!(
                                demoted.as_set().intersect(dead).is_empty(),
                                "demoted prefs must avoid dead express links"
                            );
                            self.stats.rerouted += 1;
                            self.stats.fallback_demotions += 1;
                            if S::ENABLED {
                                sink.emit(&SimEvent::FaultReroute {
                                    cycle: self.cycle,
                                    node,
                                    packet: self.pool.get(idx).id,
                                    avoided: productive
                                        .iter()
                                        .next()
                                        .expect("stranding requires productive outputs"),
                                });
                            }
                            prefs_buf[i] = demoted;
                        } else {
                            let pkt = self.pool.remove(idx);
                            self.in_flight -= 1;
                            self.stats.dropped += 1;
                            if S::ENABLED {
                                sink.emit(&SimEvent::FaultDrop {
                                    cycle: self.cycle,
                                    node,
                                    packet: pkt.id,
                                    link: productive.iter().next(),
                                    corrupted: false,
                                });
                            }
                            continue;
                        }
                    }
                    inputs[kept] = inputs[i];
                    prefs_buf[kept] = prefs_buf[i];
                    kept += 1;
                }
                n_inputs = kept;
            }
            // Dead links can shrink the output set below Hall's condition
            // (the FULL router is exactly tight at four inputs), so the
            // faulted path uses the non-panicking allocator and drops the
            // stranded loser; the healthy path keeps the hard guarantee.
            let assignment = if self.faults.is_some() {
                try_allocate(&prefs_buf[..n_inputs], avail, exit_policy)
            } else {
                allocate(&prefs_buf[..n_inputs], avail, exit_policy)
            };

            let mut taken = [OutPort::Exit; MAX_IN_FLIGHT];
            let mut n_taken = 0;

            for i in 0..n_inputs {
                let (slot, idx) = inputs[i];
                let prefs = prefs_buf[i];
                let Some(out) = assignment[i] else {
                    // Stranded by a dead link: a bufferless router has
                    // nowhere to park the packet. Fallback chain, step 2:
                    // in a multi-channel bank the loser switches to a
                    // sibling channel; otherwise the chain is exhausted
                    // and the packet is lost (counted in `dropped`;
                    // conservation holds either way — an evicted packet
                    // stays in flight at the bank level).
                    debug_assert!(!dead.is_empty(), "healthy routers never strand inputs");
                    let pkt = self.pool.remove(idx);
                    self.in_flight -= 1;
                    if self.evict_enabled && self.fallback.alternate[class.code()] {
                        self.stats.rerouted += 1;
                        self.stats.fallback_channel_switches += 1;
                        if S::ENABLED {
                            sink.emit(&SimEvent::FaultReroute {
                                cycle: self.cycle,
                                node,
                                packet: pkt.id,
                                avoided: dead
                                    .intersect(prefs.productive())
                                    .iter()
                                    .next()
                                    .or_else(|| dead.iter().next())
                                    .expect("stranding requires dead links"),
                            });
                        }
                        self.evicted.push((node, pkt));
                        continue;
                    }
                    self.stats.dropped += 1;
                    if S::ENABLED {
                        sink.emit(&SimEvent::FaultDrop {
                            cycle: self.cycle,
                            node,
                            packet: pkt.id,
                            link: dead.iter().next(),
                            corrupted: false,
                        });
                    }
                    continue;
                };
                let mut pkt = *self.pool.get(idx);
                taken[n_taken] = out;
                n_taken += 1;
                self.stats.route_decisions += 1;
                if let Some(probe) = self.probe.as_mut() {
                    probe.record(self.cycle, node, at, pkt.id, out);
                }
                if S::ENABLED {
                    sink.emit(&SimEvent::RouteDecision {
                        cycle: self.cycle,
                        node,
                        packet: pkt.id,
                        in_port: Some(InPort::ALL[slot]),
                        out,
                        src: pkt.src,
                        dst: pkt.dst,
                        hops: pkt.total_hops(),
                    });
                }

                // Statistics classification.
                if !prefs.productive().contains(out) {
                    pkt.deflections += 1;
                    self.stats.ports.deflections[slot] += 1;
                    if S::ENABLED {
                        sink.emit(&SimEvent::Deflect {
                            cycle: self.cycle,
                            node,
                            packet: pkt.id,
                            out,
                        });
                    }
                } else if prefs.wanted_express() && !out.is_express() && out != OutPort::Exit {
                    self.stats.ports.demotions[slot] += 1;
                }
                if !dead.is_empty() {
                    if let Some(avoided) = dead.intersect(prefs.productive()).iter().next() {
                        self.stats.rerouted += 1;
                        if S::ENABLED {
                            sink.emit(&SimEvent::FaultReroute {
                                cycle: self.cycle,
                                node,
                                packet: pkt.id,
                                avoided,
                            });
                        }
                    }
                }

                match out {
                    OutPort::Exit => {
                        debug_assert_eq!(pkt.dst, at);
                        self.pool.release(idx);
                        self.in_flight -= 1;
                        self.stats.delivered += 1;
                        let delivery = Delivery {
                            packet: pkt,
                            cycle: self.cycle + 1,
                        };
                        self.stats.total_latency.record(delivery.total_latency());
                        self.stats
                            .network_latency
                            .record(delivery.network_latency());
                        deliveries.push(delivery);
                        if S::ENABLED {
                            sink.emit(&SimEvent::Eject {
                                cycle: self.cycle,
                                node,
                                delivery,
                            });
                        }
                        if let Some(g) = gates.as_deref_mut() {
                            g.exit_allowed[node] = false;
                        }
                    }
                    _ => {
                        if S::ENABLED && out.is_express() {
                            sink.emit(&SimEvent::ExpressHop {
                                cycle: self.cycle,
                                node,
                                packet: pkt.id,
                                span: d,
                            });
                        }
                        self.forward(idx, &mut pkt, at, out, n, d, sink)
                    }
                }
            }

            // PE injection: lowest priority, never deflects.
            let inject_ok = gates.as_ref().is_none_or(|g| g.inject_allowed[node]);
            let fault_stalled = self
                .faults
                .as_ref()
                .is_some_and(|f| f.injector_stalled(node, self.cycle));
            if inject_ok && fault_stalled {
                // A stalled injector holds its queue; count the stall so
                // the degradation shows up in the report.
                if queues.peek(node).is_some() {
                    self.stats.injection_stalls += 1;
                    if S::ENABLED {
                        sink.emit(&queues.stall_event(self.cycle, node));
                    }
                }
            } else if inject_ok {
                if let Some(pending) = queues.peek(node) {
                    let pe_prefs = self.prefs_for(class, InPort::Pe, at, pending.dst);
                    // Use the un-gated availability: the gate only removed
                    // Exit, and an Exit injection (self-send) must also
                    // respect it, so keep `avail` as adjusted above.
                    match try_inject(&pe_prefs, avail, &taken[..n_taken], exit_policy) {
                        Some(out) => {
                            let pending = queues.pop(node).unwrap();
                            let mut pkt = Packet::new(
                                pending.id,
                                at,
                                pending.dst,
                                pending.enqueued_at,
                                pending.tag,
                            );
                            pkt.injected_at = self.cycle;
                            self.stats.injected += 1;
                            self.stats.route_decisions += 1;
                            if let Some(probe) = self.probe.as_mut() {
                                probe.record(self.cycle, node, at, pkt.id, out);
                            }
                            if S::ENABLED {
                                sink.emit(&SimEvent::Inject {
                                    cycle: self.cycle,
                                    node,
                                    packet: pkt.id,
                                    dst: pkt.dst,
                                    out,
                                    queue_wait: self.cycle.saturating_sub(pkt.enqueued_at),
                                });
                            }
                            if let Some(g) = gates.as_deref_mut() {
                                g.inject_allowed[node] = false;
                            }
                            if !dead.is_empty() {
                                if let Some(avoided) =
                                    dead.intersect(pe_prefs.productive()).iter().next()
                                {
                                    self.stats.rerouted += 1;
                                    if S::ENABLED {
                                        sink.emit(&SimEvent::FaultReroute {
                                            cycle: self.cycle,
                                            node,
                                            packet: pkt.id,
                                            avoided,
                                        });
                                    }
                                }
                            }
                            match out {
                                OutPort::Exit => {
                                    // Self-send: delivered without
                                    // traversing any link.
                                    self.stats.delivered += 1;
                                    let delivery = Delivery {
                                        packet: pkt,
                                        cycle: self.cycle + 1,
                                    };
                                    self.stats.total_latency.record(delivery.total_latency());
                                    self.stats
                                        .network_latency
                                        .record(delivery.network_latency());
                                    deliveries.push(delivery);
                                    if S::ENABLED {
                                        sink.emit(&SimEvent::Eject {
                                            cycle: self.cycle,
                                            node,
                                            delivery,
                                        });
                                    }
                                    if let Some(g) = gates.as_deref_mut() {
                                        g.exit_allowed[node] = false;
                                    }
                                }
                                _ => {
                                    self.in_flight += 1;
                                    if S::ENABLED && out.is_express() {
                                        sink.emit(&SimEvent::ExpressHop {
                                            cycle: self.cycle,
                                            node,
                                            packet: pkt.id,
                                            span: d,
                                        });
                                    }
                                    if self.pool.free_slots() > 0 {
                                        self.stats.pool_reuse += 1;
                                    }
                                    let idx = self.pool.insert(pkt);
                                    self.forward(idx, &mut pkt, at, out, n, d, sink);
                                }
                            }
                        }
                        None => {
                            self.stats.injection_stalls += 1;
                            if S::ENABLED {
                                sink.emit(&queues.stall_event(self.cycle, node));
                            }
                        }
                    }
                }
            }
        }

        // Rotate the timing wheel: the front frame becomes the next
        // cycle's input registers, and a fresh frame joins the back.
        let mut front = self.wheel.pop_front().expect("wheel is never empty");
        std::mem::swap(&mut self.regs, &mut front);
        front.fill(EMPTY_SLOT);
        self.wheel.push_back(front);
        if let Some(probe) = self.probe.as_mut() {
            probe.tick();
        }
        if S::ENABLED {
            sink.end_cycle(self.cycle);
        }
        self.cycle += 1;
    }

    /// Resolves route preferences per the configured [`RouteMode`].
    #[inline]
    fn prefs_for(&self, class: RouterClass, port: InPort, at: Coord, dst: Coord) -> RoutePrefs {
        match &self.lut {
            Some(lut) => lut.lookup(class, port, at, dst),
            None => compute_prefs(&self.cfg, class, port, at, dst),
        }
    }

    /// Writes the packet in pool slot `idx` into the downstream router's
    /// input register for the chosen output port, updating hop counters.
    /// Pipelined links place the packet deeper into the timing wheel
    /// (one extra cycle per extra link register). A transiently faulted
    /// link consumes the hop but loses the packet (counted in `dropped`;
    /// conservation: the in-flight count drops with it).
    #[allow(clippy::too_many_arguments)] // hot path: scalars beat a params struct here
    fn forward<S: EventSink>(
        &mut self,
        idx: u32,
        pkt: &mut Packet,
        at: Coord,
        out: OutPort,
        n: u16,
        d: u16,
        sink: &mut S,
    ) {
        let (target, in_slot) = match out {
            OutPort::EastSh => (at.east(1, n), InPort::WestSh),
            OutPort::EastEx => (at.east(d, n), InPort::WestEx),
            OutPort::SouthSh => (at.south(1, n), InPort::NorthSh),
            OutPort::SouthEx => (at.south(d, n), InPort::NorthEx),
            OutPort::Exit => unreachable!("exit is not a link"),
        };
        let pipeline = self.cfg.link_pipeline();
        let delay = if out.is_express() {
            pkt.express_hops += 1;
            self.stats.link_usage.express_hops += 1;
            pipeline.express_cycles()
        } else {
            pkt.short_hops += 1;
            self.stats.link_usage.short_hops += 1;
            pipeline.short_cycles()
        };
        let link_fault = self
            .faults
            .as_ref()
            .and_then(|f| f.link_fault(at.to_node_id(n), out, self.cycle));
        if let Some(corrupted) = link_fault {
            self.pool.release(idx);
            self.in_flight -= 1;
            self.stats.dropped += 1;
            if S::ENABLED {
                sink.emit(&SimEvent::FaultDrop {
                    cycle: self.cycle,
                    node: at.to_node_id(n),
                    packet: pkt.id,
                    link: Some(out),
                    corrupted,
                });
            }
            return;
        }
        self.pool.write(idx, pkt);
        let frame = &mut self.wheel[delay as usize - 1];
        let reg = &mut frame[target.to_node_id(n) * MAX_IN_FLIGHT + in_slot.index()];
        debug_assert!(*reg == EMPTY_SLOT, "two packets on one link register");
        *reg = idx;
    }

    /// Record that `count` packets were enqueued (driver bookkeeping so
    /// the stats snapshot is self-contained).
    pub fn note_enqueued(&mut self, count: u64) {
        self.stats.enqueued += count;
    }

    /// Snapshot of every packet currently on a link register, with its
    /// position and input port (diagnostics / debugging aid).
    pub fn in_flight_packets(&self) -> Vec<(Coord, InPort, Packet)> {
        let mut out = Vec::with_capacity(self.in_flight);
        for (i, &reg) in self.regs.iter().enumerate() {
            if reg != EMPTY_SLOT {
                let (node, slot) = (i / MAX_IN_FLIGHT, i % MAX_IN_FLIGHT);
                out.push((self.coords[node], InPort::ALL[slot], *self.pool.get(reg)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FtPolicy, NocConfig};

    fn drain(noc: &mut Noc, queues: &mut InjectQueues, max_cycles: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for _ in 0..max_cycles {
            noc.step(queues, &mut out, None);
            if queues.is_empty() && noc.in_flight() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn single_packet_east_only() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(16);
        // (0,0) -> (3,0): 3 east hops + injection cycle.
        q.push(0, Coord::new(3, 0), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        let d = &dels[0];
        assert_eq!(d.packet.dst, Coord::new(3, 0));
        assert_eq!(d.packet.short_hops, 3);
        assert_eq!(d.packet.deflections, 0);
        // Inject at cycle 0 (arrives at router (1,0) for cycle 1), hops
        // at cycles 1, 2, exit decision at cycle 3 -> delivered cycle 4.
        assert_eq!(d.cycle, 4);
    }

    #[test]
    fn single_packet_xy_route() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(64);
        let src = Coord::new(1, 1).to_node_id(8);
        q.push(src, Coord::new(4, 5), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].packet.short_hops, 3 + 4); // dx=3, dy=4
        assert_eq!(dels[0].packet.deflections, 0);
    }

    #[test]
    fn wraparound_routing() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(16);
        let src = Coord::new(3, 3).to_node_id(4);
        q.push(src, Coord::new(0, 0), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].packet.short_hops, 2); // wrap east 1, wrap south 1
    }

    #[test]
    fn express_packet_uses_fast_lane() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(64);
        // (0,0) -> (4,0): dx=4, aligned; expect 2 express hops.
        q.push(0, Coord::new(4, 0), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].packet.express_hops, 2);
        assert_eq!(dels[0].packet.short_hops, 0);
    }

    #[test]
    fn express_then_short_upgrade_path() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(64);
        // (0,0) -> (5,0): dx=5 (odd). Injects short (dx=5 unaligned),
        // after one short hop dx=4 -> upgrades to express for 2 hops.
        q.push(0, Coord::new(5, 0), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        let p = &dels[0].packet;
        assert_eq!(p.short_hops, 1);
        assert_eq!(p.express_hops, 2);
    }

    #[test]
    fn express_turn_full_path() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(64);
        // (0,3) -> (3,7): the "start slow, upgrade" path of Figure 8.
        // dx=3 (odd): one short hop, then dx=2 upgrades to X express.
        // At the turn, dy=4 is aligned: W_ex -> S_ex, two express hops.
        let src = Coord::new(0, 3).to_node_id(8);
        q.push(src, Coord::new(3, 7), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        let p = &dels[0].packet;
        assert_eq!(p.short_hops, 1, "unexpected path: {p:?}");
        assert_eq!(p.express_hops, 3, "unexpected path: {p:?}");
    }

    #[test]
    fn inject_policy_express_isolated_end_to_end() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Inject).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(64);
        // Fully aligned path: all express.
        q.push(0, Coord::new(4, 4), 0, 0);
        let dels = drain(&mut noc, &mut q, 100);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].packet.express_hops, 4);
        assert_eq!(dels[0].packet.short_hops, 0);
    }

    #[test]
    fn self_send_delivers_without_hops() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(16);
        q.push(5, Coord::new(1, 1), 0, 0); // node 5 == (1,1)
        let dels = drain(&mut noc, &mut q, 10);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].packet.total_hops(), 0);
    }

    #[test]
    fn contention_deflects_and_still_delivers() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(16);
        // Everyone sends to (0,0): heavy S_sh/exit contention.
        for node in 1..16 {
            q.push(node, Coord::new(0, 0), 0, 0);
        }
        let dels = drain(&mut noc, &mut q, 10_000);
        assert_eq!(dels.len(), 15, "all packets must be delivered");
        assert_eq!(noc.in_flight(), 0);
        assert!(noc.stats().ports.total_deflections() > 0);
    }

    #[test]
    fn full_random_load_all_delivered() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for cfg in [
            NocConfig::hoplite(8).unwrap(),
            NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap(),
            NocConfig::fasttrack(8, 2, 2, FtPolicy::Full).unwrap(),
            NocConfig::fasttrack(8, 2, 1, FtPolicy::Inject).unwrap(),
        ] {
            let name = cfg.name();
            let mut noc = Noc::new(cfg);
            let mut q = InjectQueues::new(64);
            let mut count = 0;
            for node in 0..64usize {
                for _ in 0..20 {
                    let dst = loop {
                        let d = Coord::new(rng.gen_range(0..8), rng.gen_range(0..8));
                        if d.to_node_id(8) != node {
                            break d;
                        }
                    };
                    q.push(node, dst, 0, 0);
                    count += 1;
                }
            }
            let dels = drain(&mut noc, &mut q, 100_000);
            assert_eq!(dels.len(), count, "{name}: livelock or loss");
            assert_eq!(noc.stats().delivered as usize, count);
        }
    }

    #[test]
    fn gates_limit_one_delivery_per_cycle() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut noc = Noc::new(cfg);
        let mut q = InjectQueues::new(16);
        for node in 1..6 {
            q.push(node, Coord::new(0, 0), 0, 0);
        }
        let mut gates = StepGates::new(16);
        let mut dels = Vec::new();
        for _ in 0..1000 {
            gates.reset();
            noc.step(&mut q, &mut dels, Some(&mut gates));
            if q.is_empty() && noc.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(dels.len(), 5);
        // No two deliveries at the same node in the same cycle.
        let mut seen = std::collections::HashSet::new();
        for d in &dels {
            assert!(seen.insert((d.packet.dst, d.cycle)));
        }
    }
}
