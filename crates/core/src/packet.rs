//! Packets and their lifetime statistics.
//!
//! Hoplite-family NoCs route wide single-flit packets: the entire payload
//! (up to a cacheline at 512 b datawidth) moves as one unit per cycle, so the
//! simulator models a packet as a single routable token.

use crate::geom::Coord;

/// Unique packet identifier assigned at injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// A single-flit packet in flight (or delivered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Identifier, unique within a simulation run.
    pub id: PacketId,
    /// Source node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Cycle at which the packet entered its source queue.
    pub enqueued_at: u64,
    /// Cycle at which the packet left the PE and entered the NoC.
    pub injected_at: u64,
    /// Number of short-link traversals so far.
    pub short_hops: u32,
    /// Number of express-link traversals so far (each covers `D` routers).
    pub express_hops: u32,
    /// Number of deflections suffered (assigned an output other than the
    /// first-choice productive one).
    pub deflections: u32,
    /// Opaque workload tag (e.g. a trace event id); carried untouched.
    pub tag: u64,
}

impl Packet {
    /// Creates a packet about to be enqueued at its source.
    pub fn new(id: PacketId, src: Coord, dst: Coord, enqueued_at: u64, tag: u64) -> Self {
        Packet {
            id,
            src,
            dst,
            enqueued_at,
            injected_at: enqueued_at,
            short_hops: 0,
            express_hops: 0,
            deflections: 0,
            tag,
        }
    }

    /// Total link traversals (short + express), i.e. cycles spent on wires.
    pub fn total_hops(&self) -> u32 {
        self.short_hops + self.express_hops
    }

    /// Latency from source-queue entry to the given delivery cycle.
    ///
    /// This includes source queueing delay, which is what makes latency
    /// curves climb steeply at saturation (paper Figure 12).
    pub fn total_latency(&self, delivered_at: u64) -> u64 {
        delivered_at.saturating_sub(self.enqueued_at)
    }

    /// Latency from NoC injection to the given delivery cycle.
    pub fn network_latency(&self, delivered_at: u64) -> u64 {
        delivered_at.saturating_sub(self.injected_at)
    }
}

/// A packet awaiting injection in a source queue: everything about it is
/// known except its wire-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingPacket {
    /// Identifier assigned at enqueue time.
    pub id: PacketId,
    /// Destination node.
    pub dst: Coord,
    /// Cycle at which it became available for injection.
    pub enqueued_at: u64,
    /// Opaque workload tag.
    pub tag: u64,
}

/// A delivered packet together with its delivery cycle, handed to traffic
/// sources and statistics collectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The packet as it arrived.
    pub packet: Packet,
    /// Cycle at which it was consumed by the destination PE.
    pub cycle: u64,
}

impl Delivery {
    /// End-to-end latency including source queueing.
    pub fn total_latency(&self) -> u64 {
        self.packet.total_latency(self.cycle)
    }

    /// In-network latency only.
    pub fn network_latency(&self) -> u64 {
        self.packet.network_latency(self.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::new(PacketId(7), Coord::new(0, 0), Coord::new(3, 2), 10, 42)
    }

    #[test]
    fn new_packet_has_zero_stats() {
        let p = pkt();
        assert_eq!(p.short_hops, 0);
        assert_eq!(p.express_hops, 0);
        assert_eq!(p.deflections, 0);
        assert_eq!(p.total_hops(), 0);
        assert_eq!(p.tag, 42);
    }

    #[test]
    fn latency_accounting() {
        let mut p = pkt();
        p.injected_at = 15; // waited 5 cycles in the source queue
        assert_eq!(p.total_latency(40), 30);
        assert_eq!(p.network_latency(40), 25);
    }

    #[test]
    fn latency_saturating() {
        let p = pkt();
        assert_eq!(p.total_latency(5), 0); // never negative
    }

    #[test]
    fn delivery_latencies() {
        let mut p = pkt();
        p.injected_at = 12;
        let d = Delivery {
            packet: p,
            cycle: 30,
        };
        assert_eq!(d.total_latency(), 20);
        assert_eq!(d.network_latency(), 18);
    }

    #[test]
    fn total_hops_sums_both_kinds() {
        let mut p = pkt();
        p.short_hops = 3;
        p.express_hops = 2;
        assert_eq!(p.total_hops(), 5);
    }
}
