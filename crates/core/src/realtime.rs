//! Real-time characterization: exact zero-load latencies and
//! rate-regulated worst-case measurement.
//!
//! The paper's livelock scheme builds on HopliteRT (its ref \[30\]), whose
//! concern is *worst-case* traversal time. This module provides the two
//! ingredients a real-time analysis of a FastTrack NoC needs:
//!
//! * [`zero_load_latency`] — the exact, deterministic latency of a
//!   packet with no contention anywhere, per source/destination pair
//!   (the floor every observed latency must respect; the engine is
//!   tested to hit it exactly for lone packets), and
//! * a rate-regulated traffic source (`fasttrack-traffic`'s
//!   `RegulatedSource`) — the admission model under which real-time NoC
//!   bounds are stated — pairs with these floors in the integration
//!   tests.

use crate::config::{FtPolicy, NocConfig};
use crate::geom::Coord;
use crate::routing::inject_express_eligible;

/// Exact latency, in cycles, of a lone packet from `src` to `dst`
/// (enqueue at an idle PE through delivery), replicating the routing
/// function's lane decisions with no contention: X-phase express
/// upgrades wherever warranted, a single Y-lane decision at the turn,
/// plus one cycle for the exit stage.
pub fn zero_load_latency(cfg: &NocConfig, src: Coord, dst: Coord) -> u64 {
    let n = cfg.n();
    if src == dst {
        return 1; // self-send: delivered at the next edge
    }
    let mut cycles = 0u64;
    let mut at = src;
    let mut first_hop = true;
    // X phase: express boarding allowed at injection and via W_sh/W_ex
    // upgrades at any express-capable router (Full policy); the Inject
    // policy decides the whole path at the PE.
    while at.x != dst.x {
        let dx = at.dx_to(dst, n);
        let express_ok = match cfg.ft_policy() {
            None => false,
            Some(FtPolicy::Full) => cfg.has_express_at(at.x) && cfg.express_worthwhile(dx),
            Some(FtPolicy::Inject) => first_hop && inject_express_eligible(cfg, at, dst),
        };
        if express_ok {
            // Ride the express lane for the whole aligned stretch.
            let k = cfg
                .express_hops_for(dx)
                .expect("worthwhile implies reachable");
            for _ in 0..k {
                at = at.east(cfg.d(), n);
            }
            cycles += k as u64;
        } else {
            at = at.east(1, n);
            cycles += 1;
        }
        first_hop = false;
    }
    // Y phase: one boarding decision at entry (N_sh cannot upgrade).
    let dy = at.dy_to(dst, n);
    if dy > 0 {
        let board = match cfg.ft_policy() {
            None => false,
            Some(FtPolicy::Full) => cfg.has_express_at(at.y) && cfg.express_worthwhile(dy),
            Some(FtPolicy::Inject) => {
                (first_hop || src.dx_to(dst, n) > 0) && inject_express_eligible(cfg, src, dst)
            }
        };
        if board {
            cycles += cfg
                .express_hops_for(dy)
                .expect("worthwhile implies reachable") as u64;
        } else {
            cycles += dy as u64;
        }
    }
    cycles + 1 // exit stage
}

/// Zero-load latency statistics over all source/destination pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeroLoadProfile {
    /// Mean over all ordered pairs (excluding self-sends).
    pub mean: f64,
    /// Worst pair.
    pub max: u64,
}

/// Computes the zero-load profile of a configuration.
pub fn zero_load_profile(cfg: &NocConfig) -> ZeroLoadProfile {
    let n = cfg.n();
    let mut sum = 0u64;
    let mut max = 0u64;
    let mut count = 0u64;
    for s in 0..cfg.num_nodes() {
        for d in 0..cfg.num_nodes() {
            if s == d {
                continue;
            }
            let lat = zero_load_latency(cfg, Coord::from_node_id(s, n), Coord::from_node_id(d, n));
            sum += lat;
            max = max.max(lat);
            count += 1;
        }
    }
    ZeroLoadProfile {
        mean: sum as f64 / count as f64,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noc::Noc;
    use crate::queue::InjectQueues;

    fn ft(n: u16, d: u16, r: u16) -> NocConfig {
        NocConfig::fasttrack(n, d, r, FtPolicy::Full).unwrap()
    }

    /// The analytic zero-load latency matches the engine exactly for
    /// every pair on several configurations.
    #[test]
    fn zero_load_matches_engine_exactly() {
        for cfg in [
            NocConfig::hoplite(4).unwrap(),
            NocConfig::hoplite(8).unwrap(),
            ft(8, 2, 1),
            ft(8, 2, 2),
            ft(8, 4, 2),
            NocConfig::fasttrack(8, 2, 1, FtPolicy::Inject).unwrap(),
        ] {
            let n = cfg.n();
            for s in 0..cfg.num_nodes() {
                for d in 0..cfg.num_nodes() {
                    let (src, dst) = (Coord::from_node_id(s, n), Coord::from_node_id(d, n));
                    let mut noc = Noc::new(cfg.clone());
                    let mut q = InjectQueues::new(cfg.num_nodes());
                    q.push(s, dst, 0, 0);
                    let mut dels = Vec::new();
                    for _ in 0..10_000 {
                        noc.step(&mut q, &mut dels, None);
                        if !dels.is_empty() {
                            break;
                        }
                    }
                    assert_eq!(
                        dels[0].total_latency(),
                        zero_load_latency(&cfg, src, dst),
                        "{}: {src} -> {dst}",
                        cfg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fasttrack_cuts_zero_load_latency() {
        let hoplite = zero_load_profile(&NocConfig::hoplite(8).unwrap());
        let fast = zero_load_profile(&ft(8, 2, 1));
        assert!(
            fast.mean < 0.8 * hoplite.mean,
            "{} vs {}",
            fast.mean,
            hoplite.mean
        );
        assert!(fast.max < hoplite.max);
        // Hoplite 8x8 worst pair: 7 + 7 hops + exit.
        assert_eq!(hoplite.max, 15);
    }
}
