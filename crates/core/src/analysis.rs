//! Analytical channel-load and saturation-throughput bounds.
//!
//! Deflection routing cannot exceed what the wiring admits: for a given
//! traffic pattern, the most-loaded channel bounds the sustainable
//! injection rate. This module computes, for any [`NocConfig`] and an
//! explicit traffic matrix, the ideal (contention-free, minimal-path)
//! load on every short and express link, and from it an upper bound on
//! saturation throughput. The simulator should approach — and never
//! exceed — these bounds; integration tests enforce both directions.
//!
//! The model assumes DOR paths with greedy express usage (ride the
//! express lane whenever the remaining offset is express-reachable in no
//! more cycles than short hops, exactly like the routing function) and
//! charges each traversal to the links it crosses.

use crate::config::NocConfig;
use crate::geom::Coord;

/// Ideal per-link loads for one traffic matrix, in expected packets per
/// cycle per link, at an injection rate of 1 packet/PE/cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelLoads {
    n: u16,
    /// `east_short[node]`: load on the E_sh link leaving `node`.
    pub east_short: Vec<f64>,
    /// Load on the E_ex link leaving each node (0 where absent).
    pub east_express: Vec<f64>,
    /// Load on the S_sh link leaving each node.
    pub south_short: Vec<f64>,
    /// Load on the S_ex link leaving each node (0 where absent).
    pub south_express: Vec<f64>,
    /// Load on each node's exit (delivery) port.
    pub exit: Vec<f64>,
}

impl ChannelLoads {
    /// The maximum load over all links (the bottleneck channel).
    pub fn max_link_load(&self) -> f64 {
        let links = self
            .east_short
            .iter()
            .chain(&self.east_express)
            .chain(&self.south_short)
            .chain(&self.south_express);
        links.fold(0.0f64, |a, &b| a.max(b))
    }

    /// The maximum delivery-port load (one delivery per PE per cycle).
    pub fn max_exit_load(&self) -> f64 {
        self.exit.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Upper bound on the sustainable injection rate (packets per cycle
    /// per PE): the reciprocal of the binding resource load.
    ///
    /// Deflections only add load, so real (simulated) saturation
    /// throughput is at or below this bound.
    pub fn saturation_bound(&self) -> f64 {
        let binding = self.max_link_load().max(self.max_exit_load());
        if binding <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / binding
        }
    }

    /// Total ideal link traversals per injected packet (average minimal
    /// hop count under the express-greedy DOR policy).
    pub fn mean_hops_per_packet(&self, total_rate: f64) -> f64 {
        if total_rate <= 0.0 {
            return 0.0;
        }
        let total: f64 = self
            .east_short
            .iter()
            .chain(&self.east_express)
            .chain(&self.south_short)
            .chain(&self.south_express)
            .sum();
        total / total_rate
    }
}

/// A traffic matrix: `rate[src][dst]` in packets per cycle (callers
/// usually build it from a `Pattern`-style distribution summing to 1
/// per source row).
pub type TrafficMatrix = Vec<Vec<f64>>;

/// Builds a uniform-random traffic matrix (each PE sends to every other
/// PE with equal probability) at 1 packet/PE/cycle.
pub fn uniform_traffic(nodes: usize) -> TrafficMatrix {
    let p = 1.0 / (nodes as f64 - 1.0);
    (0..nodes)
        .map(|s| (0..nodes).map(|d| if s == d { 0.0 } else { p }).collect())
        .collect()
}

/// Builds a permutation traffic matrix from a destination map.
pub fn permutation_traffic(nodes: usize, dst_of: impl Fn(usize) -> usize) -> TrafficMatrix {
    let mut m = vec![vec![0.0; nodes]; nodes];
    for (s, row) in m.iter_mut().enumerate() {
        row[dst_of(s)] = 1.0;
    }
    m
}

/// Computes ideal channel loads for `traffic` on `cfg`.
///
/// # Panics
///
/// Panics if the matrix dimensions do not match the configuration.
pub fn channel_loads(cfg: &NocConfig, traffic: &TrafficMatrix) -> ChannelLoads {
    let nodes = cfg.num_nodes();
    assert_eq!(traffic.len(), nodes, "traffic matrix row count");
    let n = cfg.n();
    let mut loads = ChannelLoads {
        n,
        east_short: vec![0.0; nodes],
        east_express: vec![0.0; nodes],
        south_short: vec![0.0; nodes],
        south_express: vec![0.0; nodes],
        exit: vec![0.0; nodes],
    };

    for (s, row) in traffic.iter().enumerate() {
        assert_eq!(row.len(), nodes, "traffic matrix column count");
        let src = Coord::from_node_id(s, n);
        for (d, &rate) in row.iter().enumerate() {
            if rate <= 0.0 {
                continue;
            }
            let dst = Coord::from_node_id(d, n);
            walk_ideal_path(cfg, src, dst, rate, &mut loads);
        }
    }
    loads
}

/// Walks the deflection-free DOR path with the router's actual lane
/// rules and charges `rate` to each link crossed.
///
/// X phase: packets may upgrade onto the express lane at any
/// express-capable router (`W_sh → E_ex` exists). Y phase: the express
/// lane is boardable only at the phase entry — the turn router or the
/// injection point (`N_sh` has no upgrade path) — so the whole Y leg is
/// decided once.
fn walk_ideal_path(cfg: &NocConfig, src: Coord, dst: Coord, rate: f64, loads: &mut ChannelLoads) {
    let n = cfg.n();
    let mut at = src;
    // X phase: greedy upgrades.
    while at.x != dst.x {
        let dx = at.dx_to(dst, n);
        if cfg.has_express_at(at.x) && cfg.express_worthwhile(dx) {
            loads.east_express[at.to_node_id(n)] += rate;
            at = at.east(cfg.d(), n);
        } else {
            loads.east_short[at.to_node_id(n)] += rate;
            at = at.east(1, n);
        }
    }
    // Y phase: one boarding decision at entry.
    let dy = at.dy_to(dst, n);
    let board = dy > 0 && cfg.has_express_at(at.y) && cfg.express_worthwhile(dy);
    if board {
        while at.y != dst.y {
            loads.south_express[at.to_node_id(n)] += rate;
            at = at.south(cfg.d(), n);
        }
    } else {
        while at.y != dst.y {
            loads.south_short[at.to_node_id(n)] += rate;
            at = at.south(1, n);
        }
    }
    loads.exit[at.to_node_id(n)] += rate;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FtPolicy, NocConfig};

    fn hoplite(n: u16) -> NocConfig {
        NocConfig::hoplite(n).unwrap()
    }

    fn ft(n: u16, d: u16, r: u16) -> NocConfig {
        NocConfig::fasttrack(n, d, r, FtPolicy::Full).unwrap()
    }

    #[test]
    fn uniform_matrix_rows_sum_to_one() {
        let m = uniform_traffic(16);
        for row in &m {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn permutation_matrix_is_one_hot() {
        let m = permutation_traffic(4, |s| (s + 1) % 4);
        assert_eq!(m[0][1], 1.0);
        assert_eq!(m[3][0], 1.0);
        assert_eq!(m[0].iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn single_flow_charges_its_path() {
        let cfg = hoplite(4);
        let mut m = vec![vec![0.0; 16]; 16];
        // (0,0) -> (2,1): two east, one south.
        m[0][Coord::new(2, 1).to_node_id(4)] = 1.0;
        let loads = channel_loads(&cfg, &m);
        assert_eq!(loads.east_short[Coord::new(0, 0).to_node_id(4)], 1.0);
        assert_eq!(loads.east_short[Coord::new(1, 0).to_node_id(4)], 1.0);
        assert_eq!(loads.south_short[Coord::new(2, 0).to_node_id(4)], 1.0);
        assert_eq!(loads.exit[Coord::new(2, 1).to_node_id(4)], 1.0);
        assert_eq!(loads.east_short.iter().sum::<f64>(), 2.0);
        assert_eq!(loads.mean_hops_per_packet(1.0), 3.0);
    }

    #[test]
    fn express_path_offloads_short_links() {
        let cfg = ft(8, 2, 1);
        let mut m = vec![vec![0.0; 64]; 64];
        m[0][Coord::new(4, 0).to_node_id(8)] = 1.0; // dx=4, aligned
        let loads = channel_loads(&cfg, &m);
        assert_eq!(loads.east_short.iter().sum::<f64>(), 0.0);
        assert_eq!(loads.east_express[Coord::new(0, 0).to_node_id(8)], 1.0);
        assert_eq!(loads.east_express[Coord::new(2, 0).to_node_id(8)], 1.0);
        assert_eq!(loads.mean_hops_per_packet(1.0), 2.0);
    }

    #[test]
    fn hoplite_uniform_saturation_bound() {
        // Classic result: a unidirectional ring of size N under uniform
        // traffic carries ~N/2 average X hops per packet over N links;
        // the analytical bound for an 8x8 Hoplite torus lands near
        // 0.2-0.3 pkt/cycle/PE, well above the simulator's deflection-
        // limited ~0.11 but the same order.
        let cfg = hoplite(8);
        let loads = channel_loads(&cfg, &uniform_traffic(64));
        let bound = loads.saturation_bound();
        assert!((0.15..=0.5).contains(&bound), "bound {bound}");
    }

    #[test]
    fn fasttrack_raises_the_bound() {
        let uniform = uniform_traffic(64);
        let b_hoplite = channel_loads(&hoplite(8), &uniform).saturation_bound();
        let b_ft = channel_loads(&ft(8, 2, 1), &uniform).saturation_bound();
        assert!(
            b_ft > 1.3 * b_hoplite,
            "express links must raise the wiring bound: {b_hoplite} -> {b_ft}"
        );
        // Depopulation sits in between.
        let b_depop = channel_loads(&ft(8, 2, 2), &uniform).saturation_bound();
        assert!(b_depop > b_hoplite && b_depop <= b_ft + 1e-12);
    }

    #[test]
    fn transpose_bound_is_exit_or_turn_limited() {
        // Transpose on Hoplite: every packet of row y turns at column y —
        // the S_sh link out of (y,y) carries the whole row.
        let cfg = hoplite(8);
        let m = permutation_traffic(64, |s| {
            let c = Coord::from_node_id(s, 8);
            Coord::new(c.y, c.x).to_node_id(8)
        });
        let loads = channel_loads(&cfg, &m);
        // Bound ~ 1/7: seven packets (all but the diagonal one) share
        // the turn link.
        let bound = loads.saturation_bound();
        assert!((0.12..=0.2).contains(&bound), "bound {bound}");
    }

    #[test]
    fn mean_hops_shrink_with_express() {
        let uniform = uniform_traffic(64);
        let h = channel_loads(&hoplite(8), &uniform).mean_hops_per_packet(64.0);
        let f = channel_loads(&ft(8, 2, 1), &uniform).mean_hops_per_packet(64.0);
        // Uniform mean one-way distance (self excluded): 64*7/63.
        assert!((h - 448.0 / 63.0).abs() < 0.01, "hoplite mean hops {h}");
        assert!(f < 0.75 * h, "express should cut cycle count: {f} vs {h}");
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn dimension_mismatch_panics() {
        channel_loads(&hoplite(4), &uniform_traffic(9));
    }
}
