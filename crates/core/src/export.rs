//! Dependency-free trace exporters: NDJSON event logs, Chrome
//! trace-event JSON, and per-epoch CSV time series.
//!
//! All three formats are produced by hand-rolled formatting (no serde):
//! every emitted field is a number or a fixed tag, field order is
//! hard-coded, and floats go through one shared formatter — so the same
//! simulation (same seed, same config) produces byte-identical output,
//! which the regression tests rely on.

use crate::metrics::EpochStats;
use crate::trace::{EventSink, SimEvent};

/// Formats a float with a fixed six-decimal precision (deterministic
/// across runs and platforms for the magnitudes we emit).
fn fmt_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// An [`EventSink`] that renders every event as one JSON object per line
/// (newline-delimited JSON).
///
/// Lines carry a fixed leading `cycle`/`kind`/`ch` triple followed by
/// kind-specific fields, so the log is both greppable and trivially
/// machine-parsed. The `ch` field is the channel most recently announced
/// via [`EventSink::set_channel`] (0 for single-channel runs).
#[derive(Debug, Clone, Default)]
pub struct NdjsonSink {
    buf: String,
    channel: usize,
    lines: u64,
}

impl NdjsonSink {
    /// An empty log.
    pub fn new() -> Self {
        NdjsonSink::default()
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The log so far, one JSON object per line.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the sink and returns the full log.
    pub fn into_string(self) -> String {
        self.buf
    }
}

impl EventSink for NdjsonSink {
    fn emit(&mut self, event: &SimEvent) {
        use std::fmt::Write as _;
        let c = event.cycle();
        let k = event.kind();
        let ch = self.channel;
        let buf = &mut self.buf;
        let _ = write!(buf, "{{\"cycle\":{c},\"kind\":\"{k}\",\"ch\":{ch}");
        match *event {
            SimEvent::Inject {
                node,
                packet,
                dst,
                out,
                queue_wait,
                ..
            } => {
                let _ = write!(
                    buf,
                    ",\"node\":{},\"packet\":{},\"dst_x\":{},\"dst_y\":{},\"out\":\"{}\",\"queue_wait\":{}",
                    node, packet.0, dst.x, dst.y, out, queue_wait
                );
            }
            SimEvent::RouteDecision {
                node,
                packet,
                in_port,
                out,
                dst,
                hops,
                ..
            } => {
                let _ = write!(buf, ",\"node\":{},\"packet\":{}", node, packet.0);
                match in_port {
                    Some(p) => {
                        let _ = write!(buf, ",\"in\":\"{p}\"");
                    }
                    None => buf.push_str(",\"in\":null"),
                }
                let _ = write!(
                    buf,
                    ",\"out\":\"{}\",\"dst_x\":{},\"dst_y\":{},\"hops\":{}",
                    out, dst.x, dst.y, hops
                );
            }
            SimEvent::Deflect {
                node, packet, out, ..
            } => {
                let _ = write!(
                    buf,
                    ",\"node\":{},\"packet\":{},\"out\":\"{}\"",
                    node, packet.0, out
                );
            }
            SimEvent::ExpressHop {
                node, packet, span, ..
            } => {
                let _ = write!(
                    buf,
                    ",\"node\":{},\"packet\":{},\"span\":{}",
                    node, packet.0, span
                );
            }
            SimEvent::Eject { node, delivery, .. } => {
                let p = &delivery.packet;
                let _ = write!(
                    buf,
                    ",\"node\":{},\"packet\":{},\"delivered_at\":{},\"total_latency\":{},\"network_latency\":{},\"short_hops\":{},\"express_hops\":{},\"deflections\":{}",
                    node,
                    p.id.0,
                    delivery.cycle,
                    delivery.total_latency(),
                    delivery.network_latency(),
                    p.short_hops,
                    p.express_hops,
                    p.deflections
                );
            }
            SimEvent::QueueStall { node, depth, .. } => {
                let _ = write!(buf, ",\"node\":{node},\"depth\":{depth}");
            }
            SimEvent::FaultDrop {
                node,
                packet,
                link,
                corrupted,
                ..
            } => {
                let _ = write!(buf, ",\"node\":{},\"packet\":{}", node, packet.0);
                match link {
                    Some(l) => {
                        let _ = write!(buf, ",\"link\":\"{l}\"");
                    }
                    None => buf.push_str(",\"link\":null"),
                }
                let _ = write!(buf, ",\"corrupted\":{corrupted}");
            }
            SimEvent::FaultReroute {
                node,
                packet,
                avoided,
                ..
            } => {
                let _ = write!(
                    buf,
                    ",\"node\":{},\"packet\":{},\"avoided\":\"{}\"",
                    node, packet.0, avoided
                );
            }
            SimEvent::WarmupReset { .. } | SimEvent::Truncated { .. } => {}
        }
        buf.push_str("}\n");
        self.lines += 1;
    }

    fn set_channel(&mut self, channel: usize) {
        self.channel = channel;
    }
}

/// An [`EventSink`] that builds a Chrome trace-event (`about:tracing` /
/// Perfetto) JSON document.
///
/// Each delivered packet becomes one complete (`"ph":"X"`) event on the
/// track of its *source* PE: `ts` is the injection cycle, `dur` the
/// in-network latency, and `args` carry hop/deflection detail. Driver
/// markers ([`SimEvent::WarmupReset`], [`SimEvent::Truncated`]) become
/// global instant events. Cycles map 1:1 to microseconds in the viewer.
#[derive(Debug, Clone)]
pub struct ChromeTraceSink {
    /// Torus side length, for mapping coordinates onto thread ids.
    n: u16,
    channel: usize,
    events: Vec<String>,
}

impl ChromeTraceSink {
    /// A sink for an `n × n` torus.
    pub fn new(n: u16) -> Self {
        ChromeTraceSink {
            n,
            channel: 0,
            events: Vec::new(),
        }
    }

    /// Number of trace events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the complete `{"traceEvents":[...]}` document.
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

impl EventSink for ChromeTraceSink {
    fn emit(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::Eject { delivery, .. } => {
                let p = &delivery.packet;
                let src = p.src.to_node_id(self.n);
                let dst = p.dst.to_node_id(self.n);
                // Zero-duration spans render invisibly; clamp to 1 cycle.
                let dur = delivery.network_latency().max(1);
                self.events.push(format!(
                    "{{\"name\":\"pkt{}\",\"cat\":\"packet\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"dst\":{},\"queue_wait\":{},\"short_hops\":{},\"express_hops\":{},\"deflections\":{}}}}}",
                    p.id.0,
                    p.injected_at,
                    dur,
                    self.channel,
                    src,
                    dst,
                    p.injected_at.saturating_sub(p.enqueued_at),
                    p.short_hops,
                    p.express_hops,
                    p.deflections
                ));
            }
            SimEvent::WarmupReset { cycle } => {
                self.events.push(format!(
                    "{{\"name\":\"warmup_reset\",\"cat\":\"driver\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":0,\"s\":\"g\"}}",
                    cycle, self.channel
                ));
            }
            SimEvent::Truncated { cycle } => {
                self.events.push(format!(
                    "{{\"name\":\"truncated\",\"cat\":\"driver\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":0,\"s\":\"g\"}}",
                    cycle, self.channel
                ));
            }
            _ => {}
        }
    }

    fn set_channel(&mut self, channel: usize) {
        self.channel = channel;
    }
}

/// Renders completed epochs (see
/// [`crate::metrics::WindowedMetrics::finish`]) as a CSV time series,
/// one row per epoch, with a header row.
pub fn epochs_to_csv(epochs: &[EpochStats], nodes: usize) -> String {
    let mut out = String::from(
        "epoch,start_cycle,cycles,injected,delivered,throughput_per_pe,mean_latency,p50_latency,p99_latency,deflection_rate,express_hops,stalls\n",
    );
    for (i, e) in epochs.iter().enumerate() {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            i,
            e.start_cycle,
            e.cycles,
            e.injected,
            e.delivered,
            fmt_f64(e.throughput_per_pe(nodes)),
            fmt_f64(e.mean_latency()),
            e.p50_latency(),
            e.p99_latency(),
            fmt_f64(e.deflection_rate()),
            e.express_hops,
            e.stalls
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;
    use crate::metrics::WindowedMetrics;
    use crate::packet::{Delivery, Packet, PacketId};
    use crate::port::{InPort, OutPort};

    fn sample_events() -> Vec<SimEvent> {
        let mut packet = Packet::new(PacketId(3), Coord::new(0, 0), Coord::new(2, 1), 5, 0);
        packet.injected_at = 7;
        packet.short_hops = 3;
        vec![
            SimEvent::Inject {
                cycle: 7,
                node: 0,
                packet: PacketId(3),
                dst: Coord::new(2, 1),
                out: OutPort::EastSh,
                queue_wait: 2,
            },
            SimEvent::RouteDecision {
                cycle: 8,
                node: 1,
                packet: PacketId(3),
                in_port: Some(InPort::WestSh),
                out: OutPort::EastSh,
                src: Coord::new(0, 0),
                dst: Coord::new(2, 1),
                hops: 1,
            },
            SimEvent::Deflect {
                cycle: 9,
                node: 2,
                packet: PacketId(3),
                out: OutPort::SouthSh,
            },
            SimEvent::ExpressHop {
                cycle: 10,
                node: 2,
                packet: PacketId(3),
                span: 2,
            },
            SimEvent::QueueStall {
                cycle: 10,
                node: 4,
                depth: 2,
            },
            SimEvent::WarmupReset { cycle: 11 },
            SimEvent::Eject {
                cycle: 12,
                node: 6,
                delivery: Delivery { packet, cycle: 13 },
            },
            SimEvent::Truncated { cycle: 14 },
        ]
    }

    #[test]
    fn ndjson_is_one_object_per_line_and_deterministic() {
        let render = || {
            let mut sink = NdjsonSink::new();
            for e in sample_events() {
                sink.emit(&e);
            }
            sink.into_string()
        };
        let a = render();
        let b = render();
        assert_eq!(a, b, "same events must serialize to identical bytes");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for line in &lines {
            assert!(line.starts_with("{\"cycle\":"), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
        }
        assert!(lines[0].contains("\"kind\":\"inject\""));
        assert!(lines[1].contains("\"in\":\"W_sh\""));
        assert!(lines[6].contains("\"total_latency\":8"));
    }

    #[test]
    fn ndjson_channel_attribution() {
        let mut sink = NdjsonSink::new();
        sink.set_channel(2);
        sink.emit(&SimEvent::QueueStall {
            cycle: 0,
            node: 0,
            depth: 1,
        });
        assert!(sink.as_str().contains("\"ch\":2"));
        assert_eq!(sink.lines(), 1);
    }

    #[test]
    fn chrome_trace_wraps_complete_events() {
        let mut sink = ChromeTraceSink::new(4);
        for e in sample_events() {
            sink.emit(&e);
        }
        // Only ejects + driver markers become trace events.
        assert_eq!(sink.len(), 3);
        let doc = sink.finish();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ts\":7")); // injected_at
        assert!(doc.contains("\"dur\":6")); // 13 - 7
        assert!(doc.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_chrome_trace_is_valid() {
        let sink = ChromeTraceSink::new(4);
        assert!(sink.is_empty());
        let doc = sink.finish();
        assert!(doc.contains("\"traceEvents\":["));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut m = WindowedMetrics::new(4, 10);
        for e in sample_events() {
            m.emit(&e);
        }
        let epochs = m.finish();
        let csv = epochs_to_csv(&epochs, 4);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("epoch,start_cycle,cycles,"));
        assert_eq!(lines.len(), epochs.len() + 1);
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
    }
}
