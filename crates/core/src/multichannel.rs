//! Multi-channel (replicated) Hoplite: `K` independent physical NoC
//! channels sharing each PE's single injection and delivery port.
//!
//! The paper uses Hoplite-2x / Hoplite-3x as the iso-resource comparison
//! points for FastTrack (a 3-channel Hoplite consumes the same wiring as
//! FT(·,2,1)). Fairness rule (paper §V): the client interface is not
//! widened — a PE injects at most one packet per cycle (into whichever
//! channel can take it) and consumes at most one delivery per cycle;
//! arrivals beyond the first deflect inside their own channel.
//!
//! Channel priority rotates every cycle so no channel is structurally
//! favored for injection or delivery.

use crate::config::NocConfig;
use crate::fallback::CompiledFallback;
use crate::fault::{FaultError, FaultPlan};
use crate::kernel::{RouteLut, RouteMode};
use crate::noc::{Noc, StepGates};
use crate::packet::{Delivery, Packet};
use crate::probe::{Probe, TraceSelect};
use crate::queue::InjectQueues;
use crate::stats::SimStats;
use crate::trace::{EventSink, NullSink};

/// A bank of replicated NoC channels behind shared PE ports.
#[derive(Debug, Clone)]
pub struct MultiNoc {
    channels: Vec<Noc>,
    gates: StepGates,
    rotation: usize,
    cycle: u64,
    /// Packets evicted by an `AlternateChannel` fallback step, waiting
    /// for a free shared input register on a sibling channel:
    /// `(source channel, node, packet)`. Counted by
    /// [`MultiNoc::in_flight`] so conservation holds across switches.
    pending: Vec<(usize, usize, Packet)>,
}

impl MultiNoc {
    /// Builds `channels` identical copies of the NoC described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(cfg: NocConfig, channels: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        let nodes = cfg.num_nodes();
        // Build one channel and clone it: clones share the route LUT
        // behind its `Arc`, so the table is computed once per bank.
        let first = Noc::new(cfg);
        let mut chans = Vec::with_capacity(channels);
        for _ in 1..channels {
            chans.push(first.clone());
        }
        chans.push(first);
        MultiNoc {
            channels: chans,
            gates: StepGates::new(nodes),
            rotation: 0,
            cycle: 0,
            pending: Vec::new(),
        }
    }

    /// Builds `channels` copies of the NoC with the same fault plan
    /// injected into each (a broken router or link is broken in every
    /// replicated channel — the channels share the physical fabric
    /// region). An empty plan is identical to [`MultiNoc::new`].
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn with_faults(
        cfg: NocConfig,
        channels: usize,
        plan: &FaultPlan,
    ) -> Result<Self, FaultError> {
        assert!(channels > 0, "need at least one channel");
        plan.validate(&cfg)?;
        let nodes = cfg.num_nodes();
        let first = Noc::with_faults(cfg, plan)?;
        let mut chans = Vec::with_capacity(channels);
        for _ in 1..channels {
            chans.push(first.clone());
        }
        chans.push(first);
        Ok(MultiNoc {
            channels: chans,
            gates: StepGates::new(nodes),
            rotation: 0,
            cycle: 0,
            pending: Vec::new(),
        })
    }

    /// Installs compiled fallback chains on every channel, arming
    /// `AlternateChannel` evictions when the bank has a sibling to
    /// switch to.
    pub(crate) fn set_fallback(&mut self, fallback: CompiledFallback) {
        let multi = self.channels.len() > 1;
        for ch in &mut self.channels {
            ch.set_fallback(fallback);
            if multi {
                ch.enable_eviction();
            }
        }
    }

    /// Switches route resolution on every channel. Entering
    /// [`RouteMode::Lut`] builds (or reuses) one table and shares it
    /// across the bank.
    pub fn set_route_mode(&mut self, mode: RouteMode) {
        match mode {
            RouteMode::Direct => {
                for ch in &mut self.channels {
                    ch.set_route_mode(RouteMode::Direct);
                }
            }
            RouteMode::Lut => {
                let lut = self
                    .channels
                    .iter()
                    .find_map(Noc::lut_handle)
                    .unwrap_or_else(|| RouteLut::build(self.config()));
                for ch in &mut self.channels {
                    ch.install_lut(lut.clone());
                }
            }
        }
    }

    /// Returns the bank to its just-constructed state (see
    /// [`Noc::reset`]): every channel reset, gates reopened, rotation
    /// and cycle back to 0. Topology, route tables, and compiled fault
    /// plans are kept.
    pub fn reset(&mut self) {
        for ch in &mut self.channels {
            ch.reset();
        }
        self.gates.reset();
        self.rotation = 0;
        self.cycle = 0;
        self.pending.clear();
    }

    /// See [`Noc::only_failed_injectors_pending`]; all channels share
    /// the fault plan, so channel 0 answers for the bank.
    pub fn only_failed_injectors_pending(&self, queues: &InjectQueues) -> bool {
        self.channels[0].only_failed_injectors_pending(queues)
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The per-channel configuration.
    pub fn config(&self) -> &NocConfig {
        self.channels[0].config()
    }

    /// Total packets in flight across all channels, including packets
    /// mid-switch between channels (see [`MultiNoc::step`]); drivers
    /// must keep cycling until these drain too.
    pub fn in_flight(&self) -> usize {
        self.channels.iter().map(Noc::in_flight).sum::<usize>() + self.pending.len()
    }

    /// Packets in flight per channel, in channel order (balance
    /// diagnostics and monitor snapshots).
    pub fn in_flight_per_channel(&self) -> Vec<usize> {
        self.channels.iter().map(Noc::in_flight).collect()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances all channels by one cycle, enforcing the one-injection /
    /// one-delivery-per-PE rule across them.
    pub fn step(&mut self, queues: &mut InjectQueues, deliveries: &mut Vec<Delivery>) {
        self.step_with_sink(queues, deliveries, &mut NullSink);
    }

    /// [`MultiNoc::step`] with an [`EventSink`] observing all channels.
    /// The sink's [`EventSink::set_channel`] is called before each
    /// channel's events so consumers can attribute them.
    pub fn step_with_sink<S: EventSink>(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        sink: &mut S,
    ) {
        self.gates.reset();
        let k = self.channels.len();
        // Land last cycle's channel-switch evictions first: each packet
        // tries the sibling channels in deterministic order and becomes
        // an ordinary shared-ring input this cycle; if every slot is
        // taken it stays pending (still in flight) and retries next
        // cycle.
        if !self.pending.is_empty() {
            let mut retained = Vec::new();
            for (src, node, pkt) in self.pending.drain(..) {
                let adopted = (1..k)
                    .map(|off| (src + off) % k)
                    .any(|ch| self.channels[ch].adopt(node, pkt));
                if !adopted {
                    retained.push((src, node, pkt));
                }
            }
            self.pending = retained;
        }
        for i in 0..k {
            let ch = (self.rotation + i) % k;
            if S::ENABLED {
                sink.set_channel(ch);
            }
            self.channels[ch].step_with_sink(queues, deliveries, Some(&mut self.gates), sink);
            for (node, pkt) in self.channels[ch].take_evicted() {
                self.pending.push((ch, node, pkt));
            }
        }
        self.rotation = (self.rotation + 1) % k;
        self.cycle += 1;
    }

    /// Sum of all channels' statistics.
    pub fn merged_stats(&self) -> SimStats {
        let mut total = SimStats::default();
        for ch in &self.channels {
            total.merge(ch.stats());
        }
        total
    }

    /// Per-channel statistics (for balance diagnostics).
    pub fn channel_stats(&self) -> Vec<&SimStats> {
        self.channels.iter().map(Noc::stats).collect()
    }

    /// Clears statistics on every channel.
    pub fn reset_stats(&mut self) {
        for ch in &mut self.channels {
            ch.reset_stats();
        }
    }

    /// Attaches a fresh probe to every channel (replacing existing ones).
    pub fn attach_probes(&mut self, select: TraceSelect) {
        let nodes = self.config().num_nodes();
        for ch in &mut self.channels {
            ch.attach_probe(Probe::with_tracing(nodes, select));
        }
    }

    /// Per-channel probes, in channel order (empty if none attached).
    pub fn channel_probes(&self) -> Vec<&Probe> {
        self.channels.iter().filter_map(Noc::probe).collect()
    }

    /// Combines all channels' probes into one heatmap via
    /// [`Probe::merge`] — the aggregate link load a floorplanner would
    /// see across the replicated wiring. Returns `None` when no channel
    /// carries a probe.
    pub fn merged_probe(&self) -> Option<Probe> {
        let mut probes = self.channels.iter().filter_map(Noc::probe);
        let mut merged = probes.next()?.clone();
        for p in probes {
            merged.merge(p);
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        MultiNoc::new(NocConfig::hoplite(4).unwrap(), 0);
    }

    #[test]
    fn channels_share_injection_bandwidth() {
        // One node with many queued packets: at most one injection per
        // cycle regardless of channel count.
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut mnoc = MultiNoc::new(cfg, 3);
        let mut q = InjectQueues::new(16);
        for _ in 0..30 {
            q.push(0, Coord::new(2, 0), 0, 0);
        }
        let mut dels = Vec::new();
        mnoc.step(&mut q, &mut dels);
        // Exactly one packet left the queue.
        assert_eq!(q.total_pending(), 29);
        assert_eq!(mnoc.in_flight(), 1);
    }

    #[test]
    fn rotation_balances_channels() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut mnoc = MultiNoc::new(cfg, 2);
        let mut q = InjectQueues::new(16);
        for _ in 0..40 {
            q.push(0, Coord::new(2, 0), 0, 0);
        }
        let mut dels = Vec::new();
        for _ in 0..200 {
            mnoc.step(&mut q, &mut dels);
            if q.is_empty() && mnoc.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(dels.len(), 40);
        let per_channel: Vec<u64> = mnoc.channel_stats().iter().map(|s| s.injected).collect();
        // Rotation alternates the favored channel, so the split is even.
        assert_eq!(per_channel.iter().sum::<u64>(), 40);
        assert!(
            per_channel.iter().all(|&c| c >= 15),
            "unbalanced: {per_channel:?}"
        );
    }

    #[test]
    fn single_delivery_per_pe_per_cycle() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut mnoc = MultiNoc::new(cfg, 3);
        let mut q = InjectQueues::new(16);
        // Many nodes all targeting (0,0).
        for node in 1..16 {
            for _ in 0..3 {
                q.push(node, Coord::new(0, 0), 0, 0);
            }
        }
        let mut dels = Vec::new();
        for _ in 0..5000 {
            mnoc.step(&mut q, &mut dels);
            if q.is_empty() && mnoc.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(dels.len(), 45);
        let mut per_cycle = std::collections::HashMap::new();
        for d in &dels {
            *per_cycle.entry(d.cycle).or_insert(0u32) += 1;
        }
        assert!(
            per_cycle.values().all(|&c| c <= 1),
            "PE accepted >1 delivery per cycle"
        );
    }

    #[test]
    fn health_monitor_observes_every_channel() {
        use crate::monitor::{HealthMonitor, MonitorConfig};
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut mnoc = MultiNoc::new(cfg, 3);
        let mut q = InjectQueues::new(16);
        for node in 0..16 {
            q.push(node, Coord::new(3, (node % 4) as u16), 0, 0);
        }
        let mut monitor = HealthMonitor::new(
            crate::topology::MonitorShape::torus(4).with_channels(3),
            MonitorConfig::default(),
        );
        let mut dels = Vec::new();
        for c in 0..500 {
            mnoc.step_with_sink(&mut q, &mut dels, &mut monitor);
            let per_channel = mnoc.in_flight_per_channel();
            assert_eq!(per_channel.iter().sum::<usize>(), mnoc.in_flight());
            assert_eq!(per_channel.len(), 3);
            if q.is_empty() && mnoc.in_flight() == 0 {
                let _ = c;
                break;
            }
        }
        let s = monitor.summary();
        assert_eq!(s.injected, 16);
        assert_eq!(s.delivered, 16);
        assert!(s.healthy());
    }

    #[test]
    fn merged_stats_sum_channels() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut mnoc = MultiNoc::new(cfg, 2);
        let mut q = InjectQueues::new(16);
        for node in 0..16 {
            q.push(node, Coord::new((node % 4) as u16, 3), 0, 0);
        }
        let mut dels = Vec::new();
        for _ in 0..500 {
            mnoc.step(&mut q, &mut dels);
            if q.is_empty() && mnoc.in_flight() == 0 {
                break;
            }
        }
        let merged = mnoc.merged_stats();
        let sum: u64 = mnoc.channel_stats().iter().map(|s| s.delivered).sum();
        assert_eq!(merged.delivered, sum);
    }
}
