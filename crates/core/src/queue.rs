//! Per-PE source injection queues.
//!
//! Traffic sources push [`PendingPacket`]s here; the NoC pulls from the
//! head of each node's queue when its router has a free output in the
//! packet's desired direction (the PE port has the lowest priority).

use std::collections::VecDeque;

use crate::geom::Coord;
use crate::packet::{PacketId, PendingPacket};
use crate::trace::SimEvent;

/// One FIFO of pending packets per node.
#[derive(Debug, Clone)]
pub struct InjectQueues {
    queues: Vec<VecDeque<PendingPacket>>,
    next_id: u64,
    pending: usize,
    enqueued_total: u64,
}

impl InjectQueues {
    /// Creates empty queues for `nodes` PEs.
    pub fn new(nodes: usize) -> Self {
        InjectQueues {
            queues: vec![VecDeque::new(); nodes],
            next_id: 0,
            pending: 0,
            enqueued_total: 0,
        }
    }

    /// Number of PEs.
    pub fn nodes(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a packet at `src` destined for `dst`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn push(&mut self, src: usize, dst: Coord, cycle: u64, tag: u64) -> PacketId {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        self.queues[src].push_back(PendingPacket {
            id,
            dst,
            enqueued_at: cycle,
            tag,
        });
        self.pending += 1;
        self.enqueued_total += 1;
        id
    }

    /// Head of `node`'s queue, if any.
    pub fn peek(&self, node: usize) -> Option<&PendingPacket> {
        self.queues[node].front()
    }

    /// Pops the head of `node`'s queue.
    pub fn pop(&mut self, node: usize) -> Option<PendingPacket> {
        let p = self.queues[node].pop_front();
        if p.is_some() {
            self.pending -= 1;
        }
        p
    }

    /// Packets currently waiting across all queues.
    pub fn total_pending(&self) -> usize {
        self.pending
    }

    /// Packets ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued_total
    }

    /// Queue depth at one node.
    pub fn depth(&self, node: usize) -> usize {
        self.queues[node].len()
    }

    /// Iterates `node`'s waiting packets in FIFO order (head first).
    ///
    /// Recording wrappers use this to observe what an inner traffic
    /// source appended during `pump` without disturbing the queue.
    pub fn iter(&self, node: usize) -> impl Iterator<Item = &PendingPacket> + '_ {
        self.queues[node].iter()
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Builds the [`SimEvent::QueueStall`] describing a blocked
    /// injection at `node` — the queue owns its depth, so the stall
    /// event is constructed here rather than in the engine.
    pub fn stall_event(&self, cycle: u64, node: usize) -> SimEvent {
        SimEvent::QueueStall {
            cycle,
            node,
            depth: self.depth(node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut q = InjectQueues::new(4);
        let a = q.push(0, Coord::new(1, 1), 5, 10);
        let b = q.push(0, Coord::new(2, 2), 6, 11);
        assert_ne!(a, b);
        assert_eq!(q.total_pending(), 2);
        assert_eq!(q.depth(0), 2);
        assert_eq!(q.peek(0).unwrap().id, a);
        assert_eq!(q.pop(0).unwrap().id, a);
        assert_eq!(q.pop(0).unwrap().id, b);
        assert_eq!(q.pop(0), None);
        assert!(q.is_empty());
        assert_eq!(q.total_enqueued(), 2);
    }

    #[test]
    fn iter_sees_fifo_tail() {
        let mut q = InjectQueues::new(2);
        q.push(0, Coord::new(1, 0), 0, 7);
        q.push(0, Coord::new(0, 1), 1, 8);
        let tags: Vec<u64> = q.iter(0).map(|p| p.tag).collect();
        assert_eq!(tags, vec![7, 8]);
        assert_eq!(q.iter(1).count(), 0);
        // Skipping the already-seen head yields only the new tail.
        let new: Vec<u64> = q.iter(0).skip(1).map(|p| p.tag).collect();
        assert_eq!(new, vec![8]);
    }

    #[test]
    fn ids_unique_across_nodes() {
        let mut q = InjectQueues::new(2);
        let a = q.push(0, Coord::new(0, 1), 0, 0);
        let b = q.push(1, Coord::new(1, 0), 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn pending_counts_span_nodes() {
        let mut q = InjectQueues::new(3);
        q.push(0, Coord::new(0, 1), 0, 0);
        q.push(2, Coord::new(0, 1), 0, 0);
        assert_eq!(q.total_pending(), 2);
        q.pop(2);
        assert_eq!(q.total_pending(), 1);
        assert!(!q.is_empty());
    }
}
