//! Torus geometry: node coordinates and modular distance arithmetic.
//!
//! FastTrack (like Hoplite) uses a **unidirectional** 2-D torus: packets
//! travel only east in the X dimension and only south in the Y dimension,
//! wrapping around at the edges. All "distances" here are therefore the
//! one-way ring distances `(dst - src) mod N`, never the shortest
//! bidirectional distance.

use std::fmt;

/// A router/PE coordinate on an `N × N` torus.
///
/// `x` grows eastward, `y` grows southward (matching the paper's Figure 8,
/// where packets drop "down the Y ring one switch at a time").
///
/// # Examples
///
/// ```
/// use fasttrack_core::geom::Coord;
///
/// let c = Coord::new(3, 1);
/// assert_eq!(c.x, 3);
/// assert_eq!(c.to_node_id(8), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coord {
    /// Column (eastward).
    pub x: u16,
    /// Row (southward).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate. No bounds are checked here; bounds are
    /// validated when the coordinate meets a concrete topology.
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Linearizes to a node id in row-major order (`y * n + x`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinate lies outside the torus.
    pub fn to_node_id(self, n: u16) -> usize {
        debug_assert!(
            self.x < n && self.y < n,
            "coord {self} outside {n}x{n} torus"
        );
        self.y as usize * n as usize + self.x as usize
    }

    /// Inverse of [`Coord::to_node_id`].
    pub fn from_node_id(id: usize, n: u16) -> Self {
        Coord {
            x: (id % n as usize) as u16,
            y: (id / n as usize) as u16,
        }
    }

    /// One-way (eastward) ring distance from `self.x` to `dst.x`.
    pub fn dx_to(self, dst: Coord, n: u16) -> u16 {
        ring_delta(self.x, dst.x, n)
    }

    /// One-way (southward) ring distance from `self.y` to `dst.y`.
    pub fn dy_to(self, dst: Coord, n: u16) -> u16 {
        ring_delta(self.y, dst.y, n)
    }

    /// Coordinate reached by moving `hops` east.
    pub fn east(self, hops: u16, n: u16) -> Coord {
        Coord::new((self.x + hops) % n, self.y)
    }

    /// Coordinate reached by moving `hops` south.
    pub fn south(self, hops: u16, n: u16) -> Coord {
        Coord::new(self.x, (self.y + hops) % n)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// One-way ring distance `(to - from) mod n` on a unidirectional ring.
///
/// # Examples
///
/// ```
/// use fasttrack_core::geom::ring_delta;
///
/// assert_eq!(ring_delta(1, 5, 8), 4);
/// assert_eq!(ring_delta(5, 1, 8), 4); // wraps east past the edge
/// assert_eq!(ring_delta(3, 3, 8), 0);
/// ```
pub fn ring_delta(from: u16, to: u16, n: u16) -> u16 {
    debug_assert!(n > 0 && from < n && to < n);
    (to + n - from) % n
}

/// Greatest common divisor (used for express-ring reachability).
pub fn gcd(a: u16, b: u16) -> u16 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = 8;
        for id in 0..(n as usize * n as usize) {
            let c = Coord::from_node_id(id, n);
            assert_eq!(c.to_node_id(n), id);
        }
    }

    #[test]
    fn node_id_is_row_major() {
        assert_eq!(Coord::new(0, 0).to_node_id(4), 0);
        assert_eq!(Coord::new(3, 0).to_node_id(4), 3);
        assert_eq!(Coord::new(0, 1).to_node_id(4), 4);
        assert_eq!(Coord::new(3, 3).to_node_id(4), 15);
    }

    #[test]
    fn ring_delta_basic() {
        assert_eq!(ring_delta(0, 0, 4), 0);
        assert_eq!(ring_delta(0, 3, 4), 3);
        assert_eq!(ring_delta(3, 0, 4), 1);
        assert_eq!(ring_delta(2, 1, 4), 3);
    }

    #[test]
    fn ring_delta_symmetry_complement() {
        // For distinct points, east distance + return distance == n.
        let n = 16;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    assert_eq!(ring_delta(a, b, n) + ring_delta(b, a, n), n);
                }
            }
        }
    }

    #[test]
    fn east_south_wrap() {
        let c = Coord::new(6, 7);
        assert_eq!(c.east(3, 8), Coord::new(1, 7));
        assert_eq!(c.south(2, 8), Coord::new(6, 1));
        assert_eq!(c.east(8, 8), c);
    }

    #[test]
    fn dx_dy_match_ring_delta() {
        let n = 8;
        let a = Coord::new(5, 2);
        let b = Coord::new(1, 6);
        assert_eq!(a.dx_to(b, n), 4);
        assert_eq!(a.dy_to(b, n), 4);
        assert_eq!(b.dx_to(a, n), 4);
    }

    #[test]
    fn gcd_values() {
        assert_eq!(gcd(8, 2), 2);
        assert_eq!(gcd(8, 3), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(12, 18), 6);
    }

    #[test]
    fn display_format() {
        assert_eq!(Coord::new(3, 1).to_string(), "(3,1)");
    }
}
