//! Per-router output-port allocation.
//!
//! Every cycle, each router must forward **all** of its in-flight input
//! packets somewhere — bufferless deflection routing has no place to park
//! a loser. The allocator walks inputs in hardware priority order
//! (`W_ex > N_ex > W_sh > N_sh`), gives each packet the best port from its
//! preference list, and — before committing a choice — checks that the
//! remaining packets can still all be matched to free ports. This
//! feasibility check is what the paper calls a "suitably designed routing
//! function": a fixed-priority mux cascade whose select logic never
//! strands an in-flight packet.
//!
//! Exit sharing: under [`ExitPolicy::SharedWithSouth`] the delivery port
//! and `S_sh` are one physical resource (Hoplite's two-mux switch), so
//! they occupy a single allocation *slot*.

use crate::config::ExitPolicy;
use crate::port::{OutPort, OutSet};
use crate::routing::RoutePrefs;

/// Maximum number of in-flight inputs at one router (W_ex, N_ex, W_sh, N_sh).
pub const MAX_IN_FLIGHT: usize = 4;

/// Maps an output port to its allocation slot bit.
///
/// Slots: `E_ex=0, E_sh=1, S_ex=2, S_sh=3, Exit=4`, except that under the
/// shared exit policy `Exit` maps onto slot 3 (same resource as `S_sh`).
fn slot_bit(port: OutPort, exit: ExitPolicy) -> u8 {
    match (port, exit) {
        (OutPort::Exit, ExitPolicy::SharedWithSouth) => 1 << 3,
        _ => 1 << port.index(),
    }
}

/// Converts a port set to a slot mask.
fn slot_mask(ports: OutSet, exit: ExitPolicy) -> u8 {
    let mut m = 0u8;
    for p in ports.iter() {
        m |= slot_bit(p, exit);
    }
    m
}

/// True if every mask in `masks` can be matched to a distinct free slot.
fn feasible(masks: &[u8], free: u8) -> bool {
    match masks.split_first() {
        None => true,
        Some((&first, rest)) => {
            let mut options = first & free;
            while options != 0 {
                let bit = options & options.wrapping_neg();
                options &= options - 1;
                if feasible(rest, free & !bit) {
                    return true;
                }
            }
            false
        }
    }
}

/// The allocation result for the in-flight inputs, in the order given.
pub type Assignment = [Option<OutPort>; MAX_IN_FLIGHT];

/// Allocates output ports to in-flight packets.
///
/// * `inputs` — `(prefs)` per occupied input, already sorted by hardware
///   priority (highest first); at most [`MAX_IN_FLIGHT`] entries.
/// * `available` — output ports that physically exist at this router
///   (always includes `Exit`); pass with `Exit` removed when an external
///   arbiter (multi-channel delivery) blocked delivery this cycle.
/// * `exit` — exit-port sharing policy.
///
/// Returns the chosen output per input. Every input receives a port.
///
/// # Panics
///
/// Panics if the inputs cannot all be matched — this indicates a
/// connectivity-matrix bug, not a runtime condition: the FastTrack port
/// sets satisfy Hall's condition by construction (see module docs of
/// [`crate::router`]). Fault-degraded routers (dead links masked from
/// `available`) can genuinely violate Hall's condition; they must use
/// [`try_allocate`] instead.
pub fn allocate(inputs: &[RoutePrefs], available: OutSet, exit: ExitPolicy) -> Assignment {
    let mut assignment = try_allocate(inputs, available, exit);
    for (i, slot) in assignment.iter_mut().enumerate().take(inputs.len()) {
        assert!(
            slot.is_some(),
            "allocator stranded an in-flight packet: prefs {:?}, available {available:?}",
            inputs[i].ports()
        );
    }
    assignment
}

/// [`allocate`] without the all-matched guarantee: inputs that cannot be
/// assigned any port (possible when dead links shrink `available` below
/// Hall's condition) come back `None` instead of panicking. On any input
/// set that *can* be fully matched the result is identical to
/// [`allocate`]: the relaxation only engages once the look-ahead proves
/// the remainder unmatchable either way, in which case each packet still
/// takes its best free port and the stranding falls on the
/// lowest-priority loser — exactly how a fixed-priority mux cascade
/// degrades in hardware.
pub fn try_allocate(inputs: &[RoutePrefs], available: OutSet, exit: ExitPolicy) -> Assignment {
    assert!(inputs.len() <= MAX_IN_FLIGHT);
    let mut assignment: Assignment = [None; MAX_IN_FLIGHT];
    let mut free = slot_mask(available, exit);

    // Pref sets (as slot masks, pre-intersected with availability) of the
    // inputs not yet assigned; used for the look-ahead feasibility check.
    let mut remaining: [u8; MAX_IN_FLIGHT] = [0; MAX_IN_FLIGHT];
    for (i, prefs) in inputs.iter().enumerate() {
        remaining[i] = slot_mask(prefs.as_set().intersect(available), exit);
    }

    for (i, prefs) in inputs.iter().enumerate() {
        let rest = &remaining[i + 1..inputs.len()];
        let mut chosen = None;
        for &p in prefs.ports() {
            if !available.contains(p) {
                continue;
            }
            let bit = slot_bit(p, exit);
            if free & bit == 0 {
                continue;
            }
            if feasible(rest, free & !bit) {
                chosen = Some(p);
                break;
            }
        }
        // No feasibility-preserving choice: the remainder is unmatchable
        // whatever this input does, so take the best free port anyway.
        if chosen.is_none() {
            chosen = prefs
                .ports()
                .iter()
                .copied()
                .find(|&p| available.contains(p) && free & slot_bit(p, exit) != 0);
        }
        if let Some(p) = chosen {
            free &= !slot_bit(p, exit);
        }
        assignment[i] = chosen;
    }
    assignment
}

/// Attempts PE injection after the in-flight assignment: returns the first
/// port in the PE's preference list whose slot is still free, given the
/// ports consumed by `taken`.
pub fn try_inject(
    pe_prefs: &RoutePrefs,
    available: OutSet,
    taken: &[OutPort],
    exit: ExitPolicy,
) -> Option<OutPort> {
    let mut free = slot_mask(available, exit);
    for &p in taken {
        free &= !slot_bit(p, exit);
    }
    pe_prefs
        .ports()
        .iter()
        .copied()
        .find(|&p| available.contains(p) && free & slot_bit(p, exit) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FtPolicy, NocConfig};
    use crate::geom::Coord;
    use crate::port::InPort;
    use crate::router::RouterClass;
    use crate::routing::compute_prefs;

    fn shared() -> ExitPolicy {
        ExitPolicy::SharedWithSouth
    }

    #[test]
    fn slot_sharing_links_exit_and_south() {
        assert_eq!(
            slot_bit(OutPort::Exit, ExitPolicy::SharedWithSouth),
            slot_bit(OutPort::SouthSh, ExitPolicy::SharedWithSouth)
        );
        assert_ne!(
            slot_bit(OutPort::Exit, ExitPolicy::Dedicated),
            slot_bit(OutPort::SouthSh, ExitPolicy::Dedicated)
        );
    }

    #[test]
    fn feasibility_simple() {
        // Two inputs that both need the same single slot: infeasible.
        assert!(!feasible(&[0b0001, 0b0001], 0b0001));
        // Disjoint: feasible.
        assert!(feasible(&[0b0001, 0b0010], 0b0011));
        // Classic alternating chain.
        assert!(feasible(&[0b0011, 0b0001], 0b0011));
        assert!(!feasible(&[0b0011, 0b0001, 0b0010], 0b0011));
        assert!(feasible(&[], 0));
    }

    /// Hoplite: W at destination (wants exit), N wants south. Exit shares
    /// the S_sh slot, so N must deflect east — the canonical Hoplite
    /// deflection.
    #[test]
    fn hoplite_exit_deflects_north_traffic() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let class = RouterClass::HOPLITE;
        let at = Coord::new(2, 2);
        let w = compute_prefs(&cfg, class, InPort::WestSh, at, at); // at dest
        let n = compute_prefs(&cfg, class, InPort::NorthSh, at, Coord::new(2, 5));
        let avail = class.available_outputs();
        let a = allocate(&[w, n], avail, shared());
        assert_eq!(a[0], Some(OutPort::Exit));
        assert_eq!(a[1], Some(OutPort::EastSh)); // deflected
    }

    /// With a dedicated exit the same scenario lets N proceed south.
    #[test]
    fn dedicated_exit_does_not_block_south() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let class = RouterClass::HOPLITE;
        let at = Coord::new(2, 2);
        let w = compute_prefs(&cfg, class, InPort::WestSh, at, at);
        let n = compute_prefs(&cfg, class, InPort::NorthSh, at, Coord::new(2, 5));
        let a = allocate(&[w, n], class.available_outputs(), ExitPolicy::Dedicated);
        assert_eq!(a[0], Some(OutPort::Exit));
        assert_eq!(a[1], Some(OutPort::SouthSh));
    }

    /// W turning south beats N continuing south (W→S is the highest
    /// priority turn); N deflects east.
    #[test]
    fn turn_priority_deflects_column_traffic() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let class = RouterClass::HOPLITE;
        let at = Coord::new(2, 2);
        let w = compute_prefs(&cfg, class, InPort::WestSh, at, Coord::new(2, 6));
        let n = compute_prefs(&cfg, class, InPort::NorthSh, at, Coord::new(2, 6));
        let a = allocate(&[w, n], class.available_outputs(), shared());
        assert_eq!(a[0], Some(OutPort::SouthSh));
        assert_eq!(a[1], Some(OutPort::EastSh));
    }

    /// The four-input FT(Full) stress case from the design notes: the
    /// feasibility look-ahead must deflect N_ex onto the express ring so
    /// that N_sh is not stranded.
    #[test]
    fn full_router_four_way_conflict_is_resolved() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        let class = RouterClass::FULL;
        let at = Coord::new(2, 2);
        // W_ex turning south with misaligned dy (wants S_sh).
        let wex = compute_prefs(&cfg, class, InPort::WestEx, at, Coord::new(2, 5));
        // N_ex turning east with misaligned dx (wants E_sh).
        let nex = compute_prefs(&cfg, class, InPort::NorthEx, at, Coord::new(5, 2));
        // W_sh continuing east (misaligned dx).
        let wsh = compute_prefs(&cfg, class, InPort::WestSh, at, Coord::new(5, 4));
        // N_sh continuing south (misaligned dy).
        let nsh = compute_prefs(&cfg, class, InPort::NorthSh, at, Coord::new(2, 5));
        let a = allocate(&[wex, nex, wsh, nsh], class.available_outputs(), shared());
        // Everyone got a port, all distinct slots.
        let ports: Vec<_> = a.iter().flatten().copied().collect();
        assert_eq!(ports.len(), 4);
        assert_eq!(a[0], Some(OutPort::SouthSh)); // highest priority turn wins
                                                  // N_sh can only use S_sh/E_sh; S_sh is gone, so it must get E_sh.
        assert_eq!(a[3], Some(OutPort::EastSh));
        // Which forces N_ex off E_sh onto an express deflection.
        assert!(matches!(
            a[1],
            Some(OutPort::EastEx) | Some(OutPort::SouthEx)
        ));
    }

    #[test]
    fn injection_takes_leftover_port() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let class = RouterClass::HOPLITE;
        let at = Coord::new(0, 0);
        let pe = compute_prefs(&cfg, class, InPort::Pe, at, Coord::new(3, 0));
        // Nothing taken: injects east.
        assert_eq!(
            try_inject(&pe, class.available_outputs(), &[], shared()),
            Some(OutPort::EastSh)
        );
        // East taken: PE stalls (it never deflects).
        assert_eq!(
            try_inject(&pe, class.available_outputs(), &[OutPort::EastSh], shared()),
            None
        );
    }

    #[test]
    fn injection_blocked_by_shared_exit() {
        let cfg = NocConfig::hoplite(8).unwrap();
        let class = RouterClass::HOPLITE;
        let at = Coord::new(0, 0);
        // PE wants south; a delivery this cycle consumed the shared slot.
        let pe = compute_prefs(&cfg, class, InPort::Pe, at, Coord::new(0, 3));
        assert_eq!(
            try_inject(&pe, class.available_outputs(), &[OutPort::Exit], shared()),
            None
        );
        // Dedicated exit: south is still free.
        assert_eq!(
            try_inject(
                &pe,
                class.available_outputs(),
                &[OutPort::Exit],
                ExitPolicy::Dedicated
            ),
            Some(OutPort::SouthSh)
        );
    }

    /// Exhaustive smoke test: every combination of desires on a full
    /// FT router allocates all four in-flight inputs.
    #[test]
    fn allocation_never_strands_inputs() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        let class = RouterClass::FULL;
        let at = Coord::new(2, 2);
        let n = cfg.n();
        let dsts: Vec<Coord> = (0..n)
            .flat_map(|x| (0..n).map(move |y| Coord::new(x, y)))
            .collect();
        // Sample a grid of destination combinations (full cross product of
        // 64^4 is too large; stride the space).
        let stride = 7;
        let sample: Vec<Coord> = dsts.iter().copied().step_by(stride).collect();
        for &d0 in &sample {
            for &d1 in &sample {
                for &d2 in &sample {
                    for &d3 in &sample {
                        let inputs = [
                            compute_prefs(&cfg, class, InPort::WestEx, at, d0),
                            compute_prefs(&cfg, class, InPort::NorthEx, at, d1),
                            compute_prefs(&cfg, class, InPort::WestSh, at, d2),
                            compute_prefs(&cfg, class, InPort::NorthSh, at, d3),
                        ];
                        let a = allocate(&inputs, class.available_outputs(), shared());
                        assert!(a[..4].iter().all(|x| x.is_some()));
                    }
                }
            }
        }
    }
}
