//! Hot-path simulation kernel: precomputed route-decision tables and the
//! struct-of-arrays in-flight packet pool.
//!
//! The per-cycle inner loop of the torus engines spends most of its time
//! answering one question per occupied input register: *which output
//! ports does this packet prefer here?* [`crate::routing::compute_prefs`]
//! answers it with branchy coordinate math, but its result depends on the
//! router position **only** through the [`RouterClass`] (whether the
//! position is express-capable per dimension) and the ring deltas
//! `dx = (dst.x - at.x) mod N`, `dy = (dst.y - at.y) mod N` — every other
//! input is configuration-static. A [`RouteLut`] therefore precomputes
//! the full preference list for every `(class, input port, dx, dy)` key
//! at engine construction, turning the hot path into one table load.
//!
//! The second half of the kernel is the [`PacketPool`]: in-flight packets
//! move out of the link registers into a slab with free-list reuse, and
//! the registers hold compact `u32` slot indices ([`EMPTY_SLOT`] when
//! idle). The register scan — four loads per router per cycle — touches
//! 16 bytes instead of four `Option<Packet>`s, and the routing phase
//! reads only the pool's destination column, keeping the working set of
//! the gather/route phase small enough to stay cache-resident.

use std::sync::Arc;

use crate::config::NocConfig;
use crate::geom::Coord;
use crate::packet::Packet;
use crate::port::InPort;
use crate::router::RouterClass;
use crate::routing::{compute_prefs, RoutePrefs};

/// How a torus engine resolves route preferences each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteMode {
    /// Table lookups against a [`RouteLut`] built at construction (the
    /// default hot path).
    #[default]
    Lut,
    /// Recompute preferences from coordinates every cycle (the reference
    /// path the differential tests compare against).
    Direct,
}

/// Precomputed route preferences for every `(class, in port, dx, dy)`.
///
/// Shared between engine clones (multi-channel banks, batched drivers)
/// behind an [`Arc`], so replicating an engine never rebuilds the table.
#[derive(Debug, Clone)]
pub struct RouteLut {
    n: u16,
    prefs: Vec<RoutePrefs>,
}

impl RouteLut {
    /// Builds the table for `cfg`. Only keys that can occur are filled:
    /// classes realized by some router position, and input ports that
    /// exist at that class under the configuration's policy.
    pub fn build(cfg: &NocConfig) -> Arc<RouteLut> {
        let n = cfg.n();
        let nn = n as usize * n as usize;
        let mut prefs = vec![RoutePrefs::empty(); 4 * 5 * nn];
        // One representative position per realized class: positions of
        // equal class share every entry (`compute_prefs` sees position
        // only through the class and the ring deltas).
        let mut reps: [Option<Coord>; 4] = [None; 4];
        for id in 0..cfg.num_nodes() {
            let at = Coord::from_node_id(id, n);
            let rep = &mut reps[RouterClass::of(cfg, at).code()];
            if rep.is_none() {
                *rep = Some(at);
            }
        }
        for (code, rep) in reps.iter().enumerate() {
            let Some(at) = *rep else { continue };
            let class = RouterClass::from_code(code);
            for port in InPort::ALL {
                if !class.has_input(port) || (cfg.ft_policy().is_none() && port.is_express()) {
                    continue;
                }
                for dx in 0..n {
                    for dy in 0..n {
                        let dst = Coord::new((at.x + dx) % n, (at.y + dy) % n);
                        prefs[Self::index(n, code, port, dx, dy)] =
                            compute_prefs(cfg, class, port, at, dst);
                    }
                }
            }
        }
        Arc::new(RouteLut { n, prefs })
    }

    #[inline]
    fn index(n: u16, code: usize, port: InPort, dx: u16, dy: u16) -> usize {
        ((code * 5 + port.index()) * n as usize + dx as usize) * n as usize + dy as usize
    }

    /// The precomputed preference list for a packet arriving on `port` at
    /// a router of `class` at `at`, heading for `dst`. Bit-identical to
    /// [`compute_prefs`] on the same arguments.
    #[inline]
    pub fn lookup(&self, class: RouterClass, port: InPort, at: Coord, dst: Coord) -> RoutePrefs {
        let dx = at.dx_to(dst, self.n);
        let dy = at.dy_to(dst, self.n);
        self.prefs[Self::index(self.n, class.code(), port, dx, dy)]
    }

    /// Table entries (all keys, filled or not).
    pub fn len(&self) -> usize {
        self.prefs.len()
    }

    /// True when the table holds no entries (never for a built table).
    pub fn is_empty(&self) -> bool {
        self.prefs.is_empty()
    }
}

/// Register value marking an idle input slot.
pub const EMPTY_SLOT: u32 = u32::MAX;

/// Struct-of-arrays storage for in-flight packets.
///
/// Link registers hold `u32` indices into this pool. The destination
/// column is split out of the full packet record because it is the only
/// field the gather/route phase reads; the rest of the packet (hop
/// counters, ids, timestamps) is touched once per hop in the writeback.
/// Freed slots are recycled LIFO — slot numbers never influence routing
/// or statistics, so reuse order is unobservable.
#[derive(Debug, Clone, Default)]
pub struct PacketPool {
    dst: Vec<Coord>,
    meta: Vec<Packet>,
    free: Vec<u32>,
}

impl PacketPool {
    /// An empty pool with room for `cap` packets before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        PacketPool {
            dst: Vec::with_capacity(cap),
            meta: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    /// Stores a packet, returning its slot index.
    #[inline]
    pub fn insert(&mut self, pkt: Packet) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.dst[idx as usize] = pkt.dst;
                self.meta[idx as usize] = pkt;
                idx
            }
            None => {
                let idx = self.meta.len() as u32;
                debug_assert!(idx != EMPTY_SLOT, "packet pool exhausted the index space");
                self.dst.push(pkt.dst);
                self.meta.push(pkt);
                idx
            }
        }
    }

    /// The destination of the packet in `idx` (the hot column).
    #[inline]
    pub fn dst(&self, idx: u32) -> Coord {
        self.dst[idx as usize]
    }

    /// The full packet record in `idx`.
    #[inline]
    pub fn get(&self, idx: u32) -> &Packet {
        &self.meta[idx as usize]
    }

    /// Writes an updated packet record back into `idx`. The destination
    /// is immutable after creation, so the hot column needs no update.
    #[inline]
    pub fn write(&mut self, idx: u32, pkt: &Packet) {
        debug_assert_eq!(
            self.dst[idx as usize], pkt.dst,
            "packet dst mutated in flight"
        );
        self.meta[idx as usize] = *pkt;
    }

    /// Returns `idx` to the free list without reading it.
    #[inline]
    pub fn release(&mut self, idx: u32) {
        debug_assert!(!self.free.contains(&idx), "double free of pool slot");
        self.free.push(idx);
    }

    /// Removes and returns the packet in `idx`.
    #[inline]
    pub fn remove(&mut self, idx: u32) -> Packet {
        let pkt = self.meta[idx as usize];
        self.release(idx);
        pkt
    }

    /// Packets currently stored.
    pub fn live(&self) -> usize {
        self.meta.len() - self.free.len()
    }

    /// Freed slots available for recycling before the pool must grow.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Drops every packet, keeping allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.dst.clear();
        self.meta.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FtPolicy;
    use crate::packet::PacketId;

    fn configs() -> Vec<NocConfig> {
        vec![
            NocConfig::hoplite(4).unwrap(),
            NocConfig::hoplite(8).unwrap(),
            NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap(),
            NocConfig::fasttrack(8, 2, 2, FtPolicy::Full).unwrap(),
            NocConfig::fasttrack(8, 4, 2, FtPolicy::Inject).unwrap(),
            NocConfig::fasttrack(8, 2, 1, FtPolicy::Inject).unwrap(),
        ]
    }

    /// The LUT must agree with `compute_prefs` on every position, input
    /// port, and destination — exhaustively, not just on samples.
    #[test]
    fn lut_matches_computed_prefs_exhaustively() {
        for cfg in configs() {
            let lut = RouteLut::build(&cfg);
            let n = cfg.n();
            for id in 0..cfg.num_nodes() {
                let at = Coord::from_node_id(id, n);
                let class = RouterClass::of(&cfg, at);
                for port in InPort::ALL {
                    if !class.has_input(port) || (cfg.ft_policy().is_none() && port.is_express()) {
                        continue;
                    }
                    for dst_id in 0..cfg.num_nodes() {
                        let dst = Coord::from_node_id(dst_id, n);
                        assert_eq!(
                            lut.lookup(class, port, at, dst),
                            compute_prefs(&cfg, class, port, at, dst),
                            "{} at {at} port {port} dst {dst}",
                            cfg.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lut_is_shared_by_clone() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        let lut = RouteLut::build(&cfg);
        let other = lut.clone();
        assert!(Arc::ptr_eq(&lut, &other));
        assert!(!lut.is_empty());
        assert_eq!(lut.len(), 4 * 5 * 64);
    }

    fn pkt(id: u64, dst: Coord) -> Packet {
        Packet::new(PacketId(id), Coord::new(0, 0), dst, 0, 0)
    }

    #[test]
    fn pool_reuses_freed_slots() {
        let mut pool = PacketPool::with_capacity(4);
        let a = pool.insert(pkt(1, Coord::new(1, 0)));
        let b = pool.insert(pkt(2, Coord::new(2, 0)));
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.dst(a), Coord::new(1, 0));
        assert_eq!(pool.remove(a).id, PacketId(1));
        assert_eq!(pool.live(), 1);
        // The freed slot is recycled before the slab grows.
        let c = pool.insert(pkt(3, Coord::new(3, 3)));
        assert_eq!(c, a);
        assert_eq!(pool.dst(c), Coord::new(3, 3));
        assert_eq!(pool.get(b).id, PacketId(2));
        pool.clear();
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn pool_writeback_updates_counters() {
        let mut pool = PacketPool::with_capacity(1);
        let idx = pool.insert(pkt(7, Coord::new(2, 2)));
        let mut p = *pool.get(idx);
        p.short_hops += 1;
        p.deflections += 1;
        pool.write(idx, &p);
        assert_eq!(pool.get(idx).short_hops, 1);
        assert_eq!(pool.get(idx).deflections, 1);
    }
}
