//! NoC configuration: the `FT(N², D, R)` topology family, router policies,
//! and validated, precomputed topology tables.

use std::fmt;

use crate::geom::gcd;

/// How packets may move between the short and express lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FtPolicy {
    /// FT (Full) router (paper Fig. 9b): packets may upgrade from short to
    /// express at any port, and express packets may leave the express lane
    /// at the livelock turns `W_ex → S_sh` and `N_ex → E_sh`.
    #[default]
    Full,
    /// FTlite (Inject) router (paper Fig. 9c): packets board the express
    /// lane only at PE injection and then stay on it until delivery; short
    /// packets likewise stay on short links. Cheapest switch variant.
    Inject,
}

impl fmt::Display for FtPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtPolicy::Full => f.write_str("full"),
            FtPolicy::Inject => f.write_str("inject"),
        }
    }
}

/// Which NoC we are simulating: the Hoplite baseline or a FastTrack variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NocKind {
    /// Baseline Hoplite: unidirectional torus, short links only.
    Hoplite,
    /// FastTrack with express links of length `d`, depopulation factor `r`,
    /// and the given lane-change policy.
    FastTrack {
        /// Express-link length in hops.
        d: u16,
        /// Depopulation factor.
        r: u16,
        /// Lane-change policy.
        policy: FtPolicy,
    },
}

/// How packet delivery (exit) interacts with the south output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExitPolicy {
    /// The NoC exit shares the `S_sh` output port (Hoplite's austere
    /// two-mux switch): a delivery and a south-bound short hop cannot
    /// happen in the same cycle at one router.
    #[default]
    SharedWithSouth,
    /// A dedicated exit port: delivery does not block `S_sh`.
    Dedicated,
}

/// Extra pipeline registers inserted along NoC links (paper §V: "we can
/// also insert a configurable number of additional registers along the
/// NoC links if an even faster frequency is desired"). Each extra
/// register adds one cycle of link latency and shortens the per-segment
/// wire, raising the achievable clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkPipeline {
    /// Extra registers on each short link.
    pub short: u8,
    /// Extra registers on each express link (longer wires benefit most).
    pub express: u8,
}

impl LinkPipeline {
    /// No extra registers (the paper's default single-register links).
    pub const NONE: LinkPipeline = LinkPipeline {
        short: 0,
        express: 0,
    };

    /// Cycles a short-link traversal takes.
    pub fn short_cycles(self) -> u16 {
        1 + self.short as u16
    }

    /// Cycles an express-link traversal takes.
    pub fn express_cycles(self) -> u16 {
        1 + self.express as u16
    }

    /// The largest link delay (sizes the engine's timing wheel).
    pub fn max_cycles(self) -> u16 {
        self.short_cycles().max(self.express_cycles())
    }
}

/// Errors raised when validating a [`NocConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `n` must be at least 2.
    SystemTooSmall {
        /// Offending system size.
        n: u16,
    },
    /// Express length `d` must satisfy `1 <= d <= n/2`.
    BadExpressLength {
        /// Offending express length.
        d: u16,
        /// System size.
        n: u16,
    },
    /// Depopulation `r` must satisfy `1 <= r <= d` and `d % r == 0`.
    BadDepopulation {
        /// Express length.
        d: u16,
        /// Offending depopulation factor.
        r: u16,
    },
    /// `n % r != 0`: express routers would not tile the ring evenly.
    DepopulationDoesNotTile {
        /// System size.
        n: u16,
        /// Offending depopulation factor.
        r: u16,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::SystemTooSmall { n } => {
                write!(f, "system size n={n} too small, need n >= 2")
            }
            ConfigError::BadExpressLength { d, n } => {
                write!(
                    f,
                    "express length d={d} invalid for n={n}, need 1 <= d <= n/2"
                )
            }
            ConfigError::BadDepopulation { d, r } => {
                write!(
                    f,
                    "depopulation r={r} invalid for d={d}, need 1 <= r <= d and d % r == 0"
                )
            }
            ConfigError::DepopulationDoesNotTile { n, r } => {
                write!(
                    f,
                    "depopulation r={r} does not tile ring of size n={n} (n % r != 0)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A fully validated NoC configuration.
///
/// Construct via [`NocConfig::hoplite`] or [`NocConfig::fasttrack`] (the
/// paper's `FT(N², D, R)` notation).
///
/// # Examples
///
/// ```
/// use fasttrack_core::config::{NocConfig, FtPolicy};
///
/// // The paper's workhorse configuration FT(64, 2, 1): an 8x8 torus with
/// // length-2 express links at every router.
/// let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full)?;
/// assert_eq!(cfg.num_nodes(), 64);
/// assert!(cfg.has_express());
/// # Ok::<(), fasttrack_core::config::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    n: u16,
    kind: NocKind,
    exit: ExitPolicy,
    pipeline: LinkPipeline,
    /// `express_hops[delta]`: minimal number of express hops that lands a
    /// packet exactly `delta` positions ahead on the ring (None if the
    /// express network cannot reach that offset). Index 0 is `None`.
    express_hops: Vec<Option<u16>>,
}

impl NocConfig {
    /// Baseline Hoplite on an `n × n` unidirectional torus.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::SystemTooSmall`] if `n < 2`.
    pub fn hoplite(n: u16) -> Result<Self, ConfigError> {
        if n < 2 {
            return Err(ConfigError::SystemTooSmall { n });
        }
        Ok(NocConfig {
            n,
            kind: NocKind::Hoplite,
            exit: ExitPolicy::default(),
            pipeline: LinkPipeline::NONE,
            express_hops: vec![None; n as usize],
        })
    }

    /// FastTrack `FT(n², d, r)` on an `n × n` torus.
    ///
    /// `d` is the express-link length in hops; `r` is the depopulation
    /// factor (express-capable routers appear every `r` positions; `r == 1`
    /// is the fully populated topology, `r == d` the cheapest one that
    /// still retains express links).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `n < 2`, `d` is outside `1..=n/2`,
    /// `r` is outside `1..=d` or does not divide `d`, or `r` does not
    /// divide `n`.
    ///
    /// # `FT(N², 1, 1)` degenerates to Hoplite
    ///
    /// A length-1 "express" link is physically indistinguishable from
    /// the short torus link next to it, so `d == 1` keeps the FastTrack
    /// *name* (and cost-model accounting) but degenerates the datapath
    /// to exactly baseline Hoplite: shared south/exit mux, no express
    /// lanes, no lane-change logic. The differential tests assert that
    /// `FT(N², 1, 1)` is cycle-for-cycle identical to `hoplite(n)`.
    pub fn fasttrack(n: u16, d: u16, r: u16, policy: FtPolicy) -> Result<Self, ConfigError> {
        if n < 2 {
            return Err(ConfigError::SystemTooSmall { n });
        }
        if d == 0 || d > n / 2 {
            return Err(ConfigError::BadExpressLength { d, n });
        }
        if r == 0 || r > d || !d.is_multiple_of(r) {
            return Err(ConfigError::BadDepopulation { d, r });
        }
        if !n.is_multiple_of(r) {
            return Err(ConfigError::DepopulationDoesNotTile { n, r });
        }
        let (exit, express_hops) = if d == 1 {
            // Degenerate: Hoplite datapath (see doc comment above).
            (ExitPolicy::SharedWithSouth, vec![None; n as usize])
        } else {
            // FastTrack routers carry a dedicated 5:1 exit mux (paper
            // Fig. 9b) — unlike Hoplite's shared S/exit port.
            (ExitPolicy::Dedicated, compute_express_hops(n, d))
        };
        Ok(NocConfig {
            n,
            kind: NocKind::FastTrack { d, r, policy },
            exit,
            pipeline: LinkPipeline::NONE,
            express_hops,
        })
    }

    /// Replaces the exit policy (default: [`ExitPolicy::SharedWithSouth`]).
    pub fn with_exit_policy(mut self, exit: ExitPolicy) -> Self {
        self.exit = exit;
        self
    }

    /// Adds extra pipeline registers to the NoC links (paper §V).
    pub fn with_link_pipeline(mut self, pipeline: LinkPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// The link pipelining configuration.
    pub fn link_pipeline(&self) -> LinkPipeline {
        self.pipeline
    }

    /// Torus side length `N`.
    pub fn n(&self) -> u16 {
        self.n
    }

    /// Total routers/PEs (`N²`).
    pub fn num_nodes(&self) -> usize {
        self.n as usize * self.n as usize
    }

    /// Which NoC family this is.
    pub fn kind(&self) -> NocKind {
        self.kind
    }

    /// Exit-port sharing policy.
    pub fn exit_policy(&self) -> ExitPolicy {
        self.exit
    }

    /// True for FastTrack configurations (express links present).
    pub fn has_express(&self) -> bool {
        matches!(self.kind, NocKind::FastTrack { .. })
    }

    /// Express-link length `D` (0 for Hoplite).
    pub fn d(&self) -> u16 {
        match self.kind {
            NocKind::Hoplite => 0,
            NocKind::FastTrack { d, .. } => d,
        }
    }

    /// Depopulation factor `R` (0 for Hoplite).
    pub fn r(&self) -> u16 {
        match self.kind {
            NocKind::Hoplite => 0,
            NocKind::FastTrack { r, .. } => r,
        }
    }

    /// Lane-change policy (None for Hoplite).
    pub fn ft_policy(&self) -> Option<FtPolicy> {
        match self.kind {
            NocKind::Hoplite => None,
            NocKind::FastTrack { policy, .. } => Some(policy),
        }
    }

    /// True if the router at ring position `pos` has express ports in a
    /// dimension (both the express input and output are present, since
    /// `d % r == 0` makes express chains land only on express routers).
    pub fn has_express_at(&self, pos: u16) -> bool {
        match self.kind {
            NocKind::Hoplite => false,
            // d == 1 degenerates to the Hoplite datapath (no express
            // routers anywhere); see [`NocConfig::fasttrack`].
            NocKind::FastTrack { d: 1, .. } => false,
            NocKind::FastTrack { r, .. } => pos.is_multiple_of(r),
        }
    }

    /// Minimal number of express hops covering exactly `delta` ring
    /// positions, or `None` when the express network cannot reach that
    /// offset (or `delta == 0`).
    pub fn express_hops_for(&self, delta: u16) -> Option<u16> {
        self.express_hops.get(delta as usize).copied().flatten()
    }

    /// Whether a packet `delta` positions away from its target column/row,
    /// standing at an express-capable router, should board the express
    /// lane: the offset must be express-reachable in **no more** cycles
    /// than riding short links (paper: use express iff `Δ ≥ D`). For
    /// `D = 1` the table is empty — the configuration degenerates to the
    /// Hoplite datapath (see [`NocConfig::fasttrack`]).
    pub fn express_worthwhile(&self, delta: u16) -> bool {
        match self.express_hops_for(delta) {
            Some(k) => k <= delta,
            None => false,
        }
    }

    /// True when a ring offset of `delta` is *reachable* by some number of
    /// express hops (equivalently `delta % gcd(D, N) == 0`; offset 0 counts
    /// as aligned). This is the invariant that must hold for a packet to be
    /// allowed onto an express lane: express hops preserve the offset
    /// modulo `gcd(D, N)`, so a misaligned packet could never get off.
    pub fn express_aligned(&self, delta: u16) -> bool {
        match self.kind {
            NocKind::Hoplite => false,
            NocKind::FastTrack { d, .. } => delta.is_multiple_of(gcd(d, self.n)),
        }
    }

    /// The number of parallel wire bundles per channel cut,
    /// `1 + D/R` (paper §IV-A): one short bundle plus `D/R` express
    /// bundles braided through the ring. Hoplite is 1.
    pub fn wire_multiplier(&self) -> u16 {
        match self.kind {
            NocKind::Hoplite => 1,
            NocKind::FastTrack { d, r, .. } => 1 + d / r,
        }
    }

    /// Short human-readable name, e.g. `Hoplite 8x8` or `FT(64,2,1)`.
    pub fn name(&self) -> String {
        match self.kind {
            NocKind::Hoplite => format!("Hoplite {0}x{0}", self.n),
            NocKind::FastTrack { d, r, .. } => {
                format!("FT({},{},{})", self.num_nodes(), d, r)
            }
        }
    }
}

impl fmt::Display for NocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Computes, for every ring offset `delta` in `0..n`, the minimal number of
/// express hops (each of length `d`, wrapping mod `n`) that lands exactly on
/// `delta`. Offset 0 maps to `None` (no point riding express to stay put).
fn compute_express_hops(n: u16, d: u16) -> Vec<Option<u16>> {
    let mut table = vec![None; n as usize];
    let g = gcd(d, n);
    // Walk the express ring; it returns to the origin after n/g hops.
    let mut pos = 0u16;
    for k in 1..=(n / g) {
        pos = (pos + d) % n;
        let slot = &mut table[pos as usize];
        if pos != 0 && slot.is_none() {
            *slot = Some(k);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoplite_basics() {
        let cfg = NocConfig::hoplite(8).unwrap();
        assert_eq!(cfg.n(), 8);
        assert_eq!(cfg.num_nodes(), 64);
        assert!(!cfg.has_express());
        assert_eq!(cfg.d(), 0);
        assert_eq!(cfg.wire_multiplier(), 1);
        assert_eq!(cfg.name(), "Hoplite 8x8");
        assert!(!cfg.has_express_at(0));
        assert_eq!(cfg.express_hops_for(4), None);
    }

    #[test]
    fn fasttrack_notation() {
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        assert_eq!(cfg.name(), "FT(64,2,1)");
        assert_eq!(cfg.d(), 2);
        assert_eq!(cfg.r(), 1);
        assert_eq!(cfg.ft_policy(), Some(FtPolicy::Full));
        assert_eq!(cfg.wire_multiplier(), 3);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            NocConfig::hoplite(1).unwrap_err(),
            ConfigError::SystemTooSmall { n: 1 }
        );
        assert_eq!(
            NocConfig::fasttrack(8, 0, 1, FtPolicy::Full).unwrap_err(),
            ConfigError::BadExpressLength { d: 0, n: 8 }
        );
        assert_eq!(
            NocConfig::fasttrack(8, 5, 1, FtPolicy::Full).unwrap_err(),
            ConfigError::BadExpressLength { d: 5, n: 8 }
        );
        assert_eq!(
            NocConfig::fasttrack(8, 4, 3, FtPolicy::Full).unwrap_err(),
            ConfigError::BadDepopulation { d: 4, r: 3 }
        );
        assert_eq!(
            NocConfig::fasttrack(6, 3, 0, FtPolicy::Full).unwrap_err(),
            ConfigError::BadDepopulation { d: 3, r: 0 }
        );
        // r=3 does not tile n=8 even if it divides d=3... first d check:
        // d=3 <= 4 ok, r=3 divides d=3 ok, but 8 % 3 != 0.
        assert_eq!(
            NocConfig::fasttrack(8, 3, 3, FtPolicy::Full).unwrap_err(),
            ConfigError::DepopulationDoesNotTile { n: 8, r: 3 }
        );
    }

    #[test]
    fn express_hops_divisible() {
        // n=8, d=2: even offsets reachable in delta/2 hops.
        let cfg = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        assert_eq!(cfg.express_hops_for(0), None);
        assert_eq!(cfg.express_hops_for(2), Some(1));
        assert_eq!(cfg.express_hops_for(4), Some(2));
        assert_eq!(cfg.express_hops_for(6), Some(3));
        assert_eq!(cfg.express_hops_for(1), None);
        assert_eq!(cfg.express_hops_for(7), None);
    }

    #[test]
    fn express_hops_coprime_wraps() {
        // n=8, d=3: gcd=1, every offset reachable, possibly via wrap.
        let cfg = NocConfig::fasttrack(8, 3, 1, FtPolicy::Full).unwrap();
        assert_eq!(cfg.express_hops_for(3), Some(1));
        assert_eq!(cfg.express_hops_for(6), Some(2));
        assert_eq!(cfg.express_hops_for(1), Some(3)); // 3*3 = 9 ≡ 1 (mod 8)
        assert_eq!(cfg.express_hops_for(4), Some(4)); // 12 ≡ 4
        assert_eq!(cfg.express_hops_for(7), Some(5)); // 15 ≡ 7
        assert_eq!(cfg.express_hops_for(2), Some(6)); // 18 ≡ 2
        assert_eq!(cfg.express_hops_for(5), Some(7)); // 21 ≡ 5
    }

    #[test]
    fn express_worthwhile_only_when_faster() {
        let cfg = NocConfig::fasttrack(8, 3, 1, FtPolicy::Full).unwrap();
        assert!(cfg.express_worthwhile(6)); // 2 hops < 6
        assert!(cfg.express_worthwhile(3)); // 1 hop < 3
        assert!(!cfg.express_worthwhile(1)); // 3 hops > 1 short hop
        assert!(!cfg.express_worthwhile(2)); // 6 hops > 2
        assert!(cfg.express_worthwhile(7)); // 5 hops < 7
        assert!(!cfg.express_worthwhile(0));
    }

    #[test]
    fn depopulation_positions() {
        let cfg = NocConfig::fasttrack(8, 2, 2, FtPolicy::Full).unwrap();
        assert!(cfg.has_express_at(0));
        assert!(!cfg.has_express_at(1));
        assert!(cfg.has_express_at(2));
        assert_eq!(cfg.wire_multiplier(), 2);
        assert_eq!(cfg.name(), "FT(64,2,2)");
    }

    #[test]
    fn d1_degenerates_to_hoplite_datapath() {
        let cfg = NocConfig::fasttrack(8, 1, 1, FtPolicy::Full).unwrap();
        assert_eq!(cfg.name(), "FT(64,1,1)");
        assert!(cfg.has_express(), "cost accounting keeps the FT kind");
        assert_eq!(cfg.exit_policy(), ExitPolicy::SharedWithSouth);
        for pos in 0..8 {
            assert!(!cfg.has_express_at(pos));
        }
        for delta in 0..8 {
            assert_eq!(cfg.express_hops_for(delta), None);
            assert!(!cfg.express_worthwhile(delta));
        }
        // d >= 2 keeps the dedicated FastTrack exit mux.
        let ft2 = NocConfig::fasttrack(8, 2, 1, FtPolicy::Full).unwrap();
        assert_eq!(ft2.exit_policy(), ExitPolicy::Dedicated);
    }

    #[test]
    fn exit_policy_builder() {
        let cfg = NocConfig::hoplite(4)
            .unwrap()
            .with_exit_policy(ExitPolicy::Dedicated);
        assert_eq!(cfg.exit_policy(), ExitPolicy::Dedicated);
        let cfg2 = NocConfig::hoplite(4).unwrap();
        assert_eq!(cfg2.exit_policy(), ExitPolicy::SharedWithSouth);
    }

    #[test]
    fn config_error_display() {
        let e = ConfigError::BadExpressLength { d: 9, n: 8 };
        assert!(e.to_string().contains("d=9"));
    }
}
