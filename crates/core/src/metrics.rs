//! Windowed (per-epoch) metrics over the event stream, plus an
//! automatic steady-state detector.
//!
//! [`WindowedMetrics`] is an [`EventSink`] that folds the engine's event
//! stream into fixed-length epochs: rolling throughput, latency
//! mean/p50/p99, deflection rate, stall counts, and (optionally) a
//! per-link utilization time series. Because it consumes the same
//! events any exporter sees, it needs no engine support beyond
//! [`crate::noc::Noc::step_with_sink`].
//!
//! The steady-state detector ([`WindowedMetrics::steady_state_epoch`])
//! replaces hand-picked [`crate::sim::SimOptions::warmup_cycles`] for
//! open-loop runs: it finds the first epoch from which the delivered
//! rate stays inside a tolerance band around the run's tail rate, and
//! [`WindowedMetrics::suggested_warmup`] converts that epoch back into
//! a warmup cycle count.

use crate::stats::Histogram;
use crate::trace::{EventSink, SimEvent};

/// Accumulated observations for one fixed-length window of cycles.
#[derive(Debug, Clone, Default)]
pub struct EpochStats {
    /// First cycle of the epoch.
    pub start_cycle: u64,
    /// Cycles covered (the configured epoch length; the trailing partial
    /// epoch reports fewer).
    pub cycles: u64,
    /// Packets injected into the NoC during the epoch.
    pub injected: u64,
    /// Packets delivered during the epoch.
    pub delivered: u64,
    /// Routing decisions made for in-flight packets.
    pub decisions: u64,
    /// Deflections among those decisions.
    pub deflections: u64,
    /// Express-link traversals.
    pub express_hops: u64,
    /// Cycles in which some PE wanted to inject but stalled.
    pub stalls: u64,
    /// Sum of end-to-end latencies of this epoch's deliveries.
    latency_sum: u64,
    /// End-to-end latency histogram of this epoch's deliveries.
    latency: Histogram,
    /// `link_usage[node][port]` assignments this epoch (present only
    /// when link tracking is enabled).
    pub link_usage: Vec<[u64; 5]>,
}

impl EpochStats {
    /// Delivered packets per cycle per PE over this epoch.
    pub fn throughput_per_pe(&self, nodes: usize) -> f64 {
        if self.cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64 / nodes as f64
        }
    }

    /// Mean end-to-end latency of this epoch's deliveries.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// Median end-to-end latency (histogram-bucket upper bound).
    pub fn p50_latency(&self) -> u64 {
        self.latency.percentile(50.0).unwrap_or(0)
    }

    /// 99th-percentile end-to-end latency (histogram-bucket upper bound).
    pub fn p99_latency(&self) -> u64 {
        self.latency.percentile(99.0).unwrap_or(0)
    }

    /// Fraction of routing decisions that deflected.
    pub fn deflection_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.deflections as f64 / self.decisions as f64
        }
    }

    /// Utilization (0..=1) of output `port` at `node` over the epoch
    /// (0 when link tracking is off).
    pub fn link_utilization(&self, node: usize, port: usize) -> f64 {
        if self.cycles == 0 || node >= self.link_usage.len() {
            0.0
        } else {
            self.link_usage[node][port] as f64 / self.cycles as f64
        }
    }
}

/// An [`EventSink`] that aggregates events into fixed-length epochs.
#[derive(Debug, Clone)]
pub struct WindowedMetrics {
    epoch_len: u64,
    nodes: usize,
    track_links: bool,
    completed: Vec<EpochStats>,
    cur: EpochStats,
    /// Epoch index of `cur`.
    cur_index: u64,
    /// One past the last cycle any event or cycle marker reached.
    horizon: u64,
    /// Cycle of the driver's warmup reset, if one was emitted.
    warmup_reset_at: Option<u64>,
    /// True if the driver reported a truncated run.
    truncated: bool,
}

impl WindowedMetrics {
    /// Metrics over `epoch_len`-cycle windows for a `nodes`-PE system.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is 0.
    pub fn new(nodes: usize, epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        WindowedMetrics {
            epoch_len,
            nodes,
            track_links: false,
            completed: Vec::new(),
            cur: EpochStats::default(),
            cur_index: 0,
            horizon: 0,
            warmup_reset_at: None,
            truncated: false,
        }
    }

    /// Enables the per-link utilization time series (a `[u64; 5]` per
    /// node per epoch — sized for small diagnostic runs).
    pub fn with_link_series(mut self) -> Self {
        self.track_links = true;
        self.cur.link_usage = vec![[0; 5]; self.nodes];
        self
    }

    /// The configured epoch length in cycles.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// PEs in the observed system.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Completed epochs, in time order (the in-progress epoch is not
    /// included; call [`WindowedMetrics::finish`] to flush it).
    pub fn epochs(&self) -> &[EpochStats] {
        &self.completed
    }

    /// Cycle of the driver's warmup reset, if one was observed.
    pub fn warmup_reset_at(&self) -> Option<u64> {
        self.warmup_reset_at
    }

    /// True if the driver reported hitting its cycle cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Flushes the trailing partial epoch (if it saw any cycles) and
    /// returns all epochs.
    pub fn finish(mut self) -> Vec<EpochStats> {
        let partial_cycles = self.horizon.saturating_sub(self.cur_index * self.epoch_len);
        if partial_cycles > 0 {
            self.cur.start_cycle = self.cur_index * self.epoch_len;
            self.cur.cycles = partial_cycles;
            self.completed.push(self.cur);
        }
        self.completed
    }

    /// Rolls completed epochs forward so `cycle` lands in `cur`.
    fn advance_to(&mut self, cycle: u64) {
        self.horizon = self.horizon.max(cycle + 1);
        while cycle >= (self.cur_index + 1) * self.epoch_len {
            let link_usage = if self.track_links {
                vec![[0; 5]; self.nodes]
            } else {
                Vec::new()
            };
            let mut done = std::mem::replace(
                &mut self.cur,
                EpochStats {
                    link_usage,
                    ..EpochStats::default()
                },
            );
            done.start_cycle = self.cur_index * self.epoch_len;
            done.cycles = self.epoch_len;
            self.completed.push(done);
            self.cur_index += 1;
        }
    }

    /// Delivered-rate (per cycle per PE) of each completed epoch.
    pub fn epoch_rates(&self) -> Vec<f64> {
        self.completed
            .iter()
            .map(|e| e.throughput_per_pe(self.nodes))
            .collect()
    }

    /// Aggregate delivered rate (per cycle per PE) from `epoch` onward,
    /// i.e. the measurement that would result from treating everything
    /// before `epoch` as warmup.
    pub fn rate_after(&self, epoch: usize) -> f64 {
        let tail = &self.completed[epoch.min(self.completed.len())..];
        let cycles: u64 = tail.iter().map(|e| e.cycles).sum();
        let delivered: u64 = tail.iter().map(|e| e.delivered).sum();
        if cycles == 0 || self.nodes == 0 {
            0.0
        } else {
            delivered as f64 / cycles as f64 / self.nodes as f64
        }
    }

    /// Detects the epoch at which the delivered rate settles: the start
    /// of the longest contiguous run of epochs whose rate stays within
    /// `tolerance` (relative) of the median epoch rate. The median makes
    /// the detector robust against both the warmup ramp and the drain
    /// tail of a finite-packet run — neither pulls the reference rate
    /// the way a mean would. Returns `None` when the run is too short
    /// (< 4 epochs), idle, or never holds the band for more than a
    /// single epoch.
    pub fn steady_state_epoch_with_tolerance(&self, tolerance: f64) -> Option<usize> {
        // A run shorter than one window completes no epochs; keep that
        // guard explicit so short runs can never reach the plateau
        // search below and report a bogus epoch 0.
        if self.horizon < self.epoch_len {
            return None;
        }
        let rates = self.epoch_rates();
        if rates.len() < 4 {
            return None;
        }
        let mut sorted = rates.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let mid = sorted.len() / 2;
        let median = if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        };
        if median <= 0.0 {
            return None;
        }
        let within = |r: f64| (r - median).abs() <= tolerance * median;
        // The steady region is the longest contiguous in-band run
        // (earliest on ties); a single in-band epoch is not a plateau.
        let mut best: Option<(usize, usize)> = None;
        let mut i = 0;
        while i < rates.len() {
            if within(rates[i]) {
                let start = i;
                while i < rates.len() && within(rates[i]) {
                    i += 1;
                }
                if best.is_none_or(|(_, len)| i - start > len) {
                    best = Some((start, i - start));
                }
            } else {
                i += 1;
            }
        }
        best.and_then(|(start, len)| (len >= 2).then_some(start))
    }

    /// [`WindowedMetrics::steady_state_epoch_with_tolerance`] at the
    /// default 10% band.
    pub fn steady_state_epoch(&self) -> Option<usize> {
        self.steady_state_epoch_with_tolerance(0.10)
    }

    /// The warmup cycle count the steady-state detector suggests — the
    /// start cycle of the detected steady epoch. A drop-in replacement
    /// for hand-picking [`crate::sim::SimOptions::warmup_cycles`].
    pub fn suggested_warmup(&self) -> Option<u64> {
        self.steady_state_epoch()
            .map(|e| self.completed[e].start_cycle)
    }
}

impl EventSink for WindowedMetrics {
    fn emit(&mut self, event: &SimEvent) {
        self.advance_to(event.cycle());
        match *event {
            SimEvent::Inject { .. } => self.cur.injected += 1,
            SimEvent::RouteDecision { node, out, .. } => {
                self.cur.decisions += 1;
                if self.track_links && node < self.cur.link_usage.len() {
                    self.cur.link_usage[node][out.index()] += 1;
                }
            }
            SimEvent::Deflect { .. } => self.cur.deflections += 1,
            SimEvent::ExpressHop { .. } => self.cur.express_hops += 1,
            SimEvent::Eject { delivery, .. } => {
                self.cur.delivered += 1;
                let lat = delivery.total_latency();
                self.cur.latency_sum += lat;
                self.cur.latency.record(lat);
            }
            SimEvent::QueueStall { .. } => self.cur.stalls += 1,
            // Fault events feed the health monitor's dedicated counters;
            // windowed epochs track only the throughput-side signals.
            SimEvent::FaultDrop { .. } | SimEvent::FaultReroute { .. } => {}
            SimEvent::WarmupReset { cycle } => self.warmup_reset_at = Some(cycle),
            SimEvent::Truncated { .. } => self.truncated = true,
        }
    }

    fn end_cycle(&mut self, cycle: u64) {
        // Idempotent per cycle: multi-channel banks call this once per
        // channel with the same cycle number.
        self.advance_to(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;
    use crate::packet::{Delivery, Packet, PacketId};

    /// An eject at `cycle` whose delivery reports exactly `latency`
    /// (enqueued at 0, consumed at `latency` — only the event cycle
    /// drives epoch attribution).
    fn eject_at(cycle: u64, latency: u64) -> SimEvent {
        let packet = Packet::new(PacketId(0), Coord::new(0, 0), Coord::new(1, 0), 0, 0);
        SimEvent::Eject {
            cycle,
            node: 1,
            delivery: Delivery {
                packet,
                cycle: latency,
            },
        }
    }

    #[test]
    fn epochs_roll_at_boundaries() {
        let mut m = WindowedMetrics::new(4, 10);
        m.emit(&eject_at(3, 2));
        m.emit(&eject_at(9, 2));
        m.emit(&eject_at(10, 2)); // rolls epoch 0
        for c in 10..25 {
            m.end_cycle(c);
        }
        assert_eq!(m.epochs().len(), 2);
        assert_eq!(m.epochs()[0].delivered, 2);
        assert_eq!(m.epochs()[0].start_cycle, 0);
        assert_eq!(m.epochs()[0].cycles, 10);
        assert_eq!(m.epochs()[1].delivered, 1);
        let all = m.finish();
        assert_eq!(all.len(), 3); // trailing partial epoch flushed
        assert_eq!(all[2].cycles, 5);
    }

    #[test]
    fn run_shorter_than_one_window_reports_no_steady_state() {
        // Regression: a run that ends inside the first window must not
        // panic anywhere and must never suggest a warmup — there is no
        // completed epoch to anchor one.
        let mut m = WindowedMetrics::new(4, 100);
        for c in 0..7 {
            m.emit(&eject_at(c, 1));
            m.end_cycle(c);
        }
        assert!(m.epochs().is_empty());
        assert_eq!(m.steady_state_epoch(), None);
        assert_eq!(m.suggested_warmup(), None);
        assert_eq!(m.rate_after(0), 0.0);
        assert_eq!(m.rate_after(10), 0.0, "out-of-range epoch clamps");
        // Flushing the trailing partial epoch yields its true length and
        // still no steady state on a fresh short run.
        let epochs = m.finish();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].cycles, 7);
        assert_eq!(epochs[0].delivered, 7);
    }

    #[test]
    fn empty_run_is_harmless() {
        let m = WindowedMetrics::new(4, 10);
        assert_eq!(m.steady_state_epoch(), None);
        assert_eq!(m.suggested_warmup(), None);
        assert_eq!(m.rate_after(0), 0.0);
        assert!(m.finish().is_empty());
    }

    #[test]
    fn quiet_epochs_are_still_emitted() {
        let mut m = WindowedMetrics::new(4, 5);
        for c in 0..20 {
            m.end_cycle(c);
        }
        assert_eq!(m.epochs().len(), 3);
        assert!(m.epochs().iter().all(|e| e.delivered == 0));
    }

    #[test]
    fn end_cycle_is_idempotent_per_cycle() {
        let mut m = WindowedMetrics::new(4, 5);
        for c in 0..10 {
            for _channel in 0..3 {
                m.end_cycle(c);
            }
        }
        assert_eq!(m.epochs().len(), 1);
        assert_eq!(m.finish().len(), 2);
    }

    #[test]
    fn latency_and_deflection_rates() {
        let mut m = WindowedMetrics::new(2, 100);
        for _ in 0..3 {
            m.emit(&SimEvent::RouteDecision {
                cycle: 1,
                node: 0,
                packet: PacketId(0),
                in_port: None,
                out: crate::port::OutPort::EastSh,
                src: Coord::new(0, 0),
                dst: Coord::new(1, 0),
                hops: 1,
            });
        }
        m.emit(&SimEvent::Deflect {
            cycle: 1,
            node: 0,
            packet: PacketId(0),
            out: crate::port::OutPort::SouthSh,
        });
        m.emit(&eject_at(2, 10));
        m.emit(&eject_at(3, 20));
        let epochs = m.finish();
        assert_eq!(epochs.len(), 1);
        let e = &epochs[0];
        assert!((e.mean_latency() - 15.0).abs() < 1e-9);
        assert!(e.p50_latency() >= 10);
        assert!(e.p99_latency() >= e.p50_latency());
        assert!((e.deflection_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn link_series_tracks_port_usage() {
        let mut m = WindowedMetrics::new(4, 10).with_link_series();
        m.emit(&SimEvent::RouteDecision {
            cycle: 0,
            node: 2,
            packet: PacketId(0),
            in_port: None,
            out: crate::port::OutPort::EastSh,
            src: Coord::new(0, 0),
            dst: Coord::new(1, 0),
            hops: 1,
        });
        for c in 0..10 {
            m.end_cycle(c);
        }
        let epochs = m.finish();
        let e = &epochs[0];
        assert!((e.link_utilization(2, crate::port::OutPort::EastSh.index()) - 0.1).abs() < 1e-9);
        assert_eq!(e.link_utilization(3, 0), 0.0);
    }

    #[test]
    fn steady_state_detects_ramp() {
        let mut m = WindowedMetrics::new(1, 10);
        // Epoch rates: 0, 0.1, then steady 0.5 for 10 epochs.
        let mut cycle = 0;
        for (epoch, &per_epoch) in [0u64, 1, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5].iter().enumerate() {
            for i in 0..per_epoch {
                m.emit(&eject_at(epoch as u64 * 10 + i, 1));
            }
            cycle = (epoch as u64 + 1) * 10;
            m.end_cycle(cycle - 1);
        }
        let _ = cycle;
        let steady = m.steady_state_epoch().expect("ramp should settle");
        assert_eq!(steady, 2);
        assert_eq!(m.suggested_warmup(), Some(20));
        // Measuring after the detected epoch recovers the plateau rate.
        assert!((m.rate_after(steady) - 0.5).abs() < 1e-9);
        // Measuring from the start underestimates it.
        assert!(m.rate_after(0) < 0.45);
    }

    #[test]
    fn steady_state_needs_enough_epochs() {
        let mut m = WindowedMetrics::new(1, 10);
        m.emit(&eject_at(0, 1));
        m.end_cycle(19);
        assert_eq!(m.steady_state_epoch(), None);
    }

    #[test]
    fn driver_markers_recorded() {
        let mut m = WindowedMetrics::new(4, 10);
        m.emit(&SimEvent::WarmupReset { cycle: 30 });
        m.emit(&SimEvent::Truncated { cycle: 90 });
        assert_eq!(m.warmup_reset_at(), Some(30));
        assert!(m.truncated());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_epoch_rejected() {
        WindowedMetrics::new(4, 0);
    }
}
