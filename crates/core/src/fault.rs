//! Deterministic fault injection and graceful degradation.
//!
//! A [`FaultPlan`] describes broken fabric resources — permanently dead
//! express links, transient link drop/corruption windows, fail-stop
//! routers, and stalled injectors. Plans are plain data: they can be
//! built by hand or derived from a seed with [`FaultPlan::random`]
//! (SplitMix64-based, so the same seed always yields the same schedule,
//! exactly like sweep point seeds).
//!
//! The engine degrades gracefully where the topology allows it:
//!
//! * **Dead express links** are masked out of the router's available
//!   output set, so packets deflect onto the plain Hoplite ring instead
//!   of being lost. Each such decision is counted in
//!   [`crate::stats::SimStats::rerouted`] and emitted as
//!   [`crate::trace::SimEvent::FaultReroute`].
//! * **Dead shared-ring links** are rejected by [`FaultPlan::validate`]:
//!   the unidirectional torus ring is the deflection escape path, and
//!   removing any segment of it partitions the network for bufferless
//!   routing.
//! * **Transient link faults** and **fail-stop routers** lose packets.
//!   Every loss decrements the in-flight count and increments
//!   [`crate::stats::SimStats::dropped`], so exact conservation holds:
//!   `delivered + in_flight + dropped == injected`.
//! * **Stalled injectors** suppress PE injection for a window; queued
//!   packets wait (counted as injection stalls), nothing is lost.

use std::fmt;

use crate::config::NocConfig;
use crate::geom::Coord;
use crate::port::{OutPort, OutSet};
use crate::router::RouterClass;
use crate::sweep::splitmix64;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A permanently dead express link: the link leaving `node` through
    /// `out` never carries a packet again. Routing masks the port, so
    /// traffic deflects onto the plain ring. Packets may still be lost
    /// in two exactly-counted ways: a dead link can break Hall's
    /// condition at a fully occupied router (the unassigned loser is
    /// dropped), and under [`crate::config::FtPolicy::Inject`] — whose
    /// crossbar has no express-to-shared turn — a lane-locked express
    /// packet whose productive output is dead is dropped as stranded
    /// rather than orbiting the express ring forever.
    DeadLink {
        /// Node the link leaves from.
        node: usize,
        /// The dead output (must be an express port; see
        /// [`FaultError::PartitionsTorus`]).
        out: OutPort,
    },
    /// A transient link fault active for cycles `from..until`: packets
    /// crossing the link in that window are lost in flight (`corrupt ==
    /// false`) or corrupted and discarded at the sender's link interface
    /// (`corrupt == true`). Either way the packet is counted in
    /// [`crate::stats::SimStats::dropped`].
    TransientLink {
        /// Node the link leaves from.
        node: usize,
        /// The faulted output (any real link; not `Exit`).
        out: OutPort,
        /// First faulty cycle (inclusive).
        from: u64,
        /// First healthy cycle again (exclusive end of the window).
        until: u64,
        /// Model corruption-and-discard rather than a clean drop.
        corrupt: bool,
    },
    /// The router at `node` fail-stops at cycle `at`: from then on every
    /// packet arriving there (transit or delivery) is dropped and its PE
    /// neither injects nor delivers.
    FailStopRouter {
        /// The failing node.
        node: usize,
        /// First cycle at which the router is dead.
        at: u64,
    },
    /// The PE at `node` cannot inject during cycles `from..until`.
    /// Queued packets wait out the window; nothing is lost.
    StalledInjector {
        /// The stalled node.
        node: usize,
        /// First stalled cycle (inclusive).
        from: u64,
        /// First cycle injection works again (exclusive).
        until: u64,
    },
    /// A *dynamic* express-link outage: the link leaving `node` through
    /// `out` is dead for cycles `from..until` and **recovers** after.
    /// While down it behaves exactly like [`Fault::DeadLink`] (masked
    /// from routing, same express-only validation); once the window
    /// closes the link carries traffic again. Window boundaries are the
    /// epochs at which the engine re-patches its per-node dead-output
    /// table, so the hot path stays a table read.
    DownLink {
        /// Node the link leaves from.
        node: usize,
        /// The downed output (must be an express port).
        out: OutPort,
        /// First dead cycle (inclusive).
        from: u64,
        /// First healthy cycle again (exclusive end of the window).
        until: u64,
    },
}

impl Fault {
    /// The node the fault is anchored at.
    pub fn node(&self) -> usize {
        match *self {
            Fault::DeadLink { node, .. }
            | Fault::TransientLink { node, .. }
            | Fault::FailStopRouter { node, .. }
            | Fault::StalledInjector { node, .. }
            | Fault::DownLink { node, .. } => node,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::DeadLink { node, out } => write!(f, "dead link {out} at node {node}"),
            Fault::TransientLink {
                node,
                out,
                from,
                until,
                corrupt,
            } => {
                let what = if corrupt { "corrupting" } else { "dropping" };
                write!(
                    f,
                    "{what} link {out} at node {node}, cycles {from}..{until}"
                )
            }
            Fault::FailStopRouter { node, at } => {
                write!(f, "fail-stop router at node {node} from cycle {at}")
            }
            Fault::StalledInjector { node, from, until } => {
                write!(f, "stalled injector at node {node}, cycles {from}..{until}")
            }
            Fault::DownLink {
                node,
                out,
                from,
                until,
            } => {
                write!(
                    f,
                    "down link {out} at node {node}, cycles {from}..{until} (recovers)"
                )
            }
        }
    }
}

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A fault names a node outside the system.
    BadNode {
        /// The offending node id.
        node: usize,
        /// Nodes in the system.
        nodes: usize,
    },
    /// A dead link would sever the only route between some
    /// source/destination pairs. On the torus the shared ring is the
    /// deflection escape path of the bufferless router, so only express
    /// links may die permanently; on the single-path XY mesh every link
    /// is irreplaceable.
    PartitionsTorus {
        /// The offending node id.
        node: usize,
        /// The output that may not die.
        out: OutPort,
    },
    /// The fault names an express link at a router that has none (plain
    /// Hoplite, depopulated position, or `D == 1`).
    NoExpressLink {
        /// The offending node id.
        node: usize,
        /// The express output that does not exist there.
        out: OutPort,
    },
    /// A fault window is empty (`from >= until`).
    EmptyWindow {
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
    },
    /// `Exit` is delivery to the local PE, not a physical link.
    NotALink {
        /// The offending node id.
        node: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultError::BadNode { node, nodes } => {
                write!(
                    f,
                    "fault names node {node}, but the system has {nodes} nodes"
                )
            }
            FaultError::PartitionsTorus { node, out } => write!(
                f,
                "dead link {out} at node {node} would partition the network: it is the \
                 only route for some traffic (on the torus the shared ring is the \
                 deflection escape path; only express links may die permanently)"
            ),
            FaultError::NoExpressLink { node, out } => {
                write!(f, "node {node} has no express link {out} to fault")
            }
            FaultError::EmptyWindow { from, until } => {
                write!(f, "fault window {from}..{until} is empty")
            }
            FaultError::NotALink { node } => {
                write!(
                    f,
                    "Exit at node {node} is PE delivery, not a faultable link"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Knobs for [`FaultPlan::random`]: how many faults of each kind to
/// draw, and the cycle window transient faults are placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Permanently dead express links to draw (capped at the number of
    /// express links the topology actually has).
    pub dead_links: usize,
    /// Transient link drop/corruption windows to draw.
    pub transient_links: usize,
    /// Fail-stop routers to draw (each node fails at most once).
    pub fail_stop_routers: usize,
    /// Stalled injector windows to draw (each node stalls at most once).
    pub stalled_injectors: usize,
    /// Dynamic down-then-recover express-link windows to draw
    /// ([`Fault::DownLink`]).
    pub down_links: usize,
    /// Cycle window `[start, end)` that transient windows, stall
    /// windows, down-link windows, and fail-stop times are drawn from.
    pub window: (u64, u64),
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            dead_links: 0,
            transient_links: 0,
            fail_stop_routers: 0,
            stalled_injectors: 0,
            down_links: 0,
            window: (0, 1000),
        }
    }
}

/// Knobs for [`FaultPlan::storm`]: a randomized fault storm in which
/// express links die and heal on a schedule, modelling link failure as
/// an operating mode rather than a one-off event.
///
/// Kill events are drawn uniformly over the storm duration at the
/// configured rate; each downed link heals after a delay drawn from
/// `heal_after`. Overlapping windows on one link simply extend the
/// outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormSpec {
    /// Expected link-kill events per 1000 cycles across the whole
    /// fabric.
    pub kills_per_kcycle: u32,
    /// Healing delay range `[min, max)` in cycles after each kill.
    pub heal_after: (u64, u64),
    /// Kill events are placed in cycles `[0, duration)`.
    pub duration: u64,
}

impl Default for StormSpec {
    fn default() -> Self {
        StormSpec {
            kills_per_kcycle: 4,
            heal_after: (200, 600),
            duration: 4_000,
        }
    }
}

impl StormSpec {
    /// Total kill events this spec schedules.
    pub fn kill_events(&self) -> u64 {
        (self.duration * u64::from(self.kills_per_kcycle)) / 1000
    }
}

/// A reproducible set of faults to inject into one simulation.
///
/// An empty plan is the fault-free fabric: engines built with an empty
/// plan behave bit-identically to engines built without one (asserted by
/// the property tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault, builder style.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Checks the plan against a torus configuration: node ids in range,
    /// windows non-empty, dead links express-only and present at their
    /// router (the reachability pre-check — see
    /// [`FaultError::PartitionsTorus`]).
    pub fn validate(&self, cfg: &NocConfig) -> Result<(), FaultError> {
        let nodes = cfg.num_nodes();
        for fault in &self.faults {
            let node = fault.node();
            if node >= nodes {
                return Err(FaultError::BadNode { node, nodes });
            }
            match *fault {
                Fault::DeadLink { out, .. } => {
                    match out {
                        OutPort::Exit => return Err(FaultError::NotALink { node }),
                        OutPort::EastSh | OutPort::SouthSh => {
                            return Err(FaultError::PartitionsTorus { node, out })
                        }
                        OutPort::EastEx | OutPort::SouthEx => {}
                    }
                    if !router_outputs(cfg, node).contains(out) {
                        return Err(FaultError::NoExpressLink { node, out });
                    }
                }
                Fault::TransientLink {
                    out, from, until, ..
                } => {
                    if out == OutPort::Exit {
                        return Err(FaultError::NotALink { node });
                    }
                    if from >= until {
                        return Err(FaultError::EmptyWindow { from, until });
                    }
                    if out.is_express() && !router_outputs(cfg, node).contains(out) {
                        return Err(FaultError::NoExpressLink { node, out });
                    }
                }
                Fault::FailStopRouter { .. } => {}
                Fault::StalledInjector { from, until, .. } => {
                    if from >= until {
                        return Err(FaultError::EmptyWindow { from, until });
                    }
                }
                Fault::DownLink {
                    out, from, until, ..
                } => {
                    match out {
                        OutPort::Exit => return Err(FaultError::NotALink { node }),
                        OutPort::EastSh | OutPort::SouthSh => {
                            return Err(FaultError::PartitionsTorus { node, out })
                        }
                        OutPort::EastEx | OutPort::SouthEx => {}
                    }
                    if from >= until {
                        return Err(FaultError::EmptyWindow { from, until });
                    }
                    if !router_outputs(cfg, node).contains(out) {
                        return Err(FaultError::NoExpressLink { node, out });
                    }
                }
            }
        }
        Ok(())
    }

    /// Draws a valid plan for `cfg` from a seed. The same `(cfg, seed,
    /// spec)` triple always produces the same plan; distinct seeds
    /// decorrelate via SplitMix64 exactly like sweep point seeds.
    pub fn random(cfg: &NocConfig, seed: u64, spec: &FaultSpec) -> FaultPlan {
        let mut stream = SeedStream::new(seed);
        let nodes = cfg.num_nodes();
        let (w0, w1) = spec.window;
        let (w0, w1) = if w0 < w1 { (w0, w1) } else { (w0, w0 + 1) };
        let mut plan = FaultPlan::new();

        // Dead links: sample without replacement from the express links
        // that actually exist.
        let mut express = express_links(cfg);
        for _ in 0..spec.dead_links.min(express.len()) {
            let i = (stream.next() % express.len() as u64) as usize;
            let (node, out) = express.swap_remove(i);
            plan.push(Fault::DeadLink { node, out });
        }

        // Transient links: any real link, window drawn inside the spec
        // window (shared links always exist; express only where present).
        for _ in 0..spec.transient_links {
            let node = (stream.next() % nodes as u64) as usize;
            let outs = router_outputs(cfg, node);
            let candidates: Vec<OutPort> = [
                OutPort::EastSh,
                OutPort::SouthSh,
                OutPort::EastEx,
                OutPort::SouthEx,
            ]
            .into_iter()
            .filter(|&o| outs.contains(o))
            .collect();
            let out = candidates[(stream.next() % candidates.len() as u64) as usize];
            let from = w0 + stream.next() % (w1 - w0);
            let until = from + 1 + stream.next() % (w1 - from);
            let corrupt = stream.next() & 1 == 1;
            plan.push(Fault::TransientLink {
                node,
                out,
                from,
                until,
                corrupt,
            });
        }

        // Fail-stop routers: distinct nodes.
        let mut alive: Vec<usize> = (0..nodes).collect();
        for _ in 0..spec.fail_stop_routers.min(nodes) {
            let i = (stream.next() % alive.len() as u64) as usize;
            let node = alive.swap_remove(i);
            let at = w0 + stream.next() % (w1 - w0);
            plan.push(Fault::FailStopRouter { node, at });
        }

        // Stalled injectors: distinct nodes.
        let mut idle: Vec<usize> = (0..nodes).collect();
        for _ in 0..spec.stalled_injectors.min(nodes) {
            let i = (stream.next() % idle.len() as u64) as usize;
            let node = idle.swap_remove(i);
            let from = w0 + stream.next() % (w1 - w0);
            let until = from + 1 + stream.next() % (w1 - from);
            plan.push(Fault::StalledInjector { node, from, until });
        }

        // Down-then-recover express links: any express link, window
        // drawn inside the spec window (with replacement — overlapping
        // outages on one link extend each other).
        let express = express_links(cfg);
        if !express.is_empty() {
            for _ in 0..spec.down_links {
                let (node, out) = express[(stream.next() % express.len() as u64) as usize];
                let from = w0 + stream.next() % (w1 - w0);
                let until = from + 1 + stream.next() % (w1 - from);
                plan.push(Fault::DownLink {
                    node,
                    out,
                    from,
                    until,
                });
            }
        }

        debug_assert!(plan.validate(cfg).is_ok());
        plan
    }

    /// Draws a fault storm for `cfg` from a seed: express links die at
    /// `spec.kills_per_kcycle` and heal after a delay from
    /// `spec.heal_after`, as a plan of [`Fault::DownLink`] windows. The
    /// same `(cfg, seed, spec)` triple always produces the same storm.
    /// On a topology with no express links the storm is empty.
    pub fn storm(cfg: &NocConfig, seed: u64, spec: &StormSpec) -> FaultPlan {
        let mut stream = SeedStream::new(seed);
        let mut plan = FaultPlan::new();
        let express = express_links(cfg);
        if express.is_empty() || spec.duration == 0 {
            return plan;
        }
        let (h0, h1) = spec.heal_after;
        let (h0, h1) = (h0.max(1), h1.max(h0.max(1) + 1));
        for _ in 0..spec.kill_events() {
            let (node, out) = express[(stream.next() % express.len() as u64) as usize];
            let from = stream.next() % spec.duration;
            let until = from + h0 + stream.next() % (h1 - h0);
            plan.push(Fault::DownLink {
                node,
                out,
                from,
                until,
            });
        }
        debug_assert!(plan.validate(cfg).is_ok());
        plan
    }

    /// Compiles the plan into the per-node lookup tables the engine
    /// consults each cycle. The caller must have run
    /// [`FaultPlan::validate`] first.
    pub(crate) fn compile(&self, nodes: usize) -> FaultState {
        let mut state = FaultState {
            dead: vec![OutSet::empty(); nodes],
            base_dead: vec![OutSet::empty(); nodes],
            fail_at: vec![u64::MAX; nodes],
            stalls: vec![Vec::new(); nodes],
            transients: Vec::new(),
            windows: Vec::new(),
            epochs: Vec::new(),
            epoch_cursor: 0,
        };
        for fault in &self.faults {
            match *fault {
                Fault::DeadLink { node, out } => state.base_dead[node].insert(out),
                Fault::TransientLink {
                    node,
                    out,
                    from,
                    until,
                    corrupt,
                } => state.transients.push(Transient {
                    node,
                    out,
                    from,
                    until,
                    corrupt,
                }),
                Fault::FailStopRouter { node, at } => {
                    state.fail_at[node] = state.fail_at[node].min(at);
                }
                Fault::StalledInjector { node, from, until } => {
                    state.stalls[node].push((from, until));
                }
                Fault::DownLink {
                    node,
                    out,
                    from,
                    until,
                } => {
                    state.windows.push(DownWindow {
                        node,
                        out,
                        from,
                        until,
                    });
                    state.epochs.push(from);
                    state.epochs.push(until);
                }
            }
        }
        state.epochs.sort_unstable();
        state.epochs.dedup();
        state.rebuild(0);
        state
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return f.write_str("no faults");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// The outputs that physically exist at `node` (shared ring, plus
/// express links where the topology places them).
fn router_outputs(cfg: &NocConfig, node: usize) -> OutSet {
    let at = Coord::from_node_id(node, cfg.n());
    RouterClass::of(cfg, at).available_outputs()
}

/// Every express link in the topology, as `(node, out)` pairs in node
/// order.
fn express_links(cfg: &NocConfig) -> Vec<(usize, OutPort)> {
    let mut express = Vec::new();
    for node in 0..cfg.num_nodes() {
        let outs = router_outputs(cfg, node);
        for out in [OutPort::EastEx, OutPort::SouthEx] {
            if outs.contains(out) {
                express.push((node, out));
            }
        }
    }
    express
}

/// A deterministic stream of draws derived from one seed: the canonical
/// SplitMix64 generator (add the golden-gamma, then mix).
struct SeedStream {
    state: u64,
}

impl SeedStream {
    fn new(seed: u64) -> Self {
        SeedStream { state: seed }
    }

    fn next(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }
}

/// Compiled per-node fault tables, consulted by the engine's hot loop.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Per-node set of outputs dead in the *current epoch*: the static
    /// dead links plus every [`Fault::DownLink`] window active now.
    /// Re-patched at epoch boundaries by [`FaultState::patch_epoch`];
    /// the per-cycle hot path is a plain table read.
    pub(crate) dead: Vec<OutSet>,
    /// Per-node set of permanently dead outputs (epoch-independent).
    base_dead: Vec<OutSet>,
    /// Per-node fail-stop cycle (`u64::MAX` = never fails).
    pub(crate) fail_at: Vec<u64>,
    /// Per-node injector stall windows `[from, until)`.
    pub(crate) stalls: Vec<Vec<(u64, u64)>>,
    /// Transient link faults (few; scanned linearly).
    transients: Vec<Transient>,
    /// Dynamic down-then-recover windows (cold; consulted only when an
    /// epoch boundary is crossed).
    windows: Vec<DownWindow>,
    /// Sorted distinct window boundaries — the patch schedule.
    epochs: Vec<u64>,
    /// Index of the next boundary not yet applied.
    epoch_cursor: usize,
}

#[derive(Debug, Clone, Copy)]
struct Transient {
    node: usize,
    out: OutPort,
    from: u64,
    until: u64,
    corrupt: bool,
}

#[derive(Debug, Clone, Copy)]
struct DownWindow {
    node: usize,
    out: OutPort,
    from: u64,
    until: u64,
}

impl FaultState {
    /// True when the router at `node` has fail-stopped by `cycle`.
    pub(crate) fn failed(&self, node: usize, cycle: u64) -> bool {
        cycle >= self.fail_at[node]
    }

    /// The static (never-healing) dead-port masks — what fault-aware
    /// route-table builders mask out, leaving only windowed faults to
    /// the runtime dead table.
    pub(crate) fn static_dead(&self) -> &[OutSet] {
        &self.base_dead
    }

    /// Recomputes the dead-output table for the epoch containing
    /// `cycle` and repositions the boundary cursor.
    fn rebuild(&mut self, cycle: u64) {
        self.dead.copy_from_slice(&self.base_dead);
        for w in &self.windows {
            if cycle >= w.from && cycle < w.until {
                self.dead[w.node].insert(w.out);
            }
        }
        self.epoch_cursor = self.epochs.partition_point(|&b| b <= cycle);
    }

    /// Re-patches the dead table when `cycle` has crossed the next
    /// window boundary. Called once per cycle; the common case is one
    /// branch on the cursor.
    pub(crate) fn patch_epoch(&mut self, cycle: u64) {
        if self.epoch_cursor < self.epochs.len() && cycle >= self.epochs[self.epoch_cursor] {
            self.rebuild(cycle);
        }
    }

    /// Rewinds the epoch state to cycle 0 (engine reset between runs).
    pub(crate) fn rewind(&mut self) {
        self.rebuild(0);
    }

    /// True when the plan contains any dynamic recovery window.
    pub(crate) fn has_windows(&self) -> bool {
        !self.windows.is_empty()
    }

    /// True when the PE at `node` may not inject at `cycle`.
    pub(crate) fn injector_stalled(&self, node: usize, cycle: u64) -> bool {
        self.stalls[node]
            .iter()
            .any(|&(from, until)| cycle >= from && cycle < until)
    }

    /// If the link leaving `node` through `out` is faulty at `cycle`,
    /// returns `Some(corrupt)`.
    pub(crate) fn link_fault(&self, node: usize, out: OutPort, cycle: u64) -> Option<bool> {
        self.transients
            .iter()
            .find(|t| t.node == node && t.out == out && cycle >= t.from && cycle < t.until)
            .map(|t| t.corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FtPolicy;

    fn ft(n: u16, d: u16, r: u16) -> NocConfig {
        NocConfig::fasttrack(n, d, r, FtPolicy::Full).unwrap()
    }

    #[test]
    fn empty_plan_validates_everywhere() {
        assert_eq!(FaultPlan::new().validate(&ft(8, 2, 2)), Ok(()));
        assert_eq!(
            FaultPlan::new().validate(&NocConfig::hoplite(4).unwrap()),
            Ok(())
        );
    }

    #[test]
    fn dead_shared_link_partitions_torus() {
        let plan = FaultPlan::new().with(Fault::DeadLink {
            node: 0,
            out: OutPort::EastSh,
        });
        assert_eq!(
            plan.validate(&ft(8, 2, 1)),
            Err(FaultError::PartitionsTorus {
                node: 0,
                out: OutPort::EastSh
            })
        );
        let msg = FaultError::PartitionsTorus {
            node: 0,
            out: OutPort::EastSh,
        }
        .to_string();
        assert!(msg.contains("partition"), "{msg}");
    }

    #[test]
    fn dead_express_link_requires_express_router() {
        let ok = FaultPlan::new().with(Fault::DeadLink {
            node: 0,
            out: OutPort::EastEx,
        });
        assert_eq!(ok.validate(&ft(8, 2, 1)), Ok(()));
        // Hoplite has no express links at all.
        assert_eq!(
            ok.validate(&NocConfig::hoplite(8).unwrap()),
            Err(FaultError::NoExpressLink {
                node: 0,
                out: OutPort::EastEx
            })
        );
    }

    #[test]
    fn node_bounds_and_windows_checked() {
        let cfg = ft(8, 2, 2);
        let oob = FaultPlan::new().with(Fault::FailStopRouter { node: 64, at: 0 });
        assert_eq!(
            oob.validate(&cfg),
            Err(FaultError::BadNode {
                node: 64,
                nodes: 64
            })
        );
        let empty = FaultPlan::new().with(Fault::StalledInjector {
            node: 3,
            from: 10,
            until: 10,
        });
        assert_eq!(
            empty.validate(&cfg),
            Err(FaultError::EmptyWindow {
                from: 10,
                until: 10
            })
        );
        let exit = FaultPlan::new().with(Fault::TransientLink {
            node: 3,
            out: OutPort::Exit,
            from: 0,
            until: 5,
            corrupt: false,
        });
        assert_eq!(exit.validate(&cfg), Err(FaultError::NotALink { node: 3 }));
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let cfg = ft(8, 2, 2);
        let spec = FaultSpec {
            dead_links: 2,
            transient_links: 3,
            fail_stop_routers: 1,
            stalled_injectors: 2,
            down_links: 0,
            window: (0, 500),
        };
        let a = FaultPlan::random(&cfg, 42, &spec);
        let b = FaultPlan::random(&cfg, 42, &spec);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_eq!(a.len(), 8);
        let c = FaultPlan::random(&cfg, 43, &spec);
        assert_ne!(a, c, "different seeds must diverge");
        assert_eq!(a.validate(&cfg), Ok(()));
        assert_eq!(c.validate(&cfg), Ok(()));
    }

    #[test]
    fn random_dead_links_capped_by_topology() {
        // Hoplite has zero express links: dead_links silently caps to 0.
        let cfg = NocConfig::hoplite(4).unwrap();
        let spec = FaultSpec {
            dead_links: 5,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::random(&cfg, 1, &spec);
        assert!(plan.is_empty());
    }

    #[test]
    fn compiled_state_answers_queries() {
        let plan = FaultPlan::new()
            .with(Fault::DeadLink {
                node: 0,
                out: OutPort::EastEx,
            })
            .with(Fault::TransientLink {
                node: 1,
                out: OutPort::EastSh,
                from: 10,
                until: 20,
                corrupt: true,
            })
            .with(Fault::FailStopRouter { node: 2, at: 50 })
            .with(Fault::StalledInjector {
                node: 3,
                from: 5,
                until: 8,
            });
        let fs = plan.compile(4);
        assert!(fs.dead[0].contains(OutPort::EastEx));
        assert!(!fs.dead[1].contains(OutPort::EastEx));
        assert_eq!(fs.link_fault(1, OutPort::EastSh, 9), None);
        assert_eq!(fs.link_fault(1, OutPort::EastSh, 10), Some(true));
        assert_eq!(fs.link_fault(1, OutPort::EastSh, 19), Some(true));
        assert_eq!(fs.link_fault(1, OutPort::EastSh, 20), None);
        assert!(!fs.failed(2, 49));
        assert!(fs.failed(2, 50));
        assert!(!fs.injector_stalled(3, 4));
        assert!(fs.injector_stalled(3, 5));
        assert!(!fs.injector_stalled(3, 8));
    }

    #[test]
    fn down_link_validation_mirrors_dead_link() {
        let cfg = ft(8, 2, 1);
        let ok = FaultPlan::new().with(Fault::DownLink {
            node: 0,
            out: OutPort::EastEx,
            from: 10,
            until: 50,
        });
        assert_eq!(ok.validate(&cfg), Ok(()));
        let shared = FaultPlan::new().with(Fault::DownLink {
            node: 0,
            out: OutPort::EastSh,
            from: 10,
            until: 50,
        });
        assert_eq!(
            shared.validate(&cfg),
            Err(FaultError::PartitionsTorus {
                node: 0,
                out: OutPort::EastSh
            })
        );
        let empty = FaultPlan::new().with(Fault::DownLink {
            node: 0,
            out: OutPort::EastEx,
            from: 10,
            until: 10,
        });
        assert_eq!(
            empty.validate(&cfg),
            Err(FaultError::EmptyWindow {
                from: 10,
                until: 10
            })
        );
        assert!(matches!(
            FaultPlan::new()
                .with(Fault::DownLink {
                    node: 0,
                    out: OutPort::EastEx,
                    from: 0,
                    until: 9,
                })
                .validate(&NocConfig::hoplite(8).unwrap()),
            Err(FaultError::NoExpressLink { .. })
        ));
    }

    #[test]
    fn down_link_windows_patch_epochs() {
        let plan = FaultPlan::new()
            .with(Fault::DeadLink {
                node: 1,
                out: OutPort::SouthEx,
            })
            .with(Fault::DownLink {
                node: 0,
                out: OutPort::EastEx,
                from: 10,
                until: 20,
            })
            .with(Fault::DownLink {
                node: 0,
                out: OutPort::SouthEx,
                from: 15,
                until: 30,
            });
        let mut fs = plan.compile(4);
        assert!(fs.has_windows());
        // Cycle 0: only the static dead link.
        assert!(!fs.dead[0].contains(OutPort::EastEx));
        assert!(fs.dead[1].contains(OutPort::SouthEx));
        // Walk the cycles in order, as the engine does.
        let expect = |fs: &FaultState, east: bool, south: bool| {
            assert_eq!(fs.dead[0].contains(OutPort::EastEx), east);
            assert_eq!(fs.dead[0].contains(OutPort::SouthEx), south);
            assert!(fs.dead[1].contains(OutPort::SouthEx), "static survives");
        };
        for cycle in 0..40 {
            fs.patch_epoch(cycle);
            expect(&fs, (10..20).contains(&cycle), (15..30).contains(&cycle));
        }
        // Rewind reproduces cycle 0 exactly.
        fs.rewind();
        expect(&fs, false, false);
        fs.patch_epoch(17);
        expect(&fs, true, true);
    }

    #[test]
    fn storm_is_seed_deterministic_and_valid() {
        let cfg = ft(8, 2, 2);
        let spec = StormSpec::default();
        let a = FaultPlan::storm(&cfg, 7, &spec);
        let b = FaultPlan::storm(&cfg, 7, &spec);
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, spec.kill_events());
        assert!(!a.is_empty());
        assert_eq!(a.validate(&cfg), Ok(()));
        let c = FaultPlan::storm(&cfg, 8, &spec);
        assert_ne!(a, c);
        // All storm faults are recovery windows.
        assert!(a
            .faults()
            .iter()
            .all(|f| matches!(f, Fault::DownLink { .. })));
        // Hoplite has no express links: the storm is empty.
        let empty = FaultPlan::storm(&NocConfig::hoplite(8).unwrap(), 7, &spec);
        assert!(empty.is_empty());
    }

    #[test]
    fn plan_display_lists_faults() {
        let plan = FaultPlan::new().with(Fault::FailStopRouter { node: 7, at: 100 });
        assert_eq!(
            plan.to_string(),
            "fail-stop router at node 7 from cycle 100"
        );
        assert_eq!(FaultPlan::new().to_string(), "no faults");
    }
}
