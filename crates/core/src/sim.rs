//! The simulation driver: one composable [`SimSession`] wires a traffic
//! source to any engine — single torus, multi-channel bank, or (via the
//! `fasttrack-mesh` crate) a buffered mesh — runs it to completion, and
//! produces a [`SimReport`].
//!
//! Tracing, health monitoring, and fault injection *compose* on the
//! session instead of multiplying entry points:
//!
//! ```
//! use fasttrack_core::prelude::*;
//!
//! # struct Batch(bool);
//! # impl TrafficSource for Batch {
//! #     fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
//! #         if !self.0 { queues.push(1, Coord::new(0, 0), cycle, 0); self.0 = true; }
//! #     }
//! #     fn exhausted(&self) -> bool { self.0 }
//! # }
//! let cfg = NocConfig::hoplite(4)?;
//! let outcome = SimSession::new(&cfg)
//!     .max_cycles(10_000)
//!     .with_monitor(MonitorConfig::default())
//!     .run(&mut Batch(false))
//!     .expect("no fault plan attached");
//! assert_eq!(outcome.report.stats.delivered, 1);
//! assert!(outcome.monitor.unwrap().healthy());
//! # Ok::<(), fasttrack_core::config::ConfigError>(())
//! ```
//!
//! The pre-session `simulate_*` free functions remain as deprecated
//! one-line shims over the builder; they produce bit-identical reports.

use crate::attribution::{AttributionConfig, AttributionReport, AttributionSink};
use crate::config::NocConfig;
use crate::fallback::{CompiledFallback, FallbackConfig, FallbackError};
use crate::fault::{FaultError, FaultPlan};
use crate::kernel::RouteMode;
use crate::monitor::MetricsRegistry;
use crate::monitor::{HealthMonitor, MonitorConfig};
use crate::multichannel::MultiNoc;
use crate::noc::Noc;
use crate::packet::Delivery;
use crate::profile::{self, EventCounter, SessionProfile};
use crate::queue::InjectQueues;
use crate::stats::SimStats;
use crate::topology::MonitorShape;
use crate::trace::{EventSink, NullSink, SimEvent};

/// A workload that feeds the NoC.
///
/// The driver calls [`TrafficSource::pump`] once per cycle *before*
/// routing, then reports every delivery. Dependency-driven workloads
/// (e.g. token dataflow) release new packets from
/// [`TrafficSource::on_delivery`] state at the next `pump`.
pub trait TrafficSource {
    /// Called once per cycle; push any packets that become available this
    /// cycle into `queues`.
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues);

    /// Notification of a delivered packet.
    fn on_delivery(&mut self, delivery: &Delivery) {
        let _ = delivery;
    }

    /// True when the source will never generate another packet.
    fn exhausted(&self) -> bool;
}

/// Boxed sources forward to their contents, so heterogeneous source
/// sets (e.g. a fuzzer drawing one of several generator families) can
/// be driven through `Box<dyn TrafficSource>`.
impl<T: TrafficSource + ?Sized> TrafficSource for Box<T> {
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
        (**self).pump(cycle, queues)
    }

    fn on_delivery(&mut self, delivery: &Delivery) {
        (**self).on_delivery(delivery)
    }

    fn exhausted(&self) -> bool {
        (**self).exhausted()
    }
}

/// Driver options.
///
/// Construct with [`Default`] (or [`SimOptions::with_max_cycles`]) and
/// refine with the consuming setters; the struct is `#[non_exhaustive]`
/// so future knobs are not breaking changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SimOptions {
    /// Hard cap on simulated cycles; the run is marked truncated if hit.
    pub max_cycles: u64,
    /// Statistics are reset after this many cycles (steady-state
    /// measurement for open-loop traffic). 0 measures everything.
    pub warmup_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_cycles: 2_000_000,
            warmup_cycles: 0,
        }
    }
}

impl SimOptions {
    /// Options with a custom cycle cap.
    pub fn with_max_cycles(max_cycles: u64) -> Self {
        SimOptions::default().max_cycles(max_cycles)
    }

    /// Sets the hard cap on simulated cycles.
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Sets the warmup period after which statistics reset.
    pub fn warmup_cycles(mut self, warmup_cycles: u64) -> Self {
        self.warmup_cycles = warmup_cycles;
        self
    }
}

/// The outcome of one simulation run.
///
/// `#[non_exhaustive]`: constructed by the driver; downstream code reads
/// fields but builds reports via [`Default`] plus struct update only
/// inside this crate.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct SimReport {
    /// Human-readable configuration name (e.g. `FT(64,2,1)`).
    pub config_name: String,
    /// PEs in the system.
    pub nodes: usize,
    /// Cycles simulated after warmup (the makespan for closed workloads).
    pub cycles: u64,
    /// Aggregated statistics (measured after warmup).
    pub stats: SimStats,
    /// True if the run hit `max_cycles` before the workload drained.
    pub truncated: bool,
    /// Packets still on NoC links when the run ended (non-zero only for
    /// truncated runs; part of the conservation accounting).
    pub in_flight: usize,
}

impl SimReport {
    /// Delivered packets per cycle per PE — the paper's "sustained rate".
    pub fn sustained_rate_per_pe(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stats.delivered as f64 / self.cycles as f64 / self.nodes as f64
        }
    }

    /// Delivered packets per cycle across the whole NoC.
    pub fn aggregate_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stats.delivered as f64 / self.cycles as f64
        }
    }

    /// Mean end-to-end latency (including source queueing).
    pub fn avg_latency(&self) -> f64 {
        self.stats.total_latency.mean()
    }

    /// Worst-case end-to-end latency.
    pub fn worst_latency(&self) -> u64 {
        self.stats.total_latency.max()
    }

    /// Exact packet conservation: every injected packet is delivered,
    /// still on a link, or was dropped by an injected fault. Holds for
    /// every run without a warmup reset, faulted or not, truncated or
    /// not. (A warmup reset excludes pre-warmup injections from the
    /// measured stats while their deliveries still count, so only
    /// `warmup_cycles == 0` runs are exactly conserved.)
    pub fn conserved(&self) -> bool {
        self.stats.delivered + self.in_flight as u64 + self.stats.dropped == self.stats.injected
    }

    /// Throughput of this (typically faulted) run relative to a baseline
    /// run of the healthy fabric: `1.0` means no degradation, `0.0`
    /// means nothing got through. Returns `1.0` when the baseline moved
    /// no traffic either.
    pub fn degraded_throughput_ratio(&self, baseline: &SimReport) -> f64 {
        let base = baseline.sustained_rate_per_pe();
        if base == 0.0 {
            1.0
        } else {
            self.sustained_rate_per_pe() / base
        }
    }
}

/// A steppable cycle-accurate engine the shared drive loop can run.
///
/// Implemented by [`Noc`], [`MultiNoc`], and `fasttrack-mesh`'s
/// `MeshNoc`; one generic [`drive_engine`] loop replaces the three
/// near-identical per-engine drivers the crate used to carry.
pub trait SimEngine {
    /// PEs in the system (sizes the injection queues and the report).
    fn num_nodes(&self) -> usize;

    /// The configuration name the report should carry.
    fn report_name(&self) -> String;

    /// Advances the engine by one cycle, pulling injections from
    /// `queues`, pushing deliveries, and emitting events into `sink`.
    fn step_cycle<S: EventSink>(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        sink: &mut S,
    );

    /// Packets currently on links (or in router buffers).
    fn in_flight(&self) -> usize;

    /// Clears accumulated statistics (warmup reset).
    fn reset_stats(&mut self);

    /// See [`Noc::only_failed_injectors_pending`].
    fn only_failed_injectors_pending(&self, queues: &InjectQueues) -> bool;

    /// A copy of the accumulated statistics (merged across channels for
    /// banked engines).
    fn stats_snapshot(&self) -> SimStats;

    /// Returns the engine to its just-constructed state while keeping
    /// topology, route tables, and compiled fault plans — the batched
    /// driver resets between seeds instead of rebuilding.
    fn reset(&mut self);
}

impl SimEngine for Noc {
    fn num_nodes(&self) -> usize {
        self.config().num_nodes()
    }

    fn report_name(&self) -> String {
        self.config().name()
    }

    fn step_cycle<S: EventSink>(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        sink: &mut S,
    ) {
        self.step_with_sink(queues, deliveries, None, sink);
    }

    fn in_flight(&self) -> usize {
        Noc::in_flight(self)
    }

    fn reset_stats(&mut self) {
        Noc::reset_stats(self);
    }

    fn only_failed_injectors_pending(&self, queues: &InjectQueues) -> bool {
        Noc::only_failed_injectors_pending(self, queues)
    }

    fn stats_snapshot(&self) -> SimStats {
        self.stats().clone()
    }

    fn reset(&mut self) {
        Noc::reset(self);
    }
}

impl SimEngine for MultiNoc {
    fn num_nodes(&self) -> usize {
        self.config().num_nodes()
    }

    fn report_name(&self) -> String {
        format!("{}-{}x", self.config().name(), self.num_channels())
    }

    fn step_cycle<S: EventSink>(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        sink: &mut S,
    ) {
        self.step_with_sink(queues, deliveries, sink);
    }

    fn in_flight(&self) -> usize {
        MultiNoc::in_flight(self)
    }

    fn reset_stats(&mut self) {
        MultiNoc::reset_stats(self);
    }

    fn only_failed_injectors_pending(&self, queues: &InjectQueues) -> bool {
        MultiNoc::only_failed_injectors_pending(self, queues)
    }

    fn stats_snapshot(&self) -> SimStats {
        self.merged_stats()
    }

    fn reset(&mut self) {
        MultiNoc::reset(self);
    }
}

/// The generic drive loop: pumps the source, steps the engine, routes
/// deliveries back, and assembles the [`SimReport`]. In addition to the
/// engine's per-cycle events it emits [`SimEvent::WarmupReset`] when
/// statistics are cleared and [`SimEvent::Truncated`] when the cycle cap
/// cuts the workload short.
pub fn drive_engine<E: SimEngine, T: TrafficSource, K: EventSink>(
    engine: &mut E,
    source: &mut T,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    let mut queues = InjectQueues::new(engine.num_nodes());
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut measured_from = 0u64;
    let mut cycle = 0u64;
    let mut truncated = true;

    while cycle < opts.max_cycles {
        if cycle == opts.warmup_cycles && cycle != 0 {
            engine.reset_stats();
            measured_from = cycle;
            if K::ENABLED {
                sink.emit(&SimEvent::WarmupReset { cycle });
            }
        }
        source.pump(cycle, &mut queues);
        deliveries.clear();
        engine.step_cycle(&mut queues, &mut deliveries, sink);
        for d in &deliveries {
            source.on_delivery(d);
        }
        cycle += 1;
        if source.exhausted()
            && engine.in_flight() == 0
            && (queues.is_empty() || engine.only_failed_injectors_pending(&queues))
        {
            truncated = false;
            break;
        }
    }
    if truncated && K::ENABLED {
        sink.emit(&SimEvent::Truncated { cycle });
    }

    let mut stats = engine.stats_snapshot();
    stats.enqueued = queues.total_enqueued();
    SimReport {
        config_name: engine.report_name(),
        nodes: engine.num_nodes(),
        cycles: cycle - measured_from,
        stats,
        truncated,
        in_flight: engine.in_flight(),
    }
}

/// A factory for the engine a [`SimSession`] drives, plus the metadata
/// the session needs to size an attached [`HealthMonitor`].
pub trait SessionBackend {
    /// The engine this backend builds.
    type Engine: SimEngine;

    /// Builds the engine, compiling `faults` into it when given.
    fn build(&self, faults: Option<&FaultPlan>) -> Result<Self::Engine, FaultError>;

    /// The topology-derived sizing an attached monitor uses: node
    /// count, [`crate::topology::LinkId`] table width, the optional
    /// grid side for DOR-distance references, and the channel count
    /// hotspot utilization normalizes by. Topology-backed backends
    /// derive this from [`crate::topology::Topology::monitor_shape`].
    fn monitor_shape(&self) -> MonitorShape;

    /// True when the backend carries armed (non-inert) fallback chains;
    /// monitored runs then publish the `fasttrack_fallback_*` registry
    /// cells. Chain-less backends keep their exact cell set.
    fn fallback_armed(&self) -> bool {
        false
    }
}

/// Backend for the torus engines: a single [`Noc`], or a [`MultiNoc`]
/// bank when a channel count is set on the session.
#[derive(Debug, Clone)]
pub struct TorusBackend {
    cfg: NocConfig,
    channels: Option<usize>,
    route: RouteMode,
    fallback: CompiledFallback,
}

impl TorusBackend {
    /// A single-channel torus backend with the default route mode.
    pub fn new(cfg: &NocConfig) -> Self {
        TorusBackend {
            cfg: cfg.clone(),
            channels: None,
            route: RouteMode::default(),
            fallback: CompiledFallback::default(),
        }
    }
}

/// The engine a [`TorusBackend`] builds. Single-channel sessions drive
/// a plain [`Noc`]; sessions with an explicit channel count drive a
/// [`MultiNoc`] even for one channel, because the bank names its report
/// `…-1x` and arbitrates through the shared-PE gates.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // engines are built once per session, never stored in bulk
pub enum TorusEngine {
    /// A single NoC channel.
    Single(Noc),
    /// A replicated multi-channel bank.
    Multi(MultiNoc),
}

impl SimEngine for TorusEngine {
    fn num_nodes(&self) -> usize {
        match self {
            TorusEngine::Single(e) => e.num_nodes(),
            TorusEngine::Multi(e) => e.num_nodes(),
        }
    }

    fn report_name(&self) -> String {
        match self {
            TorusEngine::Single(e) => e.report_name(),
            TorusEngine::Multi(e) => e.report_name(),
        }
    }

    fn step_cycle<S: EventSink>(
        &mut self,
        queues: &mut InjectQueues,
        deliveries: &mut Vec<Delivery>,
        sink: &mut S,
    ) {
        match self {
            TorusEngine::Single(e) => e.step_cycle(queues, deliveries, sink),
            TorusEngine::Multi(e) => e.step_cycle(queues, deliveries, sink),
        }
    }

    fn in_flight(&self) -> usize {
        match self {
            TorusEngine::Single(e) => SimEngine::in_flight(e),
            TorusEngine::Multi(e) => SimEngine::in_flight(e),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            TorusEngine::Single(e) => SimEngine::reset_stats(e),
            TorusEngine::Multi(e) => SimEngine::reset_stats(e),
        }
    }

    fn only_failed_injectors_pending(&self, queues: &InjectQueues) -> bool {
        match self {
            TorusEngine::Single(e) => SimEngine::only_failed_injectors_pending(e, queues),
            TorusEngine::Multi(e) => SimEngine::only_failed_injectors_pending(e, queues),
        }
    }

    fn stats_snapshot(&self) -> SimStats {
        match self {
            TorusEngine::Single(e) => e.stats_snapshot(),
            TorusEngine::Multi(e) => e.stats_snapshot(),
        }
    }

    fn reset(&mut self) {
        match self {
            TorusEngine::Single(e) => SimEngine::reset(e),
            TorusEngine::Multi(e) => SimEngine::reset(e),
        }
    }
}

impl SessionBackend for TorusBackend {
    type Engine = TorusEngine;

    fn build(&self, faults: Option<&FaultPlan>) -> Result<TorusEngine, FaultError> {
        match self.channels {
            None => {
                let mut noc = match faults {
                    Some(plan) => Noc::with_faults(self.cfg.clone(), plan)?,
                    None => Noc::new(self.cfg.clone()),
                };
                noc.set_route_mode(self.route);
                noc.set_fallback(self.fallback);
                Ok(TorusEngine::Single(noc))
            }
            Some(k) => {
                let mut bank = match faults {
                    Some(plan) => MultiNoc::with_faults(self.cfg.clone(), k, plan)?,
                    None => MultiNoc::new(self.cfg.clone(), k),
                };
                bank.set_route_mode(self.route);
                bank.set_fallback(self.fallback);
                Ok(TorusEngine::Multi(bank))
            }
        }
    }

    fn monitor_shape(&self) -> MonitorShape {
        MonitorShape::torus(self.cfg.n()).with_channels(self.channels.unwrap_or(1))
    }

    fn fallback_armed(&self) -> bool {
        !self.fallback.is_inert()
    }
}

/// What a [`SimSession`] run produced: the report, plus the monitor when
/// one was attached with [`SimSession::with_monitor`].
#[derive(Debug)]
pub struct SimOutcome {
    /// The simulation report.
    pub report: SimReport,
    /// The health monitor, when the session attached one.
    pub monitor: Option<HealthMonitor>,
    /// The profiling artifact, when the session attached
    /// [`SimSession::with_profile`].
    pub profile: Option<SessionProfile>,
    /// The latency-attribution report, when the session attached
    /// [`SimSession::with_attribution`].
    pub attribution: Option<AttributionReport>,
}

impl SimOutcome {
    /// Splits the outcome into report and monitor.
    ///
    /// # Panics
    ///
    /// Panics when the session was built without
    /// [`SimSession::with_monitor`].
    pub fn into_monitored(self) -> (SimReport, HealthMonitor) {
        (
            self.report,
            self.monitor
                .expect("session was built without `with_monitor`"),
        )
    }

    /// Splits the outcome into report and attribution report.
    ///
    /// # Panics
    ///
    /// Panics when the session was built without
    /// [`SimSession::with_attribution`].
    pub fn into_attributed(self) -> (SimReport, AttributionReport) {
        (
            self.report,
            self.attribution
                .expect("session was built without `with_attribution`"),
        )
    }
}

/// One composable builder for every simulation mode.
///
/// A session starts from a configuration ([`SimSession::new`] for the
/// torus engines, [`SimSession::with_backend`] for any
/// [`SessionBackend`]) and composes the concerns that used to each have
/// their own `simulate_*` entry point:
///
/// * [`SimSession::with_sink`] — cycle-level event tracing,
/// * [`SimSession::with_monitor`] — online health monitoring,
/// * [`SimSession::with_faults`] — fault injection,
/// * [`SimSession::channels`] — a multi-channel bank (torus only),
/// * [`SimSession::route_mode`] — LUT vs recomputed routing (torus only).
///
/// Every combination is valid; sink and monitor tee into one event
/// stream. [`SimSession::run`] drives one source; [`SimSession::run_batch`]
/// drives one source per seed while building the engine (topology,
/// route LUTs, compiled faults) only once.
pub struct SimSession<'s, B: SessionBackend, K: EventSink = NullSink> {
    backend: B,
    opts: SimOptions,
    faults: Option<FaultPlan>,
    monitor: Option<MonitorConfig>,
    sink: Option<&'s mut K>,
    profile: bool,
    attribution: Option<AttributionConfig>,
}

impl SimSession<'static, TorusBackend> {
    /// A session over the torus engines for `cfg`.
    pub fn new(cfg: &NocConfig) -> Self {
        SimSession::with_backend(TorusBackend::new(cfg))
    }
}

impl<B: SessionBackend> SimSession<'static, B> {
    /// A session over an arbitrary backend (e.g. `fasttrack-mesh`).
    pub fn with_backend(backend: B) -> Self {
        SimSession {
            backend,
            opts: SimOptions::default(),
            faults: None,
            monitor: None,
            sink: None,
            profile: false,
            attribution: None,
        }
    }
}

impl<'s, B: SessionBackend, K: EventSink> SimSession<'s, B, K> {
    /// Replaces the driver options wholesale.
    pub fn options(mut self, opts: SimOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the hard cap on simulated cycles.
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.opts.max_cycles = max_cycles;
        self
    }

    /// Sets the warmup period after which statistics reset.
    pub fn warmup_cycles(mut self, warmup_cycles: u64) -> Self {
        self.opts.warmup_cycles = warmup_cycles;
        self
    }

    /// Injects a fault plan into the fabric. The plan is validated when
    /// the session runs; an empty plan reproduces the healthy run
    /// bit-for-bit.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        self.faults = Some(plan.clone());
        self
    }

    /// Attaches a [`HealthMonitor`]; the monitor observes the run
    /// without perturbing it and is returned in the [`SimOutcome`].
    pub fn with_monitor(mut self, mcfg: MonitorConfig) -> Self {
        self.monitor = Some(mcfg);
        self
    }

    /// Attaches an [`EventSink`] observing every routing decision,
    /// injection, deflection, ejection, and driver marker. Composes
    /// with [`SimSession::with_monitor`]: both see the event stream.
    pub fn with_sink<'t, K2: EventSink>(self, sink: &'t mut K2) -> SimSession<'t, B, K2> {
        SimSession {
            backend: self.backend,
            opts: self.opts,
            faults: self.faults,
            monitor: self.monitor,
            sink: Some(sink),
            profile: self.profile,
            attribution: self.attribution,
        }
    }

    /// Attaches the self-profiler: the run records lifecycle spans
    /// (build, drive, collect), derives throughput rates, and returns a
    /// [`SessionProfile`] in the [`SimOutcome`]. When a monitor is also
    /// attached, the profile's `fasttrack_profile_*` cells are published
    /// into the monitor's [`MetricsRegistry`] so they ride the same
    /// Prometheus/JSON exposition. Profiling observes the run without
    /// perturbing it — the report and event stream are identical to an
    /// unprofiled session's. Sessions without this call take the exact
    /// pre-profiling code path (statically zero-cost).
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Attaches the latency-attribution layer: an [`AttributionSink`]
    /// tees into the event stream, folds every packet's journey into a
    /// per-component latency decomposition plus wire-class decision
    /// accounting, and returns an [`AttributionReport`] in the
    /// [`SimOutcome`]. When a monitor is also attached, the report's
    /// `fasttrack_attrib_*` cells are published into the monitor's
    /// [`MetricsRegistry`] so they ride the same Prometheus/JSON
    /// exposition. Like the monitor and the profiler, attribution
    /// observes the run without perturbing it — report and event
    /// stream are identical to an unattributed session's — and
    /// sessions without this call take the exact pre-attribution code
    /// path.
    pub fn with_attribution(mut self, acfg: AttributionConfig) -> Self {
        self.attribution = Some(acfg);
        self
    }

    fn make_monitor(&self) -> Option<HealthMonitor> {
        self.monitor
            .map(|mcfg| HealthMonitor::new(self.backend.monitor_shape(), mcfg))
    }

    /// Builds the engine and drives `source` to completion.
    ///
    /// Returns `Err` only when a fault plan was attached and fails
    /// validation; sessions without [`SimSession::with_faults`] always
    /// succeed.
    pub fn run<T: TrafficSource>(mut self, source: &mut T) -> Result<SimOutcome, FaultError> {
        if self.profile {
            return self.run_profiled(source);
        }
        let mut engine = self.backend.build(self.faults.as_ref())?;
        let mut monitor = self.make_monitor();
        let (report, attribution) = match self.attribution {
            None => (
                dispatch(
                    &mut engine,
                    source,
                    self.opts,
                    self.sink.as_deref_mut(),
                    monitor.as_mut(),
                ),
                None,
            ),
            Some(acfg) => {
                let mut attrib = AttributionSink::new(acfg);
                let report = dispatch_attributed(
                    &mut engine,
                    source,
                    self.opts,
                    self.sink.as_deref_mut(),
                    monitor.as_mut(),
                    &mut attrib,
                );
                let attribution =
                    AttributionReport::assemble(attrib, &report, registry_for(monitor.as_ref()));
                (report, Some(attribution))
            }
        };
        if self.backend.fallback_armed() {
            publish_fallback_cells(&report, &registry_for(monitor.as_ref()));
        }
        Ok(SimOutcome {
            report,
            monitor,
            profile: None,
            attribution,
        })
    }

    /// The profiled twin of [`SimSession::run`]: identical engine work
    /// wrapped in lifecycle spans, with event dispatch accounted by an
    /// [`EventCounter`] teed into the sink fan-out.
    fn run_profiled<T: TrafficSource>(mut self, source: &mut T) -> Result<SimOutcome, FaultError> {
        let tp = profile::ThreadProfile::begin();
        let session_span = profile::scoped("session");
        let mut engine = {
            let _build = profile::scoped("session.build");
            self.backend.build(self.faults.as_ref())?
        };
        let mut monitor = self.make_monitor();
        let mut counter = EventCounter::default();
        let (report, attrib) = {
            let _drive = profile::scoped("session.drive");
            match self.attribution {
                None => (
                    dispatch_profiled(
                        &mut engine,
                        source,
                        self.opts,
                        self.sink.as_deref_mut(),
                        monitor.as_mut(),
                        &mut counter,
                    ),
                    None,
                ),
                Some(acfg) => {
                    let mut attrib = AttributionSink::new(acfg);
                    let report = dispatch_attributed_profiled(
                        &mut engine,
                        source,
                        self.opts,
                        self.sink.as_deref_mut(),
                        monitor.as_mut(),
                        &mut attrib,
                        &mut counter,
                    );
                    (report, Some(attrib))
                }
            }
        };
        drop(session_span);
        let spans = tp.finish();
        let registry = registry_for(monitor.as_ref());
        let attribution = attrib.map(|a| AttributionReport::assemble(a, &report, registry.clone()));
        if self.backend.fallback_armed() {
            publish_fallback_cells(&report, &registry);
        }
        let profile = SessionProfile::assemble(spans, &report, counter.events, registry);
        Ok(SimOutcome {
            report,
            monitor,
            profile: Some(profile),
            attribution,
        })
    }

    /// Drives one run per seed against a single engine, resetting it
    /// between runs: topology, route LUTs, and compiled fault plans are
    /// built once and amortized across the batch. `mk_source` builds the
    /// traffic source for each seed; a fresh monitor is attached per run
    /// (when configured), while an attached sink observes all runs in
    /// sequence.
    pub fn run_batch<T, F>(
        mut self,
        seeds: &[u64],
        mut mk_source: F,
    ) -> Result<Vec<SimOutcome>, FaultError>
    where
        T: TrafficSource,
        F: FnMut(u64) -> T,
    {
        let mut tp = self.profile.then(profile::ThreadProfile::begin);
        let mut engine = {
            let _build = self.profile.then(|| profile::scoped("session.build"));
            self.backend.build(self.faults.as_ref())?
        };
        let mut outcomes = Vec::with_capacity(seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            if i > 0 {
                engine.reset();
            }
            let mut source = mk_source(seed);
            let mut monitor = self.make_monitor();
            if self.profile {
                // Each run gets its own profile; the first one carries
                // the amortized `session.build` span.
                if tp.is_none() {
                    tp = Some(profile::ThreadProfile::begin());
                }
                let mut counter = EventCounter::default();
                let mut attrib = self.attribution.map(AttributionSink::new);
                let report = {
                    let _drive = profile::scoped("session.drive");
                    match attrib.as_mut() {
                        None => dispatch_profiled(
                            &mut engine,
                            &mut source,
                            self.opts,
                            self.sink.as_deref_mut(),
                            monitor.as_mut(),
                            &mut counter,
                        ),
                        Some(a) => dispatch_attributed_profiled(
                            &mut engine,
                            &mut source,
                            self.opts,
                            self.sink.as_deref_mut(),
                            monitor.as_mut(),
                            a,
                            &mut counter,
                        ),
                    }
                };
                let spans = tp.take().expect("profiling active").finish();
                let registry = registry_for(monitor.as_ref());
                let attribution =
                    attrib.map(|a| AttributionReport::assemble(a, &report, registry.clone()));
                if self.backend.fallback_armed() {
                    publish_fallback_cells(&report, &registry);
                }
                let profile = SessionProfile::assemble(spans, &report, counter.events, registry);
                outcomes.push(SimOutcome {
                    report,
                    monitor,
                    profile: Some(profile),
                    attribution,
                });
            } else {
                let mut attrib = self.attribution.map(AttributionSink::new);
                let report = match attrib.as_mut() {
                    None => dispatch(
                        &mut engine,
                        &mut source,
                        self.opts,
                        self.sink.as_deref_mut(),
                        monitor.as_mut(),
                    ),
                    Some(a) => dispatch_attributed(
                        &mut engine,
                        &mut source,
                        self.opts,
                        self.sink.as_deref_mut(),
                        monitor.as_mut(),
                        a,
                    ),
                };
                let attribution = attrib.map(|a| {
                    AttributionReport::assemble(a, &report, registry_for(monitor.as_ref()))
                });
                if self.backend.fallback_armed() {
                    publish_fallback_cells(&report, &registry_for(monitor.as_ref()));
                }
                outcomes.push(SimOutcome {
                    report,
                    monitor,
                    profile: None,
                    attribution,
                });
            }
        }
        drop(tp);
        Ok(outcomes)
    }
}

impl<'s, K: EventSink> SimSession<'s, TorusBackend, K> {
    /// Runs a `channels`-way replicated bank (multi-channel Hoplite, the
    /// paper's iso-wiring comparison point) instead of a single NoC.
    /// The report name gains a `-{channels}x` suffix.
    ///
    /// The engine panics on `channels == 0` when the session runs.
    pub fn channels(mut self, channels: usize) -> Self {
        self.backend.channels = Some(channels);
        self
    }

    /// Selects LUT-based or recomputed routing (see [`RouteMode`]); the
    /// two are bit-identical, and the default is [`RouteMode::Lut`].
    pub fn route_mode(mut self, mode: RouteMode) -> Self {
        self.backend.route = mode;
        self
    }

    /// Installs per-router-class fallback chains (see
    /// [`crate::fallback`]): stranded express packets demote to the
    /// shared ring, allocation losers switch channels in a bank, and
    /// only an exhausted chain drops. The config is validated through
    /// the backend's topology
    /// ([`crate::topology::Topology::validate_fallback`]);
    /// [`FallbackConfig::none`] (the default) keeps every run
    /// bit-identical to a session without this call.
    ///
    /// # Errors
    ///
    /// Returns the first [`FallbackError`] the topology's validation
    /// hook finds.
    pub fn with_fallback(mut self, fallback: &FallbackConfig) -> Result<Self, FallbackError> {
        use crate::topology::{Topology, TorusTopology};
        TorusTopology::new(self.backend.cfg.clone()).validate_fallback(fallback)?;
        self.backend.fallback = fallback.compile();
        Ok(self)
    }
}

/// Runs the drive loop with the session's sink/monitor combination,
/// teeing both into one event stream when both are present.
fn dispatch<E: SimEngine, T: TrafficSource, K: EventSink>(
    engine: &mut E,
    source: &mut T,
    opts: SimOptions,
    sink: Option<&mut K>,
    monitor: Option<&mut HealthMonitor>,
) -> SimReport {
    match (sink, monitor) {
        (None, None) => drive_engine(engine, source, opts, &mut NullSink),
        (Some(s), None) => drive_engine(engine, source, opts, s),
        (None, Some(m)) => drive_engine(engine, source, opts, m),
        (Some(s), Some(m)) => drive_engine(engine, source, opts, &mut (s, m)),
    }
}

/// [`dispatch`] with an [`EventCounter`] teed into every combination, so
/// profiled runs account dispatch volume without timing individual
/// events. The counter is an extra tuple element, not a wrapper: the
/// engine's `S::ENABLED` specialization sees the same sink topology.
fn dispatch_profiled<E: SimEngine, T: TrafficSource, K: EventSink>(
    engine: &mut E,
    source: &mut T,
    opts: SimOptions,
    sink: Option<&mut K>,
    monitor: Option<&mut HealthMonitor>,
    counter: &mut EventCounter,
) -> SimReport {
    match (sink, monitor) {
        (None, None) => drive_engine(engine, source, opts, counter),
        (Some(s), None) => drive_engine(engine, source, opts, &mut (s, counter)),
        (None, Some(m)) => drive_engine(engine, source, opts, &mut (m, counter)),
        (Some(s), Some(m)) => drive_engine(engine, source, opts, &mut (s, m, counter)),
    }
}

/// [`dispatch`] with an [`AttributionSink`] teed into every
/// combination, mirroring [`dispatch_profiled`]: the attribution layer
/// is one more tuple element in the fan-out, so the engine's
/// `S::ENABLED` specialization sees the same sink topology and the
/// event stream reaching sink and monitor is unchanged.
fn dispatch_attributed<E: SimEngine, T: TrafficSource, K: EventSink>(
    engine: &mut E,
    source: &mut T,
    opts: SimOptions,
    sink: Option<&mut K>,
    monitor: Option<&mut HealthMonitor>,
    attrib: &mut AttributionSink,
) -> SimReport {
    match (sink, monitor) {
        (None, None) => drive_engine(engine, source, opts, attrib),
        (Some(s), None) => drive_engine(engine, source, opts, &mut (s, attrib)),
        (None, Some(m)) => drive_engine(engine, source, opts, &mut (m, attrib)),
        (Some(s), Some(m)) => drive_engine(engine, source, opts, &mut (s, m, attrib)),
    }
}

/// Attribution and profiling together: the four-way fan-out nests
/// tuple sinks, keeping every observer on the one event stream.
fn dispatch_attributed_profiled<E: SimEngine, T: TrafficSource, K: EventSink>(
    engine: &mut E,
    source: &mut T,
    opts: SimOptions,
    sink: Option<&mut K>,
    monitor: Option<&mut HealthMonitor>,
    attrib: &mut AttributionSink,
    counter: &mut EventCounter,
) -> SimReport {
    match (sink, monitor) {
        (None, None) => drive_engine(engine, source, opts, &mut (attrib, counter)),
        (Some(s), None) => drive_engine(engine, source, opts, &mut (s, attrib, counter)),
        (None, Some(m)) => drive_engine(engine, source, opts, &mut (m, attrib, counter)),
        (Some(s), Some(m)) => drive_engine(engine, source, opts, &mut ((s, m), (attrib, counter))),
    }
}

/// The registry profile cells publish into: the monitor's when one is
/// attached (shared exposition), a fresh one otherwise.
fn registry_for(monitor: Option<&HealthMonitor>) -> MetricsRegistry {
    monitor.map(|m| m.registry().clone()).unwrap_or_default()
}

/// Publishes the run's fallback counters as `fasttrack_fallback_*`
/// registry cells. Called only for backends whose chains are armed
/// (see [`SessionBackend::fallback_armed`]).
fn publish_fallback_cells(report: &SimReport, registry: &MetricsRegistry) {
    registry
        .counter(
            "fasttrack_fallback_demotions_total",
            "Stranded express packets demoted to the shared ring",
        )
        .add(report.stats.fallback_demotions);
    registry
        .counter(
            "fasttrack_fallback_channel_switches_total",
            "Allocation losers switched to an alternate channel",
        )
        .add(report.stats.fallback_channel_switches);
}

#[cfg(feature = "legacy-api")]
fn no_faults(outcome: Result<SimOutcome, FaultError>) -> SimOutcome {
    outcome.expect("no fault plan attached")
}

/// Runs `source` on a single-channel NoC built from `cfg`.
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` instead: `SimSession::new(cfg).options(opts).run(source)`; this shim will be removed in 0.3.0"
)]
pub fn simulate<S: TrafficSource>(cfg: &NocConfig, source: &mut S, opts: SimOptions) -> SimReport {
    no_faults(SimSession::new(cfg).options(opts).run(source)).report
}

/// [`simulate`] with an [`EventSink`] observing the run.
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` with `.with_sink(sink)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_traced<S: TrafficSource, K: EventSink>(
    cfg: &NocConfig,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    no_faults(
        SimSession::new(cfg)
            .options(opts)
            .with_sink(sink)
            .run(source),
    )
    .report
}

/// [`simulate`] with a [`FaultPlan`] injected into the fabric.
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` with `.with_faults(plan)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_faulted<S: TrafficSource>(
    cfg: &NocConfig,
    plan: &FaultPlan,
    source: &mut S,
    opts: SimOptions,
) -> Result<SimReport, FaultError> {
    SimSession::new(cfg)
        .options(opts)
        .with_faults(plan)
        .run(source)
        .map(|o| o.report)
}

/// [`simulate_faulted`] with an [`EventSink`] observing the run,
/// including the [`SimEvent::FaultDrop`] / [`SimEvent::FaultReroute`]
/// events.
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` with `.with_faults(plan).with_sink(sink)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_faulted_traced<S: TrafficSource, K: EventSink>(
    cfg: &NocConfig,
    plan: &FaultPlan,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> Result<SimReport, FaultError> {
    SimSession::new(cfg)
        .options(opts)
        .with_faults(plan)
        .with_sink(sink)
        .run(source)
        .map(|o| o.report)
}

/// [`simulate`] with a [`HealthMonitor`] attached.
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` with `.with_monitor(mcfg)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_monitored<S: TrafficSource>(
    cfg: &NocConfig,
    source: &mut S,
    opts: SimOptions,
    mcfg: MonitorConfig,
) -> (SimReport, HealthMonitor) {
    no_faults(
        SimSession::new(cfg)
            .options(opts)
            .with_monitor(mcfg)
            .run(source),
    )
    .into_monitored()
}

/// [`simulate_multichannel`] with a [`HealthMonitor`] attached (hotspot
/// utilization is normalized by the channel count).
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` with `.channels(k).with_monitor(mcfg)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_multichannel_monitored<S: TrafficSource>(
    cfg: &NocConfig,
    channels: usize,
    source: &mut S,
    opts: SimOptions,
    mcfg: MonitorConfig,
) -> (SimReport, HealthMonitor) {
    no_faults(
        SimSession::new(cfg)
            .options(opts)
            .channels(channels)
            .with_monitor(mcfg)
            .run(source),
    )
    .into_monitored()
}

/// Runs `source` on a `channels`-way replicated NoC (multi-channel
/// Hoplite; the paper's iso-wiring comparison point).
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` with `.channels(k)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_multichannel<S: TrafficSource>(
    cfg: &NocConfig,
    channels: usize,
    source: &mut S,
    opts: SimOptions,
) -> SimReport {
    no_faults(
        SimSession::new(cfg)
            .options(opts)
            .channels(channels)
            .run(source),
    )
    .report
}

/// [`simulate_multichannel`] with an [`EventSink`] observing all
/// channels (see [`MultiNoc::step_with_sink`] for channel attribution).
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` with `.channels(k).with_sink(sink)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_multichannel_traced<S: TrafficSource, K: EventSink>(
    cfg: &NocConfig,
    channels: usize,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    no_faults(
        SimSession::new(cfg)
            .options(opts)
            .channels(channels)
            .with_sink(sink)
            .run(source),
    )
    .report
}

/// [`simulate_multichannel`] with a [`FaultPlan`] injected into every
/// channel (the channels replicate one physical fabric region, so a
/// fault hits all of them).
#[cfg(feature = "legacy-api")]
#[deprecated(
    note = "compose a `SimSession` with `.channels(k).with_faults(plan)` instead; this shim will be removed in 0.3.0"
)]
pub fn simulate_multichannel_faulted<S: TrafficSource>(
    cfg: &NocConfig,
    channels: usize,
    plan: &FaultPlan,
    source: &mut S,
    opts: SimOptions,
) -> Result<SimReport, FaultError> {
    SimSession::new(cfg)
        .options(opts)
        .channels(channels)
        .with_faults(plan)
        .run(source)
        .map(|o| o.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;

    /// A fixed batch of packets, all available at cycle 0.
    struct Batch {
        items: Vec<(usize, Coord)>,
        pushed: bool,
    }

    impl TrafficSource for Batch {
        fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
            if !self.pushed {
                for &(src, dst) in &self.items {
                    queues.push(src, dst, cycle, 0);
                }
                self.pushed = true;
            }
        }
        fn exhausted(&self) -> bool {
            self.pushed
        }
    }

    fn run_session(cfg: &NocConfig, src: &mut Batch) -> SimReport {
        SimSession::new(cfg)
            .run(src)
            .expect("no fault plan attached")
            .report
    }

    #[test]
    fn session_runs_to_completion() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut src = Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        let report = run_session(&cfg, &mut src);
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 15);
        assert_eq!(report.stats.enqueued, 15);
        assert!(report.cycles > 0);
        assert!(report.sustained_rate_per_pe() > 0.0);
        assert!(report.avg_latency() > 0.0);
        assert!(report.worst_latency() >= report.avg_latency() as u64);
    }

    #[test]
    fn session_truncates_at_cap() {
        struct Forever;
        impl TrafficSource for Forever {
            fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
                if cycle.is_multiple_of(10) {
                    queues.push(0, Coord::new(1, 1), cycle, 0);
                }
            }
            fn exhausted(&self) -> bool {
                false
            }
        }
        let cfg = NocConfig::hoplite(4).unwrap();
        let report = SimSession::new(&cfg)
            .max_cycles(100)
            .run(&mut Forever)
            .unwrap()
            .report;
        assert!(report.truncated);
        assert_eq!(report.cycles, 100);
    }

    #[test]
    fn multichannel_delivers_everything() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut src = Batch {
            items: (0..16)
                .flat_map(|i| {
                    let dst = Coord::from_node_id((i + 5) % 16, 4);
                    std::iter::repeat_n((i, dst), 10)
                })
                .collect(),
            pushed: false,
        };
        let report = SimSession::new(&cfg)
            .channels(3)
            .run(&mut src)
            .unwrap()
            .report;
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 160);
        assert!(report.config_name.contains("3x"));
    }

    #[test]
    fn monitored_run_matches_unmonitored() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mk = || Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        let plain = run_session(&cfg, &mut mk());
        let (monitored, monitor) = SimSession::new(&cfg)
            .with_monitor(MonitorConfig::default())
            .run(&mut mk())
            .unwrap()
            .into_monitored();
        assert_eq!(plain, monitored, "the monitor must not perturb the run");
        let s = monitor.summary();
        assert_eq!(s.injected, 15);
        assert_eq!(s.delivered, 15);
        assert!(s.healthy(), "a draining batch run is healthy");
    }

    #[test]
    fn monitored_multichannel_normalizes_channels() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut src = Batch {
            items: (0..16)
                .map(|i| (i, Coord::from_node_id((i + 3) % 16, 4)))
                .collect(),
            pushed: false,
        };
        let (report, monitor) = SimSession::new(&cfg)
            .channels(2)
            .with_monitor(MonitorConfig::default())
            .run(&mut src)
            .unwrap()
            .into_monitored();
        assert!(!report.truncated);
        assert_eq!(monitor.summary().delivered, 16);
        assert!(monitor.healthy());
    }

    #[test]
    fn warmup_resets_measurement() {
        struct Trickle;
        impl TrafficSource for Trickle {
            fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
                if cycle < 200 {
                    queues.push((cycle % 16) as usize, Coord::new(3, 3), cycle, 0);
                }
            }
            fn exhausted(&self) -> bool {
                false
            }
        }
        let cfg = NocConfig::hoplite(4).unwrap();
        let report = SimSession::new(&cfg)
            .options(SimOptions::with_max_cycles(400).warmup_cycles(100))
            .run(&mut Trickle)
            .unwrap()
            .report;
        // Warmup-period deliveries are excluded from the measured stats.
        assert!(report.stats.delivered < 200);
        assert_eq!(report.cycles, 300);
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mk = |seed: u64| Batch {
            items: (0..16)
                .map(|i| (i, Coord::from_node_id((i + 1 + seed as usize % 7) % 16, 4)))
                .collect(),
            pushed: false,
        };
        let seeds = [1u64, 2, 3, 4];
        let batch = SimSession::new(&cfg).run_batch(&seeds, mk).unwrap();
        assert_eq!(batch.len(), seeds.len());
        for (outcome, &seed) in batch.iter().zip(&seeds) {
            let solo = SimSession::new(&cfg).run(&mut mk(seed)).unwrap();
            assert_eq!(
                outcome.report, solo.report,
                "engine reset must reproduce a fresh engine (seed {seed})"
            );
        }
    }

    #[test]
    fn run_batch_multichannel_resets_rotation() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mk = |_seed: u64| Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        let batch = SimSession::new(&cfg)
            .channels(2)
            .run_batch(&[0, 0, 0], mk)
            .unwrap();
        assert_eq!(batch[0].report, batch[1].report);
        assert_eq!(batch[1].report, batch[2].report);
    }

    #[test]
    fn outcome_without_monitor_panics_on_split() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let outcome = run_session(
            &cfg,
            &mut Batch {
                items: vec![(1, Coord::new(0, 0))],
                pushed: false,
            },
        );
        assert!(outcome.stats.delivered == 1);
        let result = std::panic::catch_unwind(|| {
            SimOutcome {
                report: SimReport::default(),
                monitor: None,
                profile: None,
                attribution: None,
            }
            .into_monitored()
        });
        assert!(result.is_err());
    }

    #[test]
    fn attributed_run_matches_unattributed() {
        use crate::attribution::AttributionConfig;
        use crate::trace::VecSink;
        let cfg = NocConfig::fasttrack(4, 2, 1, crate::config::FtPolicy::Full).unwrap();
        let mk = || Batch {
            items: (1..16).map(|i| (i, Coord::new(3, 2))).collect(),
            pushed: false,
        };
        let mut plain_sink = VecSink::new();
        let plain = SimSession::new(&cfg)
            .with_sink(&mut plain_sink)
            .run(&mut mk())
            .unwrap()
            .report;
        let mut attrib_sink = VecSink::new();
        let outcome = SimSession::new(&cfg)
            .with_sink(&mut attrib_sink)
            .with_attribution(AttributionConfig::default())
            .run(&mut mk())
            .unwrap();
        assert_eq!(
            plain, outcome.report,
            "attribution must not perturb the report"
        );
        assert_eq!(
            plain_sink.events, attrib_sink.events,
            "attribution must not perturb the event stream"
        );
        let attribution = outcome.attribution.expect("attribution attached");
        assert_eq!(attribution.delivered, 15);
        assert_eq!(attribution.mismatches, 0);
        assert!(attribution.reconciled(), "{attribution:?}");
        // The components sum to the independently measured latencies.
        let expected: u64 = plain_sink
            .events
            .iter()
            .filter_map(|e| match e {
                SimEvent::Eject { delivery, .. } => Some(delivery.total_latency()),
                _ => None,
            })
            .sum();
        assert_eq!(attribution.total_cycles(), expected);
    }

    #[test]
    fn attribution_composes_with_monitor_and_profile() {
        use crate::attribution::AttributionConfig;
        let cfg = NocConfig::hoplite(4).unwrap();
        let mk = || Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        let plain = run_session(&cfg, &mut mk());
        let outcome = SimSession::new(&cfg)
            .with_monitor(MonitorConfig::default())
            .with_profile()
            .with_attribution(AttributionConfig::default())
            .run(&mut mk())
            .unwrap();
        assert_eq!(plain, outcome.report);
        let attribution = outcome.attribution.expect("attribution attached");
        assert!(attribution.reconciled());
        // Shared registry: attribution cells ride the monitor exposition
        // next to the profile cells.
        let text = outcome.monitor.unwrap().registry().to_prometheus();
        assert!(text.contains("fasttrack_attrib_packets_total 15"));
        assert!(text.contains("fasttrack_profile_events_dispatched_total"));
        assert!(outcome.profile.is_some());
    }

    #[test]
    fn attribution_in_run_batch_is_per_seed() {
        use crate::attribution::AttributionConfig;
        let cfg = NocConfig::hoplite(4).unwrap();
        let outcomes = SimSession::new(&cfg)
            .with_attribution(AttributionConfig::default())
            .run_batch(&[1, 2, 3], |_| Batch {
                items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
                pushed: false,
            })
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            let a = o.attribution.as_ref().expect("attribution attached");
            assert_eq!(a.delivered, 15, "each seed gets a fresh sink");
            assert!(a.reconciled());
            assert_eq!(a.mismatches, 0);
        }
    }
}
