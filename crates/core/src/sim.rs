//! The simulation driver: wires a traffic source to a NoC (or a
//! multi-channel NoC), runs to completion, and produces a [`SimReport`].

use crate::config::NocConfig;
use crate::fault::{FaultError, FaultPlan};
use crate::monitor::{HealthMonitor, MonitorConfig};
use crate::multichannel::MultiNoc;
use crate::noc::Noc;
use crate::packet::Delivery;
use crate::queue::InjectQueues;
use crate::stats::SimStats;
use crate::trace::{EventSink, NullSink, SimEvent};

/// A workload that feeds the NoC.
///
/// The driver calls [`TrafficSource::pump`] once per cycle *before*
/// routing, then reports every delivery. Dependency-driven workloads
/// (e.g. token dataflow) release new packets from
/// [`TrafficSource::on_delivery`] state at the next `pump`.
pub trait TrafficSource {
    /// Called once per cycle; push any packets that become available this
    /// cycle into `queues`.
    fn pump(&mut self, cycle: u64, queues: &mut InjectQueues);

    /// Notification of a delivered packet.
    fn on_delivery(&mut self, delivery: &Delivery) {
        let _ = delivery;
    }

    /// True when the source will never generate another packet.
    fn exhausted(&self) -> bool;
}

/// Driver options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Hard cap on simulated cycles; the run is marked truncated if hit.
    pub max_cycles: u64,
    /// Statistics are reset after this many cycles (steady-state
    /// measurement for open-loop traffic). 0 measures everything.
    pub warmup_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_cycles: 2_000_000,
            warmup_cycles: 0,
        }
    }
}

impl SimOptions {
    /// Options with a custom cycle cap.
    pub fn with_max_cycles(max_cycles: u64) -> Self {
        SimOptions {
            max_cycles,
            ..Default::default()
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Human-readable configuration name (e.g. `FT(64,2,1)`).
    pub config_name: String,
    /// PEs in the system.
    pub nodes: usize,
    /// Cycles simulated after warmup (the makespan for closed workloads).
    pub cycles: u64,
    /// Aggregated statistics (measured after warmup).
    pub stats: SimStats,
    /// True if the run hit `max_cycles` before the workload drained.
    pub truncated: bool,
    /// Packets still on NoC links when the run ended (non-zero only for
    /// truncated runs; part of the conservation accounting).
    pub in_flight: usize,
}

impl SimReport {
    /// Delivered packets per cycle per PE — the paper's "sustained rate".
    pub fn sustained_rate_per_pe(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stats.delivered as f64 / self.cycles as f64 / self.nodes as f64
        }
    }

    /// Delivered packets per cycle across the whole NoC.
    pub fn aggregate_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stats.delivered as f64 / self.cycles as f64
        }
    }

    /// Mean end-to-end latency (including source queueing).
    pub fn avg_latency(&self) -> f64 {
        self.stats.total_latency.mean()
    }

    /// Worst-case end-to-end latency.
    pub fn worst_latency(&self) -> u64 {
        self.stats.total_latency.max()
    }

    /// Exact packet conservation: every injected packet is delivered,
    /// still on a link, or was dropped by an injected fault. Holds for
    /// every run without a warmup reset, faulted or not, truncated or
    /// not. (A warmup reset excludes pre-warmup injections from the
    /// measured stats while their deliveries still count, so only
    /// `warmup_cycles == 0` runs are exactly conserved.)
    pub fn conserved(&self) -> bool {
        self.stats.delivered + self.in_flight as u64 + self.stats.dropped == self.stats.injected
    }

    /// Throughput of this (typically faulted) run relative to a baseline
    /// run of the healthy fabric: `1.0` means no degradation, `0.0`
    /// means nothing got through. Returns `1.0` when the baseline moved
    /// no traffic either.
    pub fn degraded_throughput_ratio(&self, baseline: &SimReport) -> f64 {
        let base = baseline.sustained_rate_per_pe();
        if base == 0.0 {
            1.0
        } else {
            self.sustained_rate_per_pe() / base
        }
    }
}

/// Runs `source` on a single-channel NoC built from `cfg`.
pub fn simulate<S: TrafficSource>(cfg: &NocConfig, source: &mut S, opts: SimOptions) -> SimReport {
    simulate_traced(cfg, source, opts, &mut NullSink)
}

/// [`simulate`] with an [`EventSink`] observing the run. In addition to
/// the engine's per-cycle events the driver emits
/// [`SimEvent::WarmupReset`] when statistics are cleared and
/// [`SimEvent::Truncated`] when the cycle cap cuts the workload short.
pub fn simulate_traced<S: TrafficSource, K: EventSink>(
    cfg: &NocConfig,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    drive_noc(Noc::new(cfg.clone()), cfg, source, opts, sink)
}

/// [`simulate`] with a [`FaultPlan`] injected into the fabric. The plan
/// is validated first (dead links must be express-only, etc.); an empty
/// plan produces a report bit-identical to plain [`simulate`].
///
/// Fail-stopped routers can leave their PE's queue permanently blocked;
/// the driver detects that state and ends the run (not truncated) once
/// everything else has drained.
pub fn simulate_faulted<S: TrafficSource>(
    cfg: &NocConfig,
    plan: &FaultPlan,
    source: &mut S,
    opts: SimOptions,
) -> Result<SimReport, FaultError> {
    simulate_faulted_traced(cfg, plan, source, opts, &mut NullSink)
}

/// [`simulate_faulted`] with an [`EventSink`] observing the run,
/// including the [`SimEvent::FaultDrop`] / [`SimEvent::FaultReroute`]
/// events.
pub fn simulate_faulted_traced<S: TrafficSource, K: EventSink>(
    cfg: &NocConfig,
    plan: &FaultPlan,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> Result<SimReport, FaultError> {
    let noc = Noc::with_faults(cfg.clone(), plan)?;
    Ok(drive_noc(noc, cfg, source, opts, sink))
}

/// The single-channel drive loop shared by the healthy and faulted
/// entry points.
fn drive_noc<S: TrafficSource, K: EventSink>(
    mut noc: Noc,
    cfg: &NocConfig,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    let mut queues = InjectQueues::new(cfg.num_nodes());
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut measured_from = 0u64;
    let mut cycle = 0u64;
    let mut truncated = true;

    while cycle < opts.max_cycles {
        if cycle == opts.warmup_cycles && cycle != 0 {
            noc.reset_stats();
            measured_from = cycle;
            if K::ENABLED {
                sink.emit(&SimEvent::WarmupReset { cycle });
            }
        }
        source.pump(cycle, &mut queues);
        deliveries.clear();
        noc.step_with_sink(&mut queues, &mut deliveries, None, sink);
        for d in &deliveries {
            source.on_delivery(d);
        }
        cycle += 1;
        if source.exhausted()
            && noc.in_flight() == 0
            && (queues.is_empty() || noc.only_failed_injectors_pending(&queues))
        {
            truncated = false;
            break;
        }
    }
    if truncated && K::ENABLED {
        sink.emit(&SimEvent::Truncated { cycle });
    }

    let mut stats = noc.stats().clone();
    stats.enqueued = queues.total_enqueued();
    SimReport {
        config_name: cfg.name(),
        nodes: cfg.num_nodes(),
        cycles: cycle - measured_from,
        stats,
        truncated,
        in_flight: noc.in_flight(),
    }
}

/// [`simulate`] with a [`HealthMonitor`] attached: live counters, a
/// flight recorder, and the anomaly detectors observe the run, and the
/// monitor is returned alongside the report so callers can inspect
/// reports, snapshots, and the metrics registry.
///
/// The monitor never perturbs the simulation — the report is
/// bit-identical to an unmonitored [`simulate`] of the same source.
pub fn simulate_monitored<S: TrafficSource>(
    cfg: &NocConfig,
    source: &mut S,
    opts: SimOptions,
    mcfg: MonitorConfig,
) -> (SimReport, HealthMonitor) {
    let mut monitor = HealthMonitor::new(cfg.n(), mcfg);
    let report = simulate_traced(cfg, source, opts, &mut monitor);
    (report, monitor)
}

/// [`simulate_multichannel`] with a [`HealthMonitor`] attached (hotspot
/// utilization is normalized by the channel count).
pub fn simulate_multichannel_monitored<S: TrafficSource>(
    cfg: &NocConfig,
    channels: usize,
    source: &mut S,
    opts: SimOptions,
    mcfg: MonitorConfig,
) -> (SimReport, HealthMonitor) {
    let mut monitor = HealthMonitor::new(cfg.n(), mcfg);
    monitor.set_channels(channels.max(1));
    let report = simulate_multichannel_traced(cfg, channels, source, opts, &mut monitor);
    (report, monitor)
}

/// Runs `source` on a `channels`-way replicated NoC (multi-channel
/// Hoplite; the paper's iso-wiring comparison point).
pub fn simulate_multichannel<S: TrafficSource>(
    cfg: &NocConfig,
    channels: usize,
    source: &mut S,
    opts: SimOptions,
) -> SimReport {
    simulate_multichannel_traced(cfg, channels, source, opts, &mut NullSink)
}

/// [`simulate_multichannel`] with an [`EventSink`] observing all
/// channels (see [`MultiNoc::step_with_sink`] for channel attribution).
pub fn simulate_multichannel_traced<S: TrafficSource, K: EventSink>(
    cfg: &NocConfig,
    channels: usize,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    drive_multinoc(
        MultiNoc::new(cfg.clone(), channels),
        cfg,
        source,
        opts,
        sink,
    )
}

/// [`simulate_multichannel`] with a [`FaultPlan`] injected into every
/// channel (the channels replicate one physical fabric region, so a
/// fault hits all of them).
pub fn simulate_multichannel_faulted<S: TrafficSource>(
    cfg: &NocConfig,
    channels: usize,
    plan: &FaultPlan,
    source: &mut S,
    opts: SimOptions,
) -> Result<SimReport, FaultError> {
    let noc = MultiNoc::with_faults(cfg.clone(), channels, plan)?;
    Ok(drive_multinoc(noc, cfg, source, opts, &mut NullSink))
}

/// The multi-channel drive loop shared by the healthy and faulted entry
/// points.
fn drive_multinoc<S: TrafficSource, K: EventSink>(
    mut noc: MultiNoc,
    cfg: &NocConfig,
    source: &mut S,
    opts: SimOptions,
    sink: &mut K,
) -> SimReport {
    let channels = noc.num_channels();
    let mut queues = InjectQueues::new(cfg.num_nodes());
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut measured_from = 0u64;
    let mut cycle = 0u64;
    let mut truncated = true;

    while cycle < opts.max_cycles {
        if cycle == opts.warmup_cycles && cycle != 0 {
            noc.reset_stats();
            measured_from = cycle;
            if K::ENABLED {
                sink.emit(&SimEvent::WarmupReset { cycle });
            }
        }
        source.pump(cycle, &mut queues);
        deliveries.clear();
        noc.step_with_sink(&mut queues, &mut deliveries, sink);
        for d in &deliveries {
            source.on_delivery(d);
        }
        cycle += 1;
        if source.exhausted()
            && noc.in_flight() == 0
            && (queues.is_empty() || noc.only_failed_injectors_pending(&queues))
        {
            truncated = false;
            break;
        }
    }
    if truncated && K::ENABLED {
        sink.emit(&SimEvent::Truncated { cycle });
    }

    let mut stats = noc.merged_stats();
    stats.enqueued = queues.total_enqueued();
    SimReport {
        config_name: format!("{}-{}x", cfg.name(), channels),
        nodes: cfg.num_nodes(),
        cycles: cycle - measured_from,
        stats,
        truncated,
        in_flight: noc.in_flight(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;

    /// A fixed batch of packets, all available at cycle 0.
    struct Batch {
        items: Vec<(usize, Coord)>,
        pushed: bool,
    }

    impl TrafficSource for Batch {
        fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
            if !self.pushed {
                for &(src, dst) in &self.items {
                    queues.push(src, dst, cycle, 0);
                }
                self.pushed = true;
            }
        }
        fn exhausted(&self) -> bool {
            self.pushed
        }
    }

    #[test]
    fn simulate_runs_to_completion() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut src = Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        let report = simulate(&cfg, &mut src, SimOptions::default());
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 15);
        assert_eq!(report.stats.enqueued, 15);
        assert!(report.cycles > 0);
        assert!(report.sustained_rate_per_pe() > 0.0);
        assert!(report.avg_latency() > 0.0);
        assert!(report.worst_latency() >= report.avg_latency() as u64);
    }

    #[test]
    fn simulate_truncates_at_cap() {
        struct Forever;
        impl TrafficSource for Forever {
            fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
                if cycle.is_multiple_of(10) {
                    queues.push(0, Coord::new(1, 1), cycle, 0);
                }
            }
            fn exhausted(&self) -> bool {
                false
            }
        }
        let cfg = NocConfig::hoplite(4).unwrap();
        let report = simulate(&cfg, &mut Forever, SimOptions::with_max_cycles(100));
        assert!(report.truncated);
        assert_eq!(report.cycles, 100);
    }

    #[test]
    fn multichannel_delivers_everything() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut src = Batch {
            items: (0..16)
                .flat_map(|i| {
                    let dst = Coord::from_node_id((i + 5) % 16, 4);
                    std::iter::repeat_n((i, dst), 10)
                })
                .collect(),
            pushed: false,
        };
        let report = simulate_multichannel(&cfg, 3, &mut src, SimOptions::default());
        assert!(!report.truncated);
        assert_eq!(report.stats.delivered, 160);
        assert!(report.config_name.contains("3x"));
    }

    #[test]
    fn monitored_run_matches_unmonitored() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mk = || Batch {
            items: (1..16).map(|i| (i, Coord::new(0, 0))).collect(),
            pushed: false,
        };
        let plain = simulate(&cfg, &mut mk(), SimOptions::default());
        let (monitored, monitor) = simulate_monitored(
            &cfg,
            &mut mk(),
            SimOptions::default(),
            MonitorConfig::default(),
        );
        assert_eq!(plain, monitored, "the monitor must not perturb the run");
        let s = monitor.summary();
        assert_eq!(s.injected, 15);
        assert_eq!(s.delivered, 15);
        assert!(s.healthy(), "a draining batch run is healthy");
    }

    #[test]
    fn monitored_multichannel_normalizes_channels() {
        let cfg = NocConfig::hoplite(4).unwrap();
        let mut src = Batch {
            items: (0..16)
                .map(|i| (i, Coord::from_node_id((i + 3) % 16, 4)))
                .collect(),
            pushed: false,
        };
        let (report, monitor) = simulate_multichannel_monitored(
            &cfg,
            2,
            &mut src,
            SimOptions::default(),
            MonitorConfig::default(),
        );
        assert!(!report.truncated);
        assert_eq!(monitor.summary().delivered, 16);
        assert!(monitor.healthy());
    }

    #[test]
    fn warmup_resets_measurement() {
        struct Trickle;
        impl TrafficSource for Trickle {
            fn pump(&mut self, cycle: u64, queues: &mut InjectQueues) {
                if cycle < 200 {
                    queues.push((cycle % 16) as usize, Coord::new(3, 3), cycle, 0);
                }
            }
            fn exhausted(&self) -> bool {
                false
            }
        }
        let cfg = NocConfig::hoplite(4).unwrap();
        let opts = SimOptions {
            max_cycles: 400,
            warmup_cycles: 100,
        };
        let report = simulate(&cfg, &mut Trickle, opts);
        // Warmup-period deliveries are excluded from the measured stats.
        assert!(report.stats.delivered < 200);
        assert_eq!(report.cycles, 300);
    }
}
